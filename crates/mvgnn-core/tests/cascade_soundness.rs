//! Property-based soundness of the tiered cascade against the static
//! oracle and the interpreting profiler.
//!
//! The cascade's structural contract: a definite oracle verdict is
//! final. Whatever the GNN's weights (trained, untrained, or poisoned)
//! and whatever the confidence band routes to the dynamic tier, no
//! report may ever contradict what the oracle proved, and every
//! profiler-tier verdict must be exactly what the profiler's
//! dependence-graph classifier says for that loop. Checked over the
//! same wild kernel space (offsets × strides × aliasing × guarded
//! scatter) that `mvgnn-analyze`'s oracle soundness suite draws from.

use mvgnn_analyze::analyze_loop;
use mvgnn_core::cascade::{oracle_decision, Cascade, CascadeConfig, DecidedBy};
use mvgnn_core::model::{MvGnn, MvGnnConfig};
use mvgnn_core::{FaultPlan, PredictionSource};
use mvgnn_embed::{Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn_ir::inst::BinOp;
use mvgnn_ir::module::{FuncId, LoopId};
use mvgnn_ir::types::Ty;
use mvgnn_ir::{FunctionBuilder, Module};
use mvgnn_profiler::{classify_loop, profile_module};
use proptest::prelude::*;

/// A parameterised strided kernel `dst[s·i + off] = f(src[i ± offsets…])`
/// with optional aliasing and an optional guarded index reassignment —
/// the space spans all three oracle verdicts.
#[derive(Debug, Clone)]
struct KernelSpec {
    offsets: Vec<i64>,
    in_place: bool,
    stride: i64,
    write_off: i64,
    guarded: bool,
    n: i64,
}

fn build(spec: &KernelSpec) -> (Module, FuncId, LoopId) {
    let max_off = spec
        .offsets
        .iter()
        .map(|o| o.abs())
        .max()
        .unwrap_or(0)
        .max(spec.write_off.abs());
    let len = ((spec.n + max_off) * spec.stride.max(1) + max_off + 1) as usize;
    let mut m = Module::new("prop");
    let src = m.add_array("src", Ty::F64, len);
    let dst = if spec.in_place { src } else { m.add_array("dst", Ty::F64, len) };
    let mut b = FunctionBuilder::new(&mut m, "main", 0);
    let lo = b.const_i64(max_off);
    let hi = b.const_i64(max_off + spec.n);
    let st = b.const_i64(1);
    let stride = b.const_i64(spec.stride);
    let woff = b.const_i64(spec.write_off);
    let off_regs: Vec<_> = spec.offsets.iter().map(|&o| b.const_i64(o)).collect();
    let thresh = b.const_f64(0.5);
    let zero_idx = b.const_i64(0);
    let l = b.for_loop(lo, hi, st, |b, iv| {
        let mut acc = b.const_f64(0.0);
        for off in &off_regs {
            let idx = b.bin(BinOp::Add, iv, *off);
            let x = b.load(src, idx);
            acc = b.bin(BinOp::Add, acc, x);
        }
        let scaled = b.bin(BinOp::Mul, iv, stride);
        let widx = b.bin(BinOp::Add, scaled, woff);
        if spec.guarded {
            let c = b.bin(BinOp::CmpLt, acc, thresh);
            let j = b.copy(zero_idx);
            b.if_then(c, |b| b.copy_to(j, widx));
            b.store(dst, j, acc);
        } else {
            b.store(dst, widx, acc);
        }
    });
    let f = b.finish();
    (m, f, l)
}

fn spec_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        proptest::collection::vec(-3i64..=3, 1..4),
        any::<bool>(),
        1i64..=3,
        -2i64..=2,
        any::<bool>(),
        4i64..16,
    )
        .prop_map(|(offsets, in_place, stride, write_off, guarded, n)| KernelSpec {
            offsets,
            in_place,
            stride,
            write_off,
            guarded,
            n,
        })
}

/// An untrained model sized for the kernel's featurisation.
fn model_for(m: &Module) -> (Inst2Vec, MvGnn) {
    let i2v = Inst2Vec::train(
        &[m],
        &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 9 },
    );
    let cfg = SampleConfig::default();
    let node_dim = i2v.dim()
        + mvgnn_embed::sample::KIND_DIM
        + mvgnn_embed::sample::EDGE_DIM
        + mvgnn_profiler::DynamicFeatures::DIM;
    let aw_vocab = mvgnn_graph::AwVocab::new(cfg.walk_len).size();
    (i2v, MvGnn::new(MvGnnConfig::small(node_dim, aw_vocab)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cascade's verdict never contradicts the oracle, and every
    /// tier's verdict is what that tier's authority says: oracle rows
    /// reproduce `analyze_loop`, profiler rows reproduce
    /// `classify_loop` over the observed dependence graph.
    #[test]
    fn cascade_never_contradicts_its_tiers(spec in spec_strategy()) {
        let (m, f, l) = build(&spec);
        let (i2v, model) = model_for(&m);
        let reports = Cascade::full().classify_module(
            &model, &m, f, &i2v, &SampleConfig::default(), None, None,
        );
        prop_assert_eq!(reports.len(), 1, "one kernel loop, one report");
        let r = &reports[0];
        prop_assert_eq!(r.l, l);
        let oracle = analyze_loop(&m, f, l);
        match oracle_decision(&oracle) {
            Some(proved) => {
                prop_assert_eq!(r.decided_by, DecidedBy::Oracle, "{:?} on {:?}", r, spec);
                prop_assert_eq!(r.prediction, proved, "contradicted a proof on {:?}", spec);
                prop_assert_eq!(r.source, PredictionSource::Oracle);
                let carried = r.oracle.as_ref();
                prop_assert!(carried.is_some(), "tier-0 rows carry the report");
                prop_assert_eq!(carried.map(|o| o.verdict), Some(oracle.verdict));
            }
            None => {
                prop_assert!(r.decided_by != DecidedBy::Oracle);
                prop_assert!(r.oracle.is_none());
                if r.decided_by == DecidedBy::Profiler {
                    let res = profile_module(&m, f, &[]);
                    prop_assert!(res.is_ok(), "profiler tier ran, so profiling succeeds");
                    let deps = res.unwrap().deps;
                    let want = usize::from(classify_loop(&m, f, l, &deps).is_parallelizable());
                    prop_assert_eq!(
                        r.prediction, want,
                        "profiler tier disagreed with the profiler on {:?}", spec
                    );
                }
            }
        }
    }

    /// Poisoned weights cannot reach a tier-0 verdict: oracle rows are
    /// identical with a healthy and a damaged model, and undecided rows
    /// still degrade per-loop instead of aborting.
    #[test]
    fn poisoned_weights_cannot_move_an_oracle_verdict(spec in spec_strategy(), seed in 0u64..32) {
        let (m, f, l) = build(&spec);
        let (i2v, mut model) = model_for(&m);
        let scfg = SampleConfig::default();
        let healthy = Cascade::full().classify_module(&model, &m, f, &i2v, &scfg, None, None);
        FaultPlan::new(seed).poison_params(&mut model.params, 64);
        let poisoned = Cascade::full().classify_module(&model, &m, f, &i2v, &scfg, None, None);
        prop_assert_eq!(healthy.len(), 1);
        prop_assert_eq!(poisoned.len(), 1);
        let (h, p) = (&healthy[0], &poisoned[0]);
        if h.decided_by == DecidedBy::Oracle {
            prop_assert_eq!(p.decided_by, DecidedBy::Oracle);
            prop_assert_eq!(p.prediction, h.prediction, "weights moved a proof on {:?}", spec);
        } else {
            // Undecided by the oracle: whatever the damaged model does,
            // the report stays typed and the loop is never dropped.
            prop_assert_eq!(p.l, l);
            prop_assert!(p.prediction <= 1);
        }
    }

    /// The GNN-only cascade never claims a tier it did not run.
    #[test]
    fn gnn_only_reports_only_gnn_provenance(spec in spec_strategy()) {
        let (m, f, l) = build(&spec);
        let (i2v, model) = model_for(&m);
        let reports = Cascade::gnn_only().classify_module(
            &model, &m, f, &i2v, &SampleConfig::default(), None, None,
        );
        prop_assert_eq!(reports.len(), 1);
        prop_assert_eq!(reports[0].l, l);
        prop_assert_eq!(reports[0].decided_by, DecidedBy::Gnn);
        prop_assert!(reports[0].oracle.is_none());
    }

    /// The routing configuration is honoured: with the profiler tier
    /// off, no report carries profiler provenance even when confidence
    /// is thresholded.
    #[test]
    fn profiler_tier_off_never_routes_to_the_profiler(spec in spec_strategy()) {
        let (m, f, l) = build(&spec);
        let (i2v, model) = model_for(&m);
        let cascade = Cascade::new(CascadeConfig {
            use_profiler: false,
            confidence_threshold: 0.99,
            static_features: false,
            ..CascadeConfig::default()
        });
        let reports =
            cascade.classify_module(&model, &m, f, &i2v, &SampleConfig::default(), None, None);
        prop_assert_eq!(reports.len(), 1);
        prop_assert_eq!(reports[0].l, l);
        prop_assert!(reports[0].decided_by != DecidedBy::Profiler);
    }
}
