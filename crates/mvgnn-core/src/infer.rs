//! Graceful inference over a whole module: every loop is classified with
//! per-loop error isolation.
//!
//! Faults that hit one loop — a truncated trace (interpreter step limit),
//! an empty anonymous-walk distribution, a malformed/empty sub-PEG, or
//! non-finite logits from a damaged model — downgrade *that loop* to a
//! single-view or conservative "serial" prediction with a diagnostic
//! attached; the rest of the batch is unaffected and the function never
//! panics or aborts.

use crate::cascade::{Cascade, DecidedBy};
use crate::model::MvGnn;
use mvgnn_analyze::OracleReport;
use mvgnn_embed::{FeatureCache, Inst2Vec, SampleConfig};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use std::sync::Arc;

/// Which signal a loop's final prediction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionSource {
    /// Healthy path: the fused multi-view head.
    Multi,
    /// Degraded to the node-feature view only.
    NodeOnly,
    /// Degraded to the structure (anonymous-walk) view only.
    StructOnly,
    /// No trustworthy view: conservatively predicted serial.
    ConservativeSerial,
    /// Decided statically by the tier-0 oracle; the GNN never ran.
    Oracle,
}

/// Per-loop classification outcome.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Function owning the loop.
    pub func: FuncId,
    /// The loop.
    pub l: LoopId,
    /// Source line of the loop header.
    pub line: u32,
    /// Predicted class (1 = parallelisable; always 0 for
    /// [`PredictionSource::ConservativeSerial`]).
    pub prediction: usize,
    /// Which signal produced the prediction.
    pub source: PredictionSource,
    /// Why the loop was degraded, when it was.
    pub diagnostic: Option<String>,
    /// Which cascade tier was final for this loop.
    pub decided_by: DecidedBy,
    /// The oracle's full report — facts, excused reductions, sections —
    /// when tier 0 decided this loop (`None` otherwise).
    pub oracle: Option<Arc<OracleReport>>,
    /// The parallelization plan derived from the oracle's facts — the
    /// typed pragma (`DoAll`/`Reduction`/`Doacross`/`Serial`) with its
    /// provenance — when tier 0 decided this loop (`None` otherwise:
    /// learned verdicts carry no proof, so they get no plan).
    pub plan: Option<Arc<mvgnn_analyze::LoopPlan>>,
}

pub(crate) fn conservative(
    func: FuncId,
    l: LoopId,
    line: u32,
    why: impl Into<String>,
) -> LoopReport {
    LoopReport {
        func,
        l,
        line,
        prediction: 0,
        source: PredictionSource::ConservativeSerial,
        diagnostic: Some(why.into()),
        decided_by: DecidedBy::Gnn,
        oracle: None,
        plan: None,
    }
}

/// Classify every loop of `entry` with the trained model.
///
/// `max_steps`/`max_call_depth` bound the profiling interpreter (None
/// keeps the defaults). The returned vector always covers every loop of
/// the function: faults degrade individual loops, they never abort the
/// batch.
///
/// Healthy loops are classified in packed batches — one tape per chunk
/// instead of one per loop. Per-loop fault isolation is preserved:
/// finiteness is judged per row, and any row showing a non-finite head
/// is re-run through single-sample inference so its degradation path
/// (view fallback, conservative serial) is decided exactly as before,
/// in isolation from its chunk-mates.
///
/// This is a thin front over the GNN-only [`Cascade`]; build a
/// [`Cascade`] directly ([`Cascade::full`]) for the tiered
/// oracle → GNN → profiler path.
pub fn classify_module(
    model: &MvGnn,
    module: &Module,
    entry: FuncId,
    inst2vec: &Inst2Vec,
    sample_cfg: &SampleConfig,
    max_steps: Option<u64>,
    max_call_depth: Option<u32>,
) -> Vec<LoopReport> {
    classify_module_cached(
        model, module, entry, inst2vec, sample_cfg, max_steps, max_call_depth, None,
    )
}

/// [`classify_module`] with an optional [`FeatureCache`]: per-loop
/// featurisation (anonymous-walk sampling + node-feature packing) is
/// keyed on the sub-PEG content and dynamic features, so re-analysing an
/// unchanged loop replays its cached sample instead of rebuilding it.
/// Reports are identical with or without the cache — a hit is by
/// construction a bit-exact replay of a previous `build_sample` call.
#[allow(clippy::too_many_arguments)]
pub fn classify_module_cached(
    model: &MvGnn,
    module: &Module,
    entry: FuncId,
    inst2vec: &Inst2Vec,
    sample_cfg: &SampleConfig,
    max_steps: Option<u64>,
    max_call_depth: Option<u32>,
    cache: Option<&mut FeatureCache>,
) -> Vec<LoopReport> {
    Cascade::gnn_only().classify_module_cached(
        model, module, entry, inst2vec, sample_cfg, max_steps, max_call_depth, cache,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::model::{MvGnn, MvGnnConfig};
    use mvgnn_embed::{build_sample, sample_fingerprint, Inst2Vec, Inst2VecConfig};
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;
    use mvgnn_peg::{build_peg, loop_subpeg};
    use mvgnn_profiler::{build_cus, loop_features, profile_module_resilient};

    /// Two loops: a DOALL and a linear recurrence.
    fn test_module() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 32);
        let out = m.add_array("b", Ty::F64, 32);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(32);
        let st = b.const_i64(1);
        b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, i, y);
        });
        let one = b.const_i64(1);
        b.for_loop(one, hi, st, |b, i| {
            let p = b.bin(BinOp::Sub, i, one);
            let x = b.load(out, p);
            b.store(out, i, x);
        });
        let f = b.finish();
        (m, f)
    }

    fn setup() -> (Module, FuncId, Inst2Vec, MvGnn) {
        let (m, f) = test_module();
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        // Probe one loop to size the model.
        let reports_cfg = SampleConfig::default();
        let partial = profile_module_resilient(&m, f, &[], None, None);
        let cus = build_cus(&m);
        let peg = build_peg(&m, &cus, &partial.deps);
        let l0 = m.funcs[f.index()].loops[0].id;
        let feats = loop_features(&m, f, l0, &partial.deps, &partial.loops[&(f, l0)]);
        let sub = loop_subpeg(&peg, &m, &cus, f, l0);
        let probe = build_sample(&sub, &i2v, &feats, &reports_cfg, None);
        let model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
        (m, f, i2v, model)
    }

    #[test]
    fn healthy_module_classifies_every_loop_multi_view() {
        let (m, f, i2v, model) = setup();
        let reports = classify_module(&model, &m, f, &i2v, &SampleConfig::default(), None, None);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.source, PredictionSource::Multi, "{r:?}");
            assert!(r.diagnostic.is_none(), "{r:?}");
            assert!(r.prediction <= 1);
        }
    }

    #[test]
    fn cached_classification_matches_and_hits_on_replay() {
        let (m, f, i2v, model) = setup();
        let cfg = SampleConfig::default();
        let plain = classify_module(&model, &m, f, &i2v, &cfg, None, None);
        let mut cache = FeatureCache::new(64);
        // First cached run builds every sample; second replays them all.
        for pass in 0..2 {
            let cached = classify_module_cached(
                &model, &m, f, &i2v, &cfg, None, None, Some(&mut cache),
            );
            assert_eq!(cached.len(), plain.len());
            for (a, b) in plain.iter().zip(&cached) {
                assert_eq!(a.prediction, b.prediction, "pass {pass}");
                assert_eq!(a.source, b.source);
                assert_eq!(a.diagnostic, b.diagnostic);
            }
        }
        let s = cache.stats();
        assert_eq!(s.misses, 2, "one build per loop on the cold pass");
        assert_eq!(s.hits, 2, "the warm pass must replay every loop");
    }

    #[test]
    fn cached_samples_produce_bit_identical_logits() {
        let (m, f, i2v, model) = setup();
        let cfg = SampleConfig::default();
        // Build the same loop's sample twice: fresh, and via cache replay.
        let partial = profile_module_resilient(&m, f, &[], None, None);
        let cus = build_cus(&m);
        let peg = build_peg(&m, &cus, &partial.deps);
        let l0 = m.funcs[f.index()].loops[0].id;
        let feats = loop_features(&m, f, l0, &partial.deps, &partial.loops[&(f, l0)]);
        let sub = loop_subpeg(&peg, &m, &cus, f, l0);
        let fresh = build_sample(&sub, &i2v, &feats, &cfg, None);
        let mut cache = mvgnn_embed::FeatureCache::new(4);
        let key = sample_fingerprint(&sub, &feats, &cfg, i2v.dim());
        cache.get_or_insert_with(key, || build_sample(&sub, &i2v, &feats, &cfg, None));
        let replayed = cache.get_or_insert_with(key, || unreachable!("must hit"));
        let a = model.logits_batch(&[&fresh]);
        let b = model.logits_batch(&[&replayed]);
        let bits = |rows: &[Vec<f32>]| -> Vec<u32> {
            rows.iter().flatten().map(|x| x.to_bits()).collect()
        };
        assert_eq!(bits(&a), bits(&b), "cached featurisation must not move logits");
    }

    #[test]
    fn truncated_trace_degrades_without_aborting() {
        let (m, f, i2v, model) = setup();
        let budget = FaultPlan::new(4).starved_step_budget();
        let reports =
            classify_module(&model, &m, f, &i2v, &SampleConfig::default(), Some(budget), None);
        assert_eq!(reports.len(), 2, "batch must not shrink under truncation");
        for r in &reports {
            assert_ne!(r.source, PredictionSource::Multi, "{r:?}");
            assert!(r.diagnostic.is_some(), "degraded loops need a diagnostic: {r:?}");
        }
        // Conservative fallbacks must predict serial.
        for r in reports.iter().filter(|r| r.source == PredictionSource::ConservativeSerial) {
            assert_eq!(r.prediction, 0);
        }
    }

    #[test]
    fn poisoned_model_falls_back_to_conservative_serial() {
        let (m, f, i2v, mut model) = setup();
        FaultPlan::new(11).poison_params(&mut model.params, 64);
        let reports = classify_module(&model, &m, f, &i2v, &SampleConfig::default(), None, None);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_ne!(
                r.source,
                PredictionSource::Multi,
                "poisoned weights must not be trusted: {r:?}"
            );
        }
    }
}
