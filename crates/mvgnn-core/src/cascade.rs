//! Tiered cascade classification: one routing abstraction from the
//! static oracle through the GNN to the dynamic profiler.
//!
//! Every classification surface in the workspace fronts a [`Cascade`]:
//!
//! - **Tier 0 — static oracle.** `mvgnn_analyze::analyze_loop` runs
//!   first; a `ProvablyParallel` / `ProvablyDependent` verdict is final
//!   and free — no featurisation, no GNN workspace, no batch slot. The
//!   oracle's [`Fact`](mvgnn_analyze::Fact)s ride along on the report as
//!   provenance. `Unknown` falls through.
//! - **Tier 1 — calibrated GNN.** Undecided loops are featurised
//!   (optionally with the oracle's
//!   [`feature_vec`](mvgnn_analyze::OracleReport::feature_vec) broadcast
//!   as static node features) and classified in packed batches with the
//!   per-loop degradation ladder of [`crate::infer::classify_module`].
//!   The fused logits pass through a temperature-scaling [`Calibration`]
//!   (fit on a held-out slice, stored alongside the weights in the MVCK
//!   checkpoint) to produce a confidence.
//! - **Tier 2 — dynamic profiler.** A healthy fused verdict whose
//!   calibrated confidence falls below the configured band routes to
//!   `mvgnn_profiler::classify_loop` over the already-profiled
//!   dependence graph — the slow, evidence-backed last resort.
//!
//! Each report's [`DecidedBy`] records which tier was final. Tier-0
//! verdicts can never be contradicted downstream (the short-circuit is
//! structural, not a priority), which is the soundness property the
//! cascade tests pin against the interpreting profiler.

use crate::infer::{conservative, LoopReport, PredictionSource};
use crate::model::{CheckedPrediction, MvGnn};
use mvgnn_analyze::{analyze_loop, plan_from_report, OracleReport, Verdict};
use mvgnn_embed::{
    build_sample_with_static, sample_fingerprint, sample_fingerprint_with_static, FeatureCache,
    GraphSample, Inst2Vec, SampleConfig,
};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_peg::{build_peg, loop_subpeg};
use mvgnn_profiler::{
    build_cus, classify_loop, loop_features, profile_module_resilient, LoopRuntime,
};
use mvgnn_tensor::Workspace;
use std::sync::Arc;

/// Which cascade tier produced a final verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecidedBy {
    /// Tier 0: the static dependence oracle proved the verdict.
    Oracle,
    /// Tier 1: the GNN (including its view-degradation ladder).
    Gnn,
    /// Tier 2: the dynamic profiler's dependence-graph classifier.
    Profiler,
}

impl DecidedBy {
    /// Stable lowercase name (used by JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            DecidedBy::Oracle => "oracle",
            DecidedBy::Gnn => "gnn",
            DecidedBy::Profiler => "profiler",
        }
    }
}

/// Temperature scaling: one scalar `T` divides the fused logits before
/// softmax, re-shaping confidence without moving the argmax. `T` is fit
/// on a held-out slice by minimising NLL and stored alongside the model
/// weights in the MVCK checkpoint (see [`crate::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Softmax temperature; `1.0` is the identity.
    pub temperature: f32,
}

impl Default for Calibration {
    fn default() -> Self {
        Self::identity()
    }
}

impl Calibration {
    /// The identity calibration (`T = 1`).
    pub fn identity() -> Self {
        Self { temperature: 1.0 }
    }

    /// A calibration with a fixed temperature. Non-finite or
    /// non-positive temperatures degrade to the identity — a damaged
    /// calibration must never turn into NaN confidences.
    pub fn new(temperature: f32) -> Self {
        if temperature.is_finite() && temperature > 0.0 {
            Self { temperature }
        } else {
            Self::identity()
        }
    }

    /// Mean negative log-likelihood of `labels` under
    /// `softmax(logits / temperature)`. Rows with non-finite logits or
    /// out-of-range labels are skipped; with nothing left the result is
    /// `f32::INFINITY` (so [`Calibration::fit`] keeps the identity).
    pub fn nll(logits: &[Vec<f32>], labels: &[usize], temperature: f32) -> f32 {
        let mut total = 0.0f64;
        let mut n = 0usize;
        for (row, &y) in logits.iter().zip(labels) {
            if y >= row.len() || row.iter().any(|x| !x.is_finite()) {
                continue;
            }
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: Vec<f64> = row.iter().map(|&x| f64::from((x - m) / temperature)).collect();
            let lse = z.iter().map(|&v| v.exp()).sum::<f64>().ln();
            total += lse - z[y];
            n += 1;
        }
        if n == 0 {
            f32::INFINITY
        } else {
            (total / n as f64) as f32
        }
    }

    /// Fit the temperature on a held-out slice (fused logits + true
    /// labels) by a deterministic two-stage log-space grid search
    /// minimising NLL. Degenerate input (empty, all-non-finite) keeps
    /// the identity.
    pub fn fit(logits: &[Vec<f32>], labels: &[usize]) -> Self {
        let n = logits.len().min(labels.len());
        if n == 0 {
            return Self::identity();
        }
        let (logits, labels) = (&logits[..n], &labels[..n]);
        let eval = |t: f32| Self::nll(logits, labels, t);
        let mut best_t = 1.0f32;
        let mut best = eval(1.0);
        if !best.is_finite() {
            return Self::identity();
        }
        // Coarse pass: 61 points over ln T ∈ [-3, 3].
        let mut best_ln = 0.0f32;
        for i in 0..=60 {
            let ln_t = -3.0 + 0.1 * i as f32;
            let t = ln_t.exp();
            let v = eval(t);
            if v < best {
                best = v;
                best_t = t;
                best_ln = ln_t;
            }
        }
        // Fine pass around the coarse winner (±1 coarse step).
        for i in 0..=40 {
            let ln_t = best_ln - 0.1 + 0.005 * i as f32;
            let t = ln_t.exp();
            let v = eval(t);
            if v < best {
                best = v;
                best_t = t;
            }
        }
        Self::new(best_t)
    }

    /// Calibrated confidence of one logits row: the maximum probability
    /// of `softmax(logits / temperature)`. Non-finite logits yield `0.0`
    /// — the cascade is never confident in garbage.
    pub fn confidence(&self, logits: &[f32]) -> f32 {
        if logits.is_empty() || logits.iter().any(|x| !x.is_finite()) {
            return 0.0;
        }
        let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let denom: f64 =
            logits.iter().map(|&x| f64::from((x - m) / self.temperature).exp()).sum();
        if denom.is_finite() && denom > 0.0 {
            (1.0 / denom) as f32
        } else {
            0.0
        }
    }
}

/// Cascade routing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Tier 0: consult the static oracle first; definite verdicts are
    /// final and skip featurisation and the GNN entirely.
    pub use_oracle: bool,
    /// Tier-1 temperature scaling applied to the fused logits.
    pub calibration: Calibration,
    /// Confidence band: a healthy fused verdict whose calibrated
    /// confidence is below this routes to tier 2. `0.0` disables the
    /// band (and with it tier 2).
    pub confidence_threshold: f32,
    /// Tier 2: route borderline tier-1 verdicts to the dynamic
    /// profiler's dependence-graph classifier.
    pub use_profiler: bool,
    /// Attach the oracle's `feature_vec()` as static node features when
    /// the featurisation expects them (`SampleConfig::static_dim ==
    /// OracleReport::FEAT_DIM`). On by default in the full cascade; a
    /// `static_dim` of 0 keeps the plain layout regardless.
    pub static_features: bool,
}

impl Default for CascadeConfig {
    /// The full three-tier cascade: oracle short-circuit, calibrated
    /// GNN with a 0.6 confidence band, profiler fallback, static
    /// features on.
    fn default() -> Self {
        Self {
            use_oracle: true,
            calibration: Calibration::identity(),
            confidence_threshold: 0.6,
            use_profiler: true,
            static_features: true,
        }
    }
}

impl CascadeConfig {
    /// Tier 1 alone — the historical [`crate::classify_module`]
    /// behaviour, bit-for-bit (no oracle, no confidence band, no static
    /// features).
    pub fn gnn_only() -> Self {
        Self {
            use_oracle: false,
            calibration: Calibration::identity(),
            confidence_threshold: 0.0,
            use_profiler: false,
            static_features: false,
        }
    }
}

/// Map a definite oracle verdict onto the binary parallelisable class;
/// `Unknown` falls through to the next tier.
pub fn oracle_decision(report: &OracleReport) -> Option<usize> {
    match report.verdict {
        Verdict::ProvablyParallel => Some(1),
        Verdict::ProvablyDependent => Some(0),
        Verdict::Unknown => None,
    }
}

/// Samples per packed forward pass during module classification.
const INFER_CHUNK: usize = 32;

/// A loop that survived tier 0 and the tier-1 pre-checks and awaits
/// model inference. The sample is an `Arc` so a [`FeatureCache`] hit
/// shares the cached matrices instead of cloning them.
struct PendingLoop {
    l: LoopId,
    line: u32,
    sample: Arc<GraphSample>,
    empty_walks: bool,
}

/// The tiered classifier. Stateless beyond its configuration — the
/// model, module, and caches are arguments, so one cascade value can
/// serve any number of models and threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cascade {
    /// Routing configuration.
    pub config: CascadeConfig,
}

impl Cascade {
    /// A cascade with the given routing configuration.
    pub fn new(config: CascadeConfig) -> Self {
        Self { config }
    }

    /// The full three-tier cascade ([`CascadeConfig::default`]).
    pub fn full() -> Self {
        Self::new(CascadeConfig::default())
    }

    /// The GNN tier alone ([`CascadeConfig::gnn_only`]); reproduces the
    /// historical `classify_module` outputs exactly.
    pub fn gnn_only() -> Self {
        Self::new(CascadeConfig::gnn_only())
    }

    /// Tier-1 execution primitive: run one packed batch against a
    /// caller-owned workspace with per-row fault isolation — any row
    /// whose batched verdict shows a non-finite head is re-run alone, so
    /// its degradation is decided by the single-sample path. This is the
    /// hook every batch executor fronts
    /// ([`crate::InferenceEngine::classify_batch`], the module path
    /// below, and through them the `mvgnn-serve` micro-batcher).
    pub fn gnn_batch(
        model: &MvGnn,
        ws: &mut Workspace,
        chunk: &[&GraphSample],
    ) -> Vec<CheckedPrediction> {
        model
            .predict_checked_batch_ws(ws, chunk)
            .into_iter()
            .zip(chunk)
            .map(|(checked, s)| Self::isolate_row(model, checked, s))
            .collect()
    }

    /// [`Self::gnn_batch`] that also surfaces the batched fused-logits
    /// row per sample (for the tier-1 confidence band). The checked
    /// verdicts are identical — same forward pass, same isolation.
    fn gnn_batch_with_logits(
        model: &MvGnn,
        ws: &mut Workspace,
        chunk: &[&GraphSample],
    ) -> (Vec<CheckedPrediction>, Vec<Vec<f32>>) {
        let (rows, logits) = model.predict_checked_logits_batch_ws(ws, chunk);
        let rows = rows
            .into_iter()
            .zip(chunk)
            .map(|(checked, s)| Self::isolate_row(model, checked, s))
            .collect();
        (rows, logits)
    }

    /// Per-row fault fallback shared by the batch primitives.
    fn isolate_row(
        model: &MvGnn,
        checked: CheckedPrediction,
        sample: &GraphSample,
    ) -> CheckedPrediction {
        let faulty =
            checked.fused.is_none() || checked.node.is_none() || checked.structural.is_none();
        if faulty {
            model.predict_checked(sample)
        } else {
            checked
        }
    }

    /// Classify every loop of `entry` through the cascade (no feature
    /// cache); see [`Self::classify_module_cached`].
    #[allow(clippy::too_many_arguments)]
    pub fn classify_module(
        &self,
        model: &MvGnn,
        module: &Module,
        entry: FuncId,
        inst2vec: &Inst2Vec,
        sample_cfg: &SampleConfig,
        max_steps: Option<u64>,
        max_call_depth: Option<u32>,
    ) -> Vec<LoopReport> {
        self.classify_module_cached(
            model, module, entry, inst2vec, sample_cfg, max_steps, max_call_depth, None,
        )
    }

    /// Classify every loop of `entry` through the configured tiers.
    ///
    /// The returned vector always covers every loop of the function, in
    /// loop order. Tier-0 verdicts carry the oracle report (facts and
    /// all) and never touch the GNN; undecided loops go through the
    /// historical pre-check + packed-batch path of
    /// [`crate::classify_module`], with the degradation ladder intact;
    /// borderline healthy verdicts are re-decided by the profiler tier
    /// over the dependence graph the profiling pass already produced.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_module_cached(
        &self,
        model: &MvGnn,
        module: &Module,
        entry: FuncId,
        inst2vec: &Inst2Vec,
        sample_cfg: &SampleConfig,
        max_steps: Option<u64>,
        max_call_depth: Option<u32>,
        mut cache: Option<&mut FeatureCache>,
    ) -> Vec<LoopReport> {
        let partial = profile_module_resilient(module, entry, &[], max_steps, max_call_depth);
        let trace_fault = partial.error.as_ref().map(|e| e.to_string());

        // Tier 0 — oracle short-circuit. Definite verdicts fill their
        // report slot immediately; only the survivors pay for the PEG,
        // featurisation, and the model.
        let loops = &module.funcs[entry.index()].loops;
        let mut reports: Vec<Option<LoopReport>> = (0..loops.len()).map(|_| None).collect();
        let mut undecided: Vec<(usize, LoopId, u32, Option<Arc<OracleReport>>)> = Vec::new();
        for (slot, info) in loops.iter().enumerate() {
            let l = info.id;
            let line = info.line_span.0;
            if self.config.use_oracle {
                let report = Arc::new(analyze_loop(module, entry, l));
                if let Some(prediction) = oracle_decision(&report) {
                    // The decision is proved, so the planner's typed
                    // pragma rides along as actionable output.
                    let plan = plan_from_report(module, entry, l, &report);
                    reports[slot] = Some(LoopReport {
                        func: entry,
                        l,
                        line,
                        prediction,
                        source: PredictionSource::Oracle,
                        diagnostic: None,
                        decided_by: DecidedBy::Oracle,
                        oracle: Some(report),
                        plan: Some(Arc::new(plan)),
                    });
                    continue;
                }
                undecided.push((slot, l, line, Some(report)));
            } else {
                undecided.push((slot, l, line, None));
            }
        }
        if undecided.is_empty() {
            return reports.into_iter().flatten().collect();
        }

        let cus = build_cus(module);
        let peg = build_peg(module, &cus, &partial.deps);
        let attach_static =
            self.config.static_features && sample_cfg.static_dim == OracleReport::FEAT_DIM;

        // Tier-1 pass 1 — pre-checks: anything that can fail before the
        // model runs produces its conservative report immediately; the
        // rest queue up for batched inference.
        let mut pending: Vec<(usize, PendingLoop)> = Vec::new();
        for (slot, l, line, oracle) in undecided {
            let runtime = partial.loops.get(&(entry, l)).copied();
            if runtime.is_none() {
                if let Some(fault) = &trace_fault {
                    reports[slot] = Some(conservative(
                        entry,
                        l,
                        line,
                        format!("no dynamic evidence, trace truncated: {fault}"),
                    ));
                    continue;
                }
            }
            let runtime = runtime.unwrap_or(LoopRuntime::default());
            let feats = loop_features(module, entry, l, &partial.deps, &runtime);
            let sub = loop_subpeg(&peg, module, &cus, entry, l);
            if sub.graph.node_count() == 0 {
                reports[slot] = Some(conservative(entry, l, line, "empty sub-PEG"));
                continue;
            }
            let static_vec = attach_static.then(|| {
                oracle
                    .clone()
                    .unwrap_or_else(|| Arc::new(analyze_loop(module, entry, l)))
                    .feature_vec()
            });
            let sample = match cache.as_deref_mut() {
                Some(c) => {
                    let key = match &static_vec {
                        Some(sv) => sample_fingerprint_with_static(
                            &sub,
                            &feats,
                            sample_cfg,
                            inst2vec.dim(),
                            Some(sv),
                        ),
                        None => sample_fingerprint(&sub, &feats, sample_cfg, inst2vec.dim()),
                    };
                    c.get_or_insert_with(key, || {
                        build_sample_with_static(
                            &sub,
                            inst2vec,
                            &feats,
                            static_vec.as_ref().map(|sv| &sv[..]),
                            sample_cfg,
                            None,
                        )
                    })
                }
                None => Arc::new(build_sample_with_static(
                    &sub,
                    inst2vec,
                    &feats,
                    static_vec.as_ref().map(|sv| &sv[..]),
                    sample_cfg,
                    None,
                )),
            };
            if sample.node_dim != model.cfg.node_dim || sample.aw_vocab != model.cfg.aw_vocab {
                reports[slot] = Some(conservative(
                    entry,
                    l,
                    line,
                    format!(
                        "sample/model dimension mismatch (node {} vs {}, vocab {} vs {})",
                        sample.node_dim, model.cfg.node_dim, sample.aw_vocab, model.cfg.aw_vocab
                    ),
                ));
                continue;
            }
            let empty_walks = sample.struct_dists.iter().all(|&x| x == 0.0);
            pending.push((slot, PendingLoop { l, line, sample, empty_walks }));
        }

        // Tier-1 pass 2 — batched inference over the surviving loops,
        // with the tier-2 confidence band applied per healthy row.
        let needs_confidence = self.config.use_profiler && self.config.confidence_threshold > 0.0;
        let mut ws = Workspace::new();
        for chunk in pending.chunks(INFER_CHUNK) {
            let samples: Vec<&GraphSample> = chunk.iter().map(|(_, p)| &*p.sample).collect();
            let (checked_rows, logit_rows) = if needs_confidence {
                let (c, lg) = Self::gnn_batch_with_logits(model, &mut ws, &samples);
                (c, Some(lg))
            } else {
                (Self::gnn_batch(model, &mut ws, &samples), None)
            };
            for (row, ((slot, p), checked)) in chunk.iter().zip(checked_rows).enumerate() {
                // Preference order degrades with the evidence: a clean
                // trace and healthy walks trust the fused head; a
                // truncated trace or empty walk distribution drops the
                // structural signal and falls back to the node view;
                // non-finite heads fall through to the next view.
                let candidates: [(Option<usize>, PredictionSource); 3] =
                    if trace_fault.is_some() || p.empty_walks {
                        [
                            (checked.node, PredictionSource::NodeOnly),
                            (checked.structural, PredictionSource::StructOnly),
                            (None, PredictionSource::ConservativeSerial),
                        ]
                    } else {
                        [
                            (checked.fused, PredictionSource::Multi),
                            (checked.node, PredictionSource::NodeOnly),
                            (checked.structural, PredictionSource::StructOnly),
                        ]
                    };
                let mut diagnostic = None;
                if let Some(fault) = &trace_fault {
                    diagnostic = Some(format!("trace truncated: {fault}"));
                } else if p.empty_walks {
                    diagnostic = Some("empty anonymous-walk distribution".into());
                }
                reports[*slot] =
                    Some(match candidates.iter().find_map(|(pr, src)| pr.map(|pr| (pr, *src))) {
                        Some((mut prediction, source)) => {
                            if source != PredictionSource::Multi && diagnostic.is_none() {
                                diagnostic =
                                    Some("non-finite logits in the preferred view".into());
                            }
                            let mut decided_by = DecidedBy::Gnn;
                            // Tier 2 — a healthy fused verdict below the
                            // confidence band is re-decided by the
                            // profiler over the dependence graph the
                            // profiling pass already produced.
                            if needs_confidence && source == PredictionSource::Multi {
                                let conf = logit_rows
                                    .as_ref()
                                    .map_or(0.0, |lg| self.config.calibration.confidence(&lg[row]));
                                if conf < self.config.confidence_threshold {
                                    let class = classify_loop(module, entry, p.l, &partial.deps);
                                    prediction = usize::from(class.is_parallelizable());
                                    decided_by = DecidedBy::Profiler;
                                    diagnostic = Some(format!(
                                        "tier-1 confidence {conf:.3} below {:.3}; dynamic tier \
                                         verdict {class:?}",
                                        self.config.confidence_threshold
                                    ));
                                }
                            }
                            LoopReport {
                                func: entry,
                                l: p.l,
                                line: p.line,
                                prediction,
                                source,
                                diagnostic,
                                decided_by,
                                oracle: None,
                                plan: None,
                            }
                        }
                        None => {
                            let why = match diagnostic {
                                Some(d) => format!("non-finite logits in every view ({d})"),
                                None => "non-finite logits in every view".into(),
                            };
                            conservative(entry, p.l, p.line, why)
                        }
                    });
            }
        }
        reports.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_confidence_is_plain_softmax_max() {
        let c = Calibration::identity();
        let conf = c.confidence(&[2.0, 0.0]);
        let want = (2.0f64.exp() / (2.0f64.exp() + 1.0)) as f32;
        assert!((conf - want).abs() < 1e-6, "{conf} vs {want}");
    }

    #[test]
    fn temperature_flattens_or_sharpens() {
        let logits = [3.0f32, 0.0];
        let sharp = Calibration::new(0.25).confidence(&logits);
        let flat = Calibration::new(4.0).confidence(&logits);
        let id = Calibration::identity().confidence(&logits);
        assert!(sharp > id && id > flat, "{sharp} > {id} > {flat}");
        assert!(flat >= 0.5, "binary max-prob is never below 1/classes");
    }

    #[test]
    fn non_finite_logits_have_zero_confidence() {
        let c = Calibration::identity();
        assert_eq!(c.confidence(&[f32::NAN, 0.0]), 0.0);
        assert_eq!(c.confidence(&[f32::INFINITY, 0.0]), 0.0);
        assert_eq!(c.confidence(&[]), 0.0);
    }

    #[test]
    fn degenerate_temperature_degrades_to_identity() {
        for t in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            assert_eq!(Calibration::new(t), Calibration::identity(), "{t}");
        }
    }

    #[test]
    fn fit_recovers_a_flattening_temperature_for_overconfident_logits() {
        // Logits that are right only 50% of the time but scream with
        // confidence: the NLL-minimising temperature must be > 1
        // (flatten), and the fit must beat the identity's NLL.
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..32 {
            logits.push(vec![8.0, 0.0]);
            labels.push(usize::from(i % 2 == 0)); // half the labels disagree
        }
        let cal = Calibration::fit(&logits, &labels);
        assert!(cal.temperature > 1.0, "overconfident logits need flattening: {cal:?}");
        let fit_nll = Calibration::nll(&logits, &labels, cal.temperature);
        let id_nll = Calibration::nll(&logits, &labels, 1.0);
        assert!(fit_nll <= id_nll, "{fit_nll} vs {id_nll}");
    }

    #[test]
    fn fit_on_degenerate_input_keeps_identity() {
        assert_eq!(Calibration::fit(&[], &[]), Calibration::identity());
        let garbage = vec![vec![f32::NAN, f32::NAN]];
        assert_eq!(Calibration::fit(&garbage, &[0]), Calibration::identity());
    }

    #[test]
    fn fit_does_not_move_the_argmax() {
        let logits = vec![vec![1.5f32, -0.5], vec![-2.0, 0.25]];
        let labels = vec![0usize, 1];
        let cal = Calibration::fit(&logits, &labels);
        // Temperature scaling is monotone: argmax is invariant for any T.
        assert!(cal.temperature > 0.0 && cal.temperature.is_finite());
        for row in &logits {
            let plain = if row[0] > row[1] { 0 } else { 1 };
            let scaled: Vec<f32> = row.iter().map(|x| x / cal.temperature).collect();
            let cooked = if scaled[0] > scaled[1] { 0 } else { 1 };
            assert_eq!(plain, cooked);
        }
    }

    #[test]
    fn decided_by_names_are_stable() {
        assert_eq!(DecidedBy::Oracle.as_str(), "oracle");
        assert_eq!(DecidedBy::Gnn.as_str(), "gnn");
        assert_eq!(DecidedBy::Profiler.as_str(), "profiler");
    }
}
