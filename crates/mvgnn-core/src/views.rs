//! The view abstraction and view-importance analysis (paper Fig. 8).
//!
//! A *view* is one way of looking at a loop sub-PEG: the paper uses a
//! node-feature view (inst2vec ⊕ node kind ⊕ Table I dynamics) and a
//! structural view (anonymous-walk distributions through a learned
//! embedding table). [`ViewEncoder`] is the common surface — each encoder
//! turns a packed [`GraphBatch`] into a `batch × embed_dim` representation
//! on the tape — and the fusion layer of [`MvGnn`] composes whatever list
//! of views it is given. Adding a third view is implementing this trait.
//!
//! The second half of the module is the Fig. 8 analysis: for each
//! benchmark the paper counts parallel loops identified by the multi-view
//! model (`N_multi`) and by each single view (`N_n`, `N_s`), reporting
//! `IMP_view = N_view / N_multi`.

use crate::model::MvGnn;
use mvgnn_dataset::LabeledSample;
use mvgnn_embed::GraphBatch;
use mvgnn_gnn::{Dgcnn, DgcnnConfig};
use mvgnn_nn::Embedding;
use mvgnn_tensor::tape::{Params, Tape, Var};
use rand::rngs::StdRng;

/// One way of encoding a packed batch of loop graphs into fixed-width
/// per-graph representations. Implementations register their parameters
/// at construction and are pure at call time, so a shared reference can
/// run on worker threads (rayon gradient shards).
pub trait ViewEncoder: Send + Sync {
    /// Stable view name ("node", "struct", …) — also the parameter-name
    /// prefix, so checkpoint compatibility hangs on it.
    fn name(&self) -> &str;

    /// Width of one output row.
    fn embed_dim(&self) -> usize;

    /// Encode every graph of the batch: output is
    /// `batch.batch × embed_dim()` with row `g` depending only on graph
    /// `g`'s rows (bit-identical to a batch-of-one call). The batch must
    /// outlive the tape: its adjacency is registered by reference
    /// (clone-free) and its packed matrices are copied into pooled tape
    /// buffers.
    fn encode_batch<'p>(&self, tape: &mut Tape<'p>, batch: &'p GraphBatch) -> Var;
}

/// The node-feature view: a DGCNN over the sample's node-feature matrix,
/// optionally blinding the dynamic (profiler-derived) columns for the
/// static-only ablation.
pub struct NodeFeatureEncoder {
    dgcnn: Dgcnn,
    drop_dynamic: bool,
}

impl NodeFeatureEncoder {
    /// Register parameters under `name.*`.
    pub fn new(
        params: &mut Params,
        name: &str,
        cfg: DgcnnConfig,
        drop_dynamic: bool,
        rng: &mut StdRng,
    ) -> Self {
        Self { dgcnn: Dgcnn::new(params, name, cfg, rng), drop_dynamic }
    }

    /// Node-feature matrix of a packed batch, honouring `drop_dynamic`:
    /// the static-only configuration (Shen et al.) zeroes the Table I
    /// vector *and* erases what only a profiler can know about edges —
    /// the carried/loop-independent distinction is merged into one dep
    /// count.
    fn feature_input(&self, tape: &mut Tape<'_>, batch: &GraphBatch) -> Var {
        let mut feats = tape.workspace_mut().acquire_f32(batch.node_feats.len());
        feats.copy_from_slice(&batch.node_feats);
        if self.drop_dynamic {
            let dyn_dim = mvgnn_profiler::DynamicFeatures::DIM;
            let edge_dim = mvgnn_embed::sample::EDGE_DIM;
            for r in 0..batch.total_n {
                let off = r * batch.node_dim + (batch.node_dim - dyn_dim);
                feats[off..off + dyn_dim].fill(0.0);
                // Edge census layout: [defuse o/i, carried RAW o/i,
                // carried WAR o/i, carried WAW o/i, indep o/i, hier o/i];
                // the dep counts come from profiling, so the static-only
                // model loses them entirely (def-use and hierarchy are
                // static facts and stay).
                let eoff = r * batch.node_dim + (batch.node_dim - dyn_dim - edge_dim);
                feats[eoff + 2..eoff + 10].fill(0.0);
            }
        }
        tape.input(feats, batch.total_n, batch.node_dim)
    }
}

impl ViewEncoder for NodeFeatureEncoder {
    fn name(&self) -> &str {
        "node"
    }

    fn embed_dim(&self) -> usize {
        self.dgcnn.config().embed_dim()
    }

    fn encode_batch<'p>(&self, tape: &mut Tape<'p>, batch: &'p GraphBatch) -> Var {
        let x = self.feature_input(tape, batch);
        self.dgcnn.embed_batch(tape, &batch.adj, x, &batch.offsets)
    }
}

/// The structural view: anonymous-walk distributions soft-looked-up
/// through a learned embedding table, then a DGCNN (paper Eq. 3/4).
pub struct StructuralEncoder {
    dgcnn: Dgcnn,
    aw_embed: Embedding,
}

impl StructuralEncoder {
    /// Register parameters: the DGCNN under `name.*`, then the walk table
    /// under `aw.table` (this order is the checkpoint layout).
    pub fn new(
        params: &mut Params,
        name: &str,
        cfg: DgcnnConfig,
        aw_vocab: usize,
        aw_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let dgcnn = Dgcnn::new(params, name, cfg, rng);
        let aw_embed = Embedding::new(params, "aw", aw_vocab, aw_dim, rng);
        Self { dgcnn, aw_embed }
    }
}

impl ViewEncoder for StructuralEncoder {
    fn name(&self) -> &str {
        "struct"
    }

    fn embed_dim(&self) -> usize {
        self.dgcnn.config().embed_dim()
    }

    fn encode_batch<'p>(&self, tape: &mut Tape<'p>, batch: &'p GraphBatch) -> Var {
        let dists = tape.input_slice(&batch.struct_dists, batch.total_n, batch.aw_vocab);
        let emb = self.aw_embed.forward_soft(tape, dists);
        self.dgcnn.embed_batch(tape, &batch.adj, emb, &batch.offsets)
    }
}

/// Per-benchmark view importances.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewImportance {
    /// Benchmark label (suite or app name).
    pub benchmark: String,
    /// Parallel loops correctly identified by the fused model.
    pub n_multi: usize,
    /// … by the node-feature view head.
    pub n_node: usize,
    /// … by the structural view head.
    pub n_struct: usize,
    /// Correct predictions per head (both classes) and pool size — the
    /// paper's IMP ratio only counts identified positives, which a
    /// positively-biased head can saturate; accuracy shows the real gap.
    pub correct_multi: usize,
    /// Correct node-view predictions.
    pub correct_node: usize,
    /// Correct structural-view predictions.
    pub correct_struct: usize,
    /// Samples in the group.
    pub total: usize,
}

impl ViewImportance {
    /// `IMP_n = N_n / N_multi`.
    pub fn imp_node(&self) -> f64 {
        if self.n_multi == 0 {
            return 0.0;
        }
        self.n_node as f64 / self.n_multi as f64
    }

    /// `IMP_s = N_s / N_multi`.
    pub fn imp_struct(&self) -> f64 {
        if self.n_multi == 0 {
            return 0.0;
        }
        self.n_struct as f64 / self.n_multi as f64
    }

    /// Accuracy of the fused model on this group.
    pub fn acc_multi(&self) -> f64 {
        self.correct_multi as f64 / self.total.max(1) as f64
    }

    /// Accuracy of the node-feature view alone.
    pub fn acc_node(&self) -> f64 {
        self.correct_node as f64 / self.total.max(1) as f64
    }

    /// Accuracy of the structural view alone.
    pub fn acc_struct(&self) -> f64 {
        self.correct_struct as f64 / self.total.max(1) as f64
    }
}

/// Samples per packed forward pass in [`view_importance`].
const IMPORTANCE_CHUNK: usize = 32;

/// Compute view importances over a labeled evaluation set, grouped by the
/// key function (suite name, app name, …).
pub fn view_importance(
    model: &MvGnn,
    data: &[LabeledSample],
    key: impl Fn(&LabeledSample) -> String,
) -> Vec<ViewImportance> {
    let mut groups: std::collections::BTreeMap<String, ViewImportance> =
        std::collections::BTreeMap::new();
    // One forward per chunk instead of one per sample; predictions are
    // identical to the per-sample path (packed rows never interact).
    let detailed: Vec<(usize, usize, usize)> = data
        .chunks(IMPORTANCE_CHUNK)
        .flat_map(|chunk| {
            let samples: Vec<&mvgnn_embed::GraphSample> =
                chunk.iter().map(|s| &s.sample).collect();
            model.predict_detailed_batch(&samples)
        })
        .collect();
    for (s, &(fused, node, st)) in data.iter().zip(&detailed) {
        let entry = groups.entry(key(s)).or_insert_with(|| ViewImportance {
            benchmark: key(s),
            n_multi: 0,
            n_node: 0,
            n_struct: 0,
            correct_multi: 0,
            correct_node: 0,
            correct_struct: 0,
            total: 0,
        });
        entry.total += 1;
        if fused == s.label {
            entry.correct_multi += 1;
        }
        if node == s.label {
            entry.correct_node += 1;
        }
        if st == s.label {
            entry.correct_struct += 1;
        }
        // Count true positives: correctly identified parallel loops.
        if s.label == 1 {
            if fused == 1 {
                entry.n_multi += 1;
            }
            if node == 1 {
                entry.n_node += 1;
            }
            if st == 1 {
                entry.n_struct += 1;
            }
        }
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_ratios() {
        let v = ViewImportance {
            benchmark: "NPB".into(),
            n_multi: 10,
            n_node: 9,
            n_struct: 7,
            correct_multi: 18,
            correct_node: 16,
            correct_struct: 12,
            total: 20,
        };
        assert!((v.imp_node() - 0.9).abs() < 1e-9);
        assert!((v.imp_struct() - 0.7).abs() < 1e-9);
        assert!((v.acc_multi() - 0.9).abs() < 1e-9);
        assert!((v.acc_node() - 0.8).abs() < 1e-9);
        assert!((v.acc_struct() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_multi_does_not_divide_by_zero() {
        let v = ViewImportance {
            benchmark: "x".into(),
            n_multi: 0,
            n_node: 3,
            n_struct: 1,
            correct_multi: 0,
            correct_node: 0,
            correct_struct: 0,
            total: 0,
        };
        assert_eq!(v.imp_node(), 0.0);
        assert_eq!(v.imp_struct(), 0.0);
    }
}
