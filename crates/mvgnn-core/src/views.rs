//! View-importance analysis (paper Fig. 8).
//!
//! For each benchmark the paper counts parallel loops identified by the
//! multi-view model (`N_multi`) and by each single view (`N_n`, `N_s`),
//! reporting `IMP_view = N_view / N_multi`.

use crate::model::MvGnn;
use mvgnn_dataset::LabeledSample;

/// Per-benchmark view importances.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewImportance {
    /// Benchmark label (suite or app name).
    pub benchmark: String,
    /// Parallel loops correctly identified by the fused model.
    pub n_multi: usize,
    /// … by the node-feature view head.
    pub n_node: usize,
    /// … by the structural view head.
    pub n_struct: usize,
    /// Correct predictions per head (both classes) and pool size — the
    /// paper's IMP ratio only counts identified positives, which a
    /// positively-biased head can saturate; accuracy shows the real gap.
    pub correct_multi: usize,
    /// Correct node-view predictions.
    pub correct_node: usize,
    /// Correct structural-view predictions.
    pub correct_struct: usize,
    /// Samples in the group.
    pub total: usize,
}

impl ViewImportance {
    /// `IMP_n = N_n / N_multi`.
    pub fn imp_node(&self) -> f64 {
        if self.n_multi == 0 {
            return 0.0;
        }
        self.n_node as f64 / self.n_multi as f64
    }

    /// `IMP_s = N_s / N_multi`.
    pub fn imp_struct(&self) -> f64 {
        if self.n_multi == 0 {
            return 0.0;
        }
        self.n_struct as f64 / self.n_multi as f64
    }

    /// Accuracy of the fused model on this group.
    pub fn acc_multi(&self) -> f64 {
        self.correct_multi as f64 / self.total.max(1) as f64
    }

    /// Accuracy of the node-feature view alone.
    pub fn acc_node(&self) -> f64 {
        self.correct_node as f64 / self.total.max(1) as f64
    }

    /// Accuracy of the structural view alone.
    pub fn acc_struct(&self) -> f64 {
        self.correct_struct as f64 / self.total.max(1) as f64
    }
}

/// Compute view importances over a labeled evaluation set, grouped by the
/// key function (suite name, app name, …).
pub fn view_importance(
    model: &mut MvGnn,
    data: &[LabeledSample],
    key: impl Fn(&LabeledSample) -> String,
) -> Vec<ViewImportance> {
    let mut groups: std::collections::BTreeMap<String, ViewImportance> =
        std::collections::BTreeMap::new();
    for s in data {
        let (fused, node, st) = model.predict_detailed(&s.sample);
        let entry = groups.entry(key(s)).or_insert_with(|| ViewImportance {
            benchmark: key(s),
            n_multi: 0,
            n_node: 0,
            n_struct: 0,
            correct_multi: 0,
            correct_node: 0,
            correct_struct: 0,
            total: 0,
        });
        entry.total += 1;
        if fused == s.label {
            entry.correct_multi += 1;
        }
        if node == s.label {
            entry.correct_node += 1;
        }
        if st == s.label {
            entry.correct_struct += 1;
        }
        // Count true positives: correctly identified parallel loops.
        if s.label == 1 {
            if fused == 1 {
                entry.n_multi += 1;
            }
            if node == 1 {
                entry.n_node += 1;
            }
            if st == 1 {
                entry.n_struct += 1;
            }
        }
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_ratios() {
        let v = ViewImportance {
            benchmark: "NPB".into(),
            n_multi: 10,
            n_node: 9,
            n_struct: 7,
            correct_multi: 18,
            correct_node: 16,
            correct_struct: 12,
            total: 20,
        };
        assert!((v.imp_node() - 0.9).abs() < 1e-9);
        assert!((v.imp_struct() - 0.7).abs() < 1e-9);
        assert!((v.acc_multi() - 0.9).abs() < 1e-9);
        assert!((v.acc_node() - 0.8).abs() < 1e-9);
        assert!((v.acc_struct() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_multi_does_not_divide_by_zero() {
        let v = ViewImportance {
            benchmark: "x".into(),
            n_multi: 0,
            n_node: 3,
            n_struct: 1,
            correct_multi: 0,
            correct_node: 0,
            correct_struct: 0,
            total: 0,
        };
        assert_eq!(v.imp_node(), 0.0);
        assert_eq!(v.imp_struct(), 0.0);
    }
}
