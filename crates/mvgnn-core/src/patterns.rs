//! Parallel-pattern classification — the paper's first future-work item:
//! "modifying our resulting classification to specify distinct parallel
//! patterns", i.e. a 4-way DOALL / reduction / serial / task head instead
//! of the binary label.

use crate::model::{MvGnn, MvGnnConfig};
use crate::trainer::TrainConfig;
use mvgnn_dataset::{LabeledSample, PatternKind};
use mvgnn_tensor::optim::{clip_grad_norm, Adam};
use mvgnn_tensor::tape::{argmax_rows, GradStore, Tape};

/// The four pattern classes, with a stable index mapping.
pub const PATTERN_CLASSES: [PatternKind; 4] =
    [PatternKind::DoAll, PatternKind::Reduction, PatternKind::Serial, PatternKind::Task];

/// Class index of a pattern.
pub fn pattern_class(p: PatternKind) -> usize {
    match p {
        PatternKind::DoAll => 0,
        PatternKind::Reduction => 1,
        PatternKind::Serial => 2,
        PatternKind::Task => 3,
    }
}

/// Configure a 4-class MV-GNN for pattern classification.
pub fn pattern_model_config(node_dim: usize, aw_vocab: usize) -> MvGnnConfig {
    let mut cfg = MvGnnConfig::small(node_dim, aw_vocab);
    cfg.classes = 4;
    cfg.node_dgcnn.classes = 4;
    cfg.struct_dgcnn.classes = 4;
    cfg
}

/// Train a 4-class pattern model; returns per-epoch mean loss.
///
/// Reuses the binary model's architecture with a widened head; labels are
/// the *ground-truth patterns* (noise-free — pattern identification is a
/// diagnostic task, not the paper's noisy binary benchmark).
pub fn train_patterns(
    model: &mut MvGnn,
    data: &[LabeledSample],
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert!(!data.is_empty());
    let mut opt = Adam::new(cfg.lr);
    let mut curve = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let mut total = 0.0f32;
        let mut master = GradStore::zeros_like(&model.params);
        for s in data {
            let batch = mvgnn_embed::GraphBatch::single(&s.sample);
            let mut tape = Tape::new(&model.params);
            let fwd = model.forward_on(&mut tape, &batch);
            let target = pattern_class(s.pattern);
            let loss = tape.softmax_ce(fwd.logits, &[target], model.cfg.temperature);
            total += tape.data(loss)[0];
            tape.backward(loss);
            master.absorb(&tape.into_grads());
        }
        clip_grad_norm(&mut master, cfg.clip);
        opt.step(&mut model.params, &master);
        curve.push(total / data.len() as f32);
    }
    curve
}

/// Predict the pattern of one sample.
pub fn predict_pattern(model: &MvGnn, s: &mvgnn_embed::GraphSample) -> PatternKind {
    let batch = mvgnn_embed::GraphBatch::single(s);
    let mut tape = Tape::new(&model.params);
    let fwd = model.forward_on(&mut tape, &batch);
    let idx = argmax_rows(tape.data(fwd.logits), 1, 4)[0];
    PATTERN_CLASSES[idx]
}

/// A pattern prediction cross-checked against the parallelization
/// planner: when the static prover *proves* a plan for the loop, the
/// proved pattern is final and the learned head is advisory. Checked
/// predictions therefore can never contradict a proved plan — the
/// invariant lint rule C audits on the corpus.
#[derive(Debug, Clone)]
pub struct CheckedPattern {
    /// Final pattern after the prover check.
    pub pattern: PatternKind,
    /// What the learned head said on its own.
    pub raw: PatternKind,
    /// The plan consulted for the check (proved or not).
    pub plan: mvgnn_analyze::LoopPlan,
    /// True when a proof replaced a disagreeing learned prediction.
    pub overridden: bool,
}

/// [`predict_pattern`] with the prover-checked evaluation path: run the
/// planner over the loop and let a proved plan override the head.
/// `Task` is outside the prover's vocabulary, but task loops contain
/// opaque calls and are therefore never proved, so a proof overriding
/// `Task` cannot demote a genuinely-proved task loop — it corrects a
/// misprediction on a loop the prover decided.
pub fn predict_pattern_checked(
    model: &MvGnn,
    s: &mvgnn_embed::GraphSample,
    module: &mvgnn_ir::Module,
    func: mvgnn_ir::module::FuncId,
    l: mvgnn_ir::module::LoopId,
) -> CheckedPattern {
    use mvgnn_analyze::PlannedPattern;
    let raw = predict_pattern(model, s);
    let plan = mvgnn_analyze::plan_loop(module, func, l);
    let (pattern, overridden) = match plan.proved_pattern() {
        Some(p) => {
            let proved = match p {
                PlannedPattern::DoAll => PatternKind::DoAll,
                PlannedPattern::Reduction => PatternKind::Reduction,
                PlannedPattern::Serial => PatternKind::Serial,
            };
            (proved, proved != raw)
        }
        None => (raw, false),
    };
    CheckedPattern { pattern, raw, plan, overridden }
}

/// 4×4 confusion matrix (rows = truth, cols = prediction).
pub fn pattern_confusion(
    model: &MvGnn,
    data: &[LabeledSample],
) -> [[usize; 4]; 4] {
    let mut m = [[0usize; 4]; 4];
    for s in data {
        let truth = pattern_class(s.pattern);
        let pred = pattern_class(predict_pattern(model, &s.sample));
        m[truth][pred] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    #[test]
    fn pattern_class_mapping_is_total() {
        for (i, &p) in PATTERN_CLASSES.iter().enumerate() {
            assert_eq!(pattern_class(p), i);
        }
    }

    /// The head's argmax goes through the shared `argmax_rows` helper,
    /// which orders by `total_cmp` (never the panicking/NaN-lossy
    /// `partial_cmp` fold) and resolves exact ties to the *last* max
    /// class. Pin both so a silent helper change fails here.
    #[test]
    fn pattern_argmax_uses_total_cmp_with_last_max_tie_break() {
        assert_eq!(argmax_rows(&[0.25, 0.25, 0.25, 0.25], 1, 4), vec![3]);
        assert_eq!(argmax_rows(&[1.0, 2.0, 2.0, 0.0], 1, 4), vec![2]);
        // total_cmp orders -0.0 below 0.0, so 0.0 wins the "tie".
        assert_eq!(argmax_rows(&[-0.0, 0.0, -1.0, -2.0], 1, 4), vec![1]);
        // NaN is largest under total order — selected, not panicked on
        // (callers' finiteness checks catch the divergence).
        assert_eq!(argmax_rows(&[0.0, f32::NAN, 3.0, 1.0], 1, 4), vec![1]);
    }

    #[test]
    fn proved_plans_override_the_learned_pattern_head() {
        use mvgnn_embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
        use mvgnn_ir::inst::BinOp;
        use mvgnn_ir::types::Ty;
        use mvgnn_ir::FunctionBuilder;
        use mvgnn_peg::{build_peg, loop_subpeg};
        use mvgnn_profiler::{build_cus, loop_features, profile_module};

        // One provable DOALL map and one provable serial recurrence.
        let mut m = mvgnn_ir::Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, i, y);
        });
        b.for_loop(one, hi, st, |b, i| {
            let p = b.bin(BinOp::Sub, i, one);
            let x = b.load(out, p);
            b.store(out, i, x);
        });
        let f = b.finish();

        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        let res = profile_module(&m, f, &[]).unwrap();
        let cus = build_cus(&m);
        let peg = build_peg(&m, &cus, &res.deps);
        let cfg = SampleConfig::default();
        let mk = |l: mvgnn_ir::module::LoopId| {
            let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
            let sub = loop_subpeg(&peg, &m, &cus, f, l);
            build_sample(&sub, &i2v, &feats, &cfg, None)
        };
        let l0 = m.funcs[f.index()].loops[0].id;
        let l1 = m.funcs[f.index()].loops[1].id;
        let s0 = mk(l0);
        let s1 = mk(l1);
        // An untrained head predicts whatever it predicts; the proofs
        // must pin the checked result regardless.
        let model = MvGnn::new(pattern_model_config(s0.node_dim, s0.aw_vocab));
        let c0 = predict_pattern_checked(&model, &s0, &m, f, l0);
        assert_eq!(c0.pattern, PatternKind::DoAll, "{:?}", c0.plan);
        assert_eq!(c0.overridden, c0.raw != PatternKind::DoAll);
        let c1 = predict_pattern_checked(&model, &s1, &m, f, l1);
        assert_eq!(c1.pattern, PatternKind::Serial, "{:?}", c1.plan);
        // A checked prediction can never contradict its own proved plan.
        for c in [&c0, &c1] {
            if let Some(p) = c.plan.proved_pattern() {
                let as_kind = match p {
                    mvgnn_analyze::PlannedPattern::DoAll => PatternKind::DoAll,
                    mvgnn_analyze::PlannedPattern::Reduction => PatternKind::Reduction,
                    mvgnn_analyze::PlannedPattern::Serial => PatternKind::Serial,
                };
                assert_eq!(c.pattern, as_kind);
            }
        }
    }

    #[test]
    fn four_class_model_learns_patterns() {
        let ds = build_corpus(&CorpusConfig {
            seeds: vec![2],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(40),
            test_fraction: 0.25,
            suite: Some(Suite::Npb),
            inst2vec: Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
            sample: Default::default(),
            seed: 3,
            label_noise: 0.0,
            static_features: false,
        });
        let probe = &ds.train[0].sample;
        let mut model = MvGnn::new(pattern_model_config(probe.node_dim, probe.aw_vocab));
        let curve = train_patterns(
            &mut model,
            &ds.train,
            &TrainConfig { epochs: 25, ..Default::default() },
        );
        assert!(
            curve.last().unwrap() < &(curve[0] * 0.6),
            "pattern loss should drop substantially: {curve:?}"
        );
        let conf = pattern_confusion(&model, &ds.test);
        let correct: usize = (0..4).map(|i| conf[i][i]).sum();
        let total: usize = conf.iter().flatten().sum();
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.6,
            "pattern accuracy too low: {conf:?}"
        );
    }
}
