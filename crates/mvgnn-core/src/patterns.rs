//! Parallel-pattern classification — the paper's first future-work item:
//! "modifying our resulting classification to specify distinct parallel
//! patterns", i.e. a 4-way DOALL / reduction / serial / task head instead
//! of the binary label.

use crate::model::{MvGnn, MvGnnConfig};
use crate::trainer::TrainConfig;
use mvgnn_dataset::{LabeledSample, PatternKind};
use mvgnn_tensor::optim::{clip_grad_norm, Adam};
use mvgnn_tensor::tape::{argmax_rows, GradStore, Tape};

/// The four pattern classes, with a stable index mapping.
pub const PATTERN_CLASSES: [PatternKind; 4] =
    [PatternKind::DoAll, PatternKind::Reduction, PatternKind::Serial, PatternKind::Task];

/// Class index of a pattern.
pub fn pattern_class(p: PatternKind) -> usize {
    match p {
        PatternKind::DoAll => 0,
        PatternKind::Reduction => 1,
        PatternKind::Serial => 2,
        PatternKind::Task => 3,
    }
}

/// Configure a 4-class MV-GNN for pattern classification.
pub fn pattern_model_config(node_dim: usize, aw_vocab: usize) -> MvGnnConfig {
    let mut cfg = MvGnnConfig::small(node_dim, aw_vocab);
    cfg.classes = 4;
    cfg.node_dgcnn.classes = 4;
    cfg.struct_dgcnn.classes = 4;
    cfg
}

/// Train a 4-class pattern model; returns per-epoch mean loss.
///
/// Reuses the binary model's architecture with a widened head; labels are
/// the *ground-truth patterns* (noise-free — pattern identification is a
/// diagnostic task, not the paper's noisy binary benchmark).
pub fn train_patterns(
    model: &mut MvGnn,
    data: &[LabeledSample],
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert!(!data.is_empty());
    let mut opt = Adam::new(cfg.lr);
    let mut curve = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let mut total = 0.0f32;
        let mut master = GradStore::zeros_like(&model.params);
        for s in data {
            let batch = mvgnn_embed::GraphBatch::single(&s.sample);
            let mut tape = Tape::new(&model.params);
            let fwd = model.forward_on(&mut tape, &batch);
            let target = pattern_class(s.pattern);
            let loss = tape.softmax_ce(fwd.logits, &[target], model.cfg.temperature);
            total += tape.data(loss)[0];
            tape.backward(loss);
            master.absorb(&tape.into_grads());
        }
        clip_grad_norm(&mut master, cfg.clip);
        opt.step(&mut model.params, &master);
        curve.push(total / data.len() as f32);
    }
    curve
}

/// Predict the pattern of one sample.
pub fn predict_pattern(model: &MvGnn, s: &mvgnn_embed::GraphSample) -> PatternKind {
    let batch = mvgnn_embed::GraphBatch::single(s);
    let mut tape = Tape::new(&model.params);
    let fwd = model.forward_on(&mut tape, &batch);
    let idx = argmax_rows(tape.data(fwd.logits), 1, 4)[0];
    PATTERN_CLASSES[idx]
}

/// 4×4 confusion matrix (rows = truth, cols = prediction).
pub fn pattern_confusion(
    model: &MvGnn,
    data: &[LabeledSample],
) -> [[usize; 4]; 4] {
    let mut m = [[0usize; 4]; 4];
    for s in data {
        let truth = pattern_class(s.pattern);
        let pred = pattern_class(predict_pattern(model, &s.sample));
        m[truth][pred] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    #[test]
    fn pattern_class_mapping_is_total() {
        for (i, &p) in PATTERN_CLASSES.iter().enumerate() {
            assert_eq!(pattern_class(p), i);
        }
    }

    #[test]
    fn four_class_model_learns_patterns() {
        let ds = build_corpus(&CorpusConfig {
            seeds: vec![2],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(40),
            test_fraction: 0.25,
            suite: Some(Suite::Npb),
            inst2vec: Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
            sample: Default::default(),
            seed: 3,
            label_noise: 0.0,
            static_features: false,
        });
        let probe = &ds.train[0].sample;
        let mut model = MvGnn::new(pattern_model_config(probe.node_dim, probe.aw_vocab));
        let curve = train_patterns(
            &mut model,
            &ds.train,
            &TrainConfig { epochs: 25, ..Default::default() },
        );
        assert!(
            curve.last().unwrap() < &(curve[0] * 0.6),
            "pattern loss should drop substantially: {curve:?}"
        );
        let conf = pattern_confusion(&model, &ds.test);
        let correct: usize = (0..4).map(|i| conf[i][i]).sum();
        let total: usize = conf.iter().flatten().sum();
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.6,
            "pattern accuracy too low: {conf:?}"
        );
    }
}
