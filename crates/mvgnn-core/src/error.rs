//! The crate-wide typed error: every fallible public entry point of the
//! training and inference pipeline returns [`MvGnnError`] instead of
//! panicking, so callers can distinguish configuration mistakes,
//! recoverable runtime faults, and unrecoverable divergence.

use mvgnn_ir::interp::InterpError;
use mvgnn_tensor::PersistError;

/// Unified error for the mvgnn training & inference pipeline.
#[derive(Debug)]
pub enum MvGnnError {
    /// Invalid configuration (bad hyperparameter, empty dataset, …).
    Config(String),
    /// Mini-language front-end failure (lex/parse/lower/verify).
    Compile(mvgnn_lang::CompileError),
    /// Textual-IR parse failure.
    ParseIr(mvgnn_ir::text::ParseError),
    /// IR interpretation / profiling failure (step limit, OOB, …).
    Interp(InterpError),
    /// Weight (de)serialisation failure.
    Persist(PersistError),
    /// Filesystem failure while reading or writing a checkpoint.
    Io(std::io::Error),
    /// A checkpoint file failed structural validation (bad magic,
    /// length mismatch, checksum mismatch, …).
    Checkpoint(String),
    /// An on-disk corpus shard (or its embedding artifact) is corrupt
    /// or unreadable.
    Shard(mvgnn_dataset::ShardError),
    /// Training diverged and exhausted its rollback retries.
    Diverged {
        /// Epoch at which the final divergence was detected.
        epoch: usize,
        /// Rollback retries consumed before giving up.
        retries: usize,
        /// The non-finite or exploding loss that triggered the failure.
        loss: f32,
    },
}

impl std::fmt::Display for MvGnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvGnnError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MvGnnError::Compile(e) => write!(f, "compile error: {e}"),
            MvGnnError::ParseIr(e) => write!(f, "IR parse error: {e}"),
            MvGnnError::Interp(e) => write!(f, "interpreter error: {e}"),
            MvGnnError::Persist(e) => write!(f, "persistence error: {e}"),
            MvGnnError::Io(e) => write!(f, "I/O error: {e}"),
            MvGnnError::Checkpoint(msg) => write!(f, "invalid checkpoint: {msg}"),
            MvGnnError::Shard(e) => write!(f, "corpus shard error: {e}"),
            MvGnnError::Diverged { epoch, retries, loss } => write!(
                f,
                "training diverged at epoch {epoch} (loss {loss}) after {retries} rollback retries"
            ),
        }
    }
}

impl std::error::Error for MvGnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MvGnnError::Compile(e) => Some(e),
            MvGnnError::Persist(e) => Some(e),
            MvGnnError::Io(e) => Some(e),
            MvGnnError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvgnn_lang::CompileError> for MvGnnError {
    fn from(e: mvgnn_lang::CompileError) -> Self {
        MvGnnError::Compile(e)
    }
}

impl From<InterpError> for MvGnnError {
    fn from(e: InterpError) -> Self {
        MvGnnError::Interp(e)
    }
}

impl From<PersistError> for MvGnnError {
    fn from(e: PersistError) -> Self {
        MvGnnError::Persist(e)
    }
}

impl From<std::io::Error> for MvGnnError {
    fn from(e: std::io::Error) -> Self {
        MvGnnError::Io(e)
    }
}

impl From<mvgnn_dataset::ShardError> for MvGnnError {
    fn from(e: mvgnn_dataset::ShardError) -> Self {
        MvGnnError::Shard(e)
    }
}

impl From<mvgnn_ir::text::ParseError> for MvGnnError {
    fn from(e: mvgnn_ir::text::ParseError) -> Self {
        MvGnnError::ParseIr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(MvGnnError, &str)> = vec![
            (MvGnnError::Config("restarts must be >= 1".into()), "configuration"),
            (MvGnnError::Interp(InterpError::StepLimit(10)), "step limit"),
            (MvGnnError::Persist(PersistError::BadMagic), "persistence"),
            (
                MvGnnError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
                "I/O",
            ),
            (MvGnnError::Checkpoint("checksum mismatch".into()), "checkpoint"),
            (
                MvGnnError::Diverged { epoch: 3, retries: 2, loss: f32::NAN },
                "diverged",
            ),
        ];
        for (e, needle) in cases {
            let rendered = e.to_string();
            assert!(rendered.contains(needle), "{rendered:?} missing {needle:?}");
        }
    }

    #[test]
    fn conversions_preserve_the_cause() {
        let e: MvGnnError = InterpError::DepthLimit(4).into();
        assert!(matches!(e, MvGnnError::Interp(InterpError::DepthLimit(4))));
        let e: MvGnnError = PersistError::BadVersion(9).into();
        assert!(matches!(e, MvGnnError::Persist(PersistError::BadVersion(9))));
    }
}
