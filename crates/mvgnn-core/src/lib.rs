//! # mvgnn-core — the multi-view GNN and the full experiment pipeline
//!
//! The paper's contribution (Fig. 3): two DGCNNs look at every loop
//! sub-PEG from complementary views — node features (inst2vec ⊕ Table I
//! dynamics) and local structure (anonymous-walk distributions through a
//! learned embedding table) — and a fusion layer
//! `h = W·tanh(h_n ⊕ h_s) + b` classifies the loop as parallelisable or
//! not under a temperature-0.5 softmax loss.
//!
//! - [`model`]: the MV-GNN (plus single-view configurations for the
//!   Static-GNN baseline and the ablations)
//! - [`trainer`]: mini-batch training with rayon data-parallel gradient
//!   accumulation, gradient clipping and epoch telemetry (Fig. 7)
//! - [`views`]: per-view importance analysis (Fig. 8)
//! - [`pipeline`]: end-to-end experiment driver producing every Table III
//!   / Table IV row

pub mod cascade;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod fault;
pub mod infer;
pub mod model;
pub mod patterns;
pub mod pipeline;
pub mod streaming;
pub mod suggest;
pub mod trainer;
pub mod views;

pub use cascade::{oracle_decision, Calibration, Cascade, CascadeConfig, DecidedBy};
pub use checkpoint::{
    read_checkpoint, write_checkpoint, write_mapped_checkpoint, Checkpoint, CheckpointMeta,
    MappedCheckpoint,
};
pub use engine::{
    EngineConfig, InferenceEngine, LoadMode, ModelGeneration, ModelRegistry, RegistryCensus,
};
pub use error::MvGnnError;
pub use fault::FaultPlan;
pub use infer::{classify_module, classify_module_cached, LoopReport, PredictionSource};
pub use model::{MvGnn, MvGnnConfig, ViewMode};
pub use views::{NodeFeatureEncoder, StructuralEncoder, ViewEncoder};
pub use pipeline::{evaluate_tools, evaluate_tools_with_noise, run_pipeline, PipelineConfig, PipelineReport};
pub use patterns::{
    pattern_confusion, predict_pattern, predict_pattern_checked, train_patterns, CheckedPattern,
    PATTERN_CLASSES,
};
pub use suggest::{annotate_function, suggest, Suggestion};
pub use streaming::{train_streaming, StreamConfig};
pub use trainer::{train, EpochStats, TrainConfig};
pub use views::{view_importance, ViewImportance};
