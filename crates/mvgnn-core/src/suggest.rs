//! OpenMP directive synthesis — the paper's downstream use-case: once a
//! loop is classified parallelisable, emit the pragma a programmer (or a
//! source rewriter) would insert.

use mvgnn_ir::inst::BinOp;
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_profiler::{reduction_targets, LoopClass};

/// A concrete parallelisation suggestion for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suggestion {
    /// Independent iterations: plain worksharing.
    ParallelFor,
    /// Reduction: worksharing with reduction clauses `(op, variable)`.
    ParallelForReduction(Vec<(char, String)>),
    /// Not parallelisable, with the blocking reason.
    Sequential(String),
}

impl Suggestion {
    /// Render as the OpenMP pragma line (empty for sequential loops).
    pub fn pragma(&self) -> String {
        match self {
            Suggestion::ParallelFor => "#pragma omp parallel for".to_string(),
            Suggestion::ParallelForReduction(vars) => {
                let clauses: Vec<String> =
                    vars.iter().map(|(op, v)| format!("reduction({op}:{v})")).collect();
                format!("#pragma omp parallel for {}", clauses.join(" "))
            }
            Suggestion::Sequential(_) => String::new(),
        }
    }
}

fn op_symbol(op: BinOp) -> char {
    match op {
        BinOp::Mul => '*',
        BinOp::Min | BinOp::Max => 'm', // OpenMP spells these min/max; keep a marker
        _ => '+',
    }
}

/// Build the suggestion for a classified loop.
pub fn suggest(module: &Module, func: FuncId, l: LoopId, class: &LoopClass) -> Suggestion {
    match class {
        LoopClass::DoAll => Suggestion::ParallelFor,
        LoopClass::Reduction => {
            let targets = reduction_targets(module, func, l);
            if targets.is_empty() {
                // Recognised as reduction but chain naming failed — still
                // parallelisable, just without an explicit clause.
                Suggestion::ParallelFor
            } else {
                Suggestion::ParallelForReduction(
                    targets.into_iter().map(|(name, op)| (op_symbol(op), name)).collect(),
                )
            }
        }
        LoopClass::NotParallel { reason } => Suggestion::Sequential(reason.clone()),
    }
}

/// Annotate every loop of a function: returns `(line, pragma-or-reason)`
/// pairs sorted by the loop's source line, ready to interleave with a
/// source listing.
pub fn annotate_function(
    module: &Module,
    func: FuncId,
    deps: &mvgnn_profiler::DepGraph,
) -> Vec<(u32, LoopId, Suggestion)> {
    let f = &module.funcs[func.index()];
    let mut out: Vec<(u32, LoopId, Suggestion)> = f
        .loops
        .iter()
        .map(|info| {
            let class = mvgnn_profiler::classify_loop(module, func, info.id, deps);
            (info.line_span.0, info.id, suggest(module, func, info.id, &class))
        })
        .collect();
    out.sort_by_key(|(line, l, _)| (*line, *l));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_profiler::profile_module;

    #[test]
    fn doall_gets_parallel_for() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let out = m.add_array("b", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            b.store(out, i, x);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let class = mvgnn_profiler::classify_loop(&m, f, l, &res.deps);
        let s = suggest(&m, f, l, &class);
        assert_eq!(s, Suggestion::ParallelFor);
        assert_eq!(s.pragma(), "#pragma omp parallel for");
    }

    #[test]
    fn memory_reduction_names_the_array() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let sum = m.add_array("sum", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let st = b.const_i64(1);
        let z = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            let cur = b.load(sum, z);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(sum, z, nxt);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let class = mvgnn_profiler::classify_loop(&m, f, l, &res.deps);
        let s = suggest(&m, f, l, &class);
        assert_eq!(s.pragma(), "#pragma omp parallel for reduction(+:sum)");
    }

    #[test]
    fn serial_loop_reports_reason() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 9);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(9);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, i| {
            let p = b.bin(BinOp::Sub, i, one);
            let x = b.load(a, p);
            b.store(a, i, x);
        });
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let class = mvgnn_profiler::classify_loop(&m, f, l, &res.deps);
        let s = suggest(&m, f, l, &class);
        assert!(matches!(&s, Suggestion::Sequential(r) if r.contains("carried")));
        assert_eq!(s.pragma(), "");
    }

    #[test]
    fn annotate_orders_by_line() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let st = b.const_i64(1);
        let l1 = b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            b.store(a, i, x);
        });
        let l2 = b.for_loop(lo, hi, st, |_b, _| {});
        let f = b.finish();
        let res = profile_module(&m, f, &[]).unwrap();
        let anns = annotate_function(&m, f, &res.deps);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].1, l1);
        assert_eq!(anns[1].1, l2);
        assert!(anns[0].0 < anns[1].0);
    }
}
