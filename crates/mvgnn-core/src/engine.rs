//! Concurrent inference engine: fan a stream of samples over worker
//! threads as packed batches, preserving input order.
//!
//! The engine wraps an [`Arc<MvGnn>`] — the weights are an immutable
//! value store ([`mvgnn_tensor::Params`]) and every forward pass owns a
//! private tape, so any number of workers can run inference on the same
//! model without locks or weight clones.
//!
//! Determinism contract: the stream is cut into fixed-size batches
//! *before* dispatch, workers pull whole batches, and results are merged
//! back in input order. Batch boundaries depend only on
//! [`EngineConfig::batch_size`], never on the thread count or scheduling,
//! so logits and predictions are bit-identical at 1, 2, or 8 threads —
//! and identical to the sequential [`MvGnn::predict_batch`] path over the
//! same batch size.
//!
//! Fault semantics match per-loop graceful degradation in
//! [`crate::infer`]: a row whose checked prediction shows any non-finite
//! head is re-run through single-sample inference, so its verdict is
//! decided in isolation from its batch-mates.

use crate::cascade::Cascade;
use crate::error::MvGnnError;
use crate::model::{CheckedPrediction, MvGnn};
use mvgnn_embed::GraphSample;
use mvgnn_tensor::Workspace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. Values are clamped to at least 1; more threads
    /// than batches is harmless (the surplus workers exit immediately).
    pub threads: usize,
    /// Samples per packed forward pass. This — not `threads` — fixes the
    /// batch boundaries, and with them the f32 summation order.
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, batch_size: 32 }
    }
}

impl EngineConfig {
    /// Check the configuration for degenerate values. `threads == 0` and
    /// `batch_size == 0` are configuration mistakes, not tuning choices —
    /// both would otherwise reach the dispatcher and silently behave as
    /// one. Long-running callers (the `mvgnn-serve` front door) construct
    /// engines through [`InferenceEngine::try_new`], which rejects them
    /// here as a typed [`MvGnnError::Config`].
    pub fn validate(&self) -> Result<(), MvGnnError> {
        if self.threads == 0 {
            return Err(MvGnnError::Config("engine threads must be >= 1 (got 0)".into()));
        }
        if self.batch_size == 0 {
            return Err(MvGnnError::Config("engine batch_size must be >= 1 (got 0)".into()));
        }
        Ok(())
    }
}

/// Order-preserving concurrent inference over a shared model.
///
/// Each worker checks a [`Workspace`] out of a shared pool for the
/// duration of a stream call and returns it afterwards, so the pools —
/// and with them the tape's recycled buffers — persist across calls:
/// after the first stream the steady state allocates (almost) nothing.
#[derive(Clone)]
pub struct InferenceEngine {
    model: Arc<MvGnn>,
    cfg: EngineConfig,
    workspaces: Arc<Mutex<Vec<Workspace>>>,
}

impl InferenceEngine {
    /// Build an engine over a shared model. Zero `threads`/`batch_size`
    /// are treated as 1 — interactive callers get a working engine no
    /// matter what; services that would rather fail loudly use
    /// [`Self::try_new`].
    pub fn new(model: Arc<MvGnn>, cfg: EngineConfig) -> Self {
        let cfg = EngineConfig {
            threads: cfg.threads.max(1),
            batch_size: cfg.batch_size.max(1),
        };
        Self { model, cfg, workspaces: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Build an engine, rejecting a degenerate [`EngineConfig`] with a
    /// typed [`MvGnnError::Config`] instead of clamping it.
    pub fn try_new(model: Arc<MvGnn>, cfg: EngineConfig) -> Result<Self, MvGnnError> {
        cfg.validate()?;
        Ok(Self { model, cfg, workspaces: Arc::new(Mutex::new(Vec::new())) })
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<MvGnn> {
        &self.model
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Samples handed to a worker per dispenser pull for an `n`-sample
    /// stream: `max(batch_size, n / (threads · 4))`, rounded down to a
    /// whole number of batches. Small inputs keep per-batch dispatch;
    /// large ones amortise the dispenser and merge overhead while still
    /// leaving ~4 pulls per worker for load balancing. Because the
    /// dispatch size is a multiple of `batch_size`, batch *boundaries*
    /// (and so the f32 summation order) are untouched.
    pub fn dispatch_chunk(&self, n: usize) -> usize {
        let b = self.cfg.batch_size;
        let target = n / (self.cfg.threads * 4);
        (target / b).max(1) * b
    }

    /// Check a workspace out of the shared pool (fresh if none parked).
    fn checkout(&self) -> Workspace {
        self.workspaces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Park a workspace for the next stream call.
    fn checkin(&self, ws: Workspace) {
        self.workspaces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(ws);
    }

    /// Summed buffer-pool counters of the parked workspaces. Between
    /// stream calls every worker's workspace is parked, so this is the
    /// engine-wide total; `misses` flat across calls means the steady
    /// state is allocation-free.
    pub fn workspace_stats(&self) -> mvgnn_tensor::WorkspaceStats {
        let pool = self.workspaces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut agg = mvgnn_tensor::WorkspaceStats::default();
        for ws in pool.iter() {
            let s = ws.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.resident += s.resident;
        }
        agg
    }

    /// Run `work` over every `batch_size`-sample chunk of `samples` on up
    /// to `threads` workers and splice the per-chunk outputs back into
    /// input order. Workers pull [`Self::dispatch_chunk`]-sized slices
    /// through an atomic counter and cut them into `batch_size` batches
    /// locally, so thread count affects only *who* computes a batch,
    /// never which rows it holds. Each worker runs every batch against
    /// one pooled [`Workspace`]. A panicking worker is resumed on the
    /// caller thread (its workspace is abandoned, not corrupted).
    fn fan_out<R, F>(&self, samples: &[&GraphSample], work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Workspace, &[&GraphSample]) -> Vec<R> + Sync,
    {
        if samples.is_empty() {
            return Vec::new();
        }
        let chunks: Vec<&[&GraphSample]> =
            samples.chunks(self.dispatch_chunk(samples.len())).collect();
        let threads = self.cfg.threads.min(chunks.len());
        if threads == 1 {
            let mut ws = self.checkout();
            let out = samples
                .chunks(self.cfg.batch_size)
                .flat_map(|b| work(&mut ws, b))
                .collect();
            self.checkin(ws);
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut parts: Vec<(usize, Vec<R>)> = Vec::with_capacity(chunks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut ws = self.checkout();
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks.get(i) else { break };
                            let rows: Vec<R> = chunk
                                .chunks(self.cfg.batch_size)
                                .flat_map(|b| work(&mut ws, b))
                                .collect();
                            local.push((i, rows));
                        }
                        self.checkin(ws);
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => parts.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        parts.sort_by_key(|(i, _)| *i);
        parts.into_iter().flat_map(|(_, rows)| rows).collect()
    }

    /// Fused-head class per sample; order matches `samples`.
    pub fn predict_stream(&self, samples: &[&GraphSample]) -> Vec<usize> {
        self.fan_out(samples, |ws, chunk| self.model.predict_batch_ws(ws, chunk))
    }

    /// Fused logits per sample (one `classes`-wide row each).
    pub fn logits_stream(&self, samples: &[&GraphSample]) -> Vec<Vec<f32>> {
        self.fan_out(samples, |ws, chunk| self.model.logits_batch_ws(ws, chunk))
    }

    /// Finiteness-checked predictions per sample, with the per-row fault
    /// isolation of [`crate::infer::classify_module`]: any row whose
    /// batched verdict shows a non-finite head is re-run alone, so its
    /// degradation is judged by the single-sample path.
    pub fn predict_checked_stream(&self, samples: &[&GraphSample]) -> Vec<CheckedPrediction> {
        self.fan_out(samples, |ws, chunk| Cascade::gnn_batch(&self.model, ws, chunk))
    }

    /// Run one already-coalesced batch through a pooled workspace with
    /// the per-row fault isolation of [`Self::predict_checked_stream`].
    ///
    /// This is the dispatch hook for external batching layers (the
    /// `mvgnn-serve` micro-batcher): the caller owns arrival coalescing
    /// and deadline accounting and hands over a ready batch; the engine
    /// owns execution and workspace pooling, so steady-state calls
    /// allocate nothing. The batch is executed as-is on the calling
    /// thread — no chunking, no fan-out — which keeps the f32 summation
    /// order a function of the batch contents alone.
    ///
    /// A thin front over the cascade's tier-1 execution primitive
    /// ([`Cascade::gnn_batch`]) — the engine contributes only the
    /// pooled workspace.
    pub fn classify_batch(&self, samples: &[&GraphSample]) -> Vec<CheckedPrediction> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut ws = self.checkout();
        let out = Cascade::gnn_batch(&self.model, &mut ws, samples);
        self.checkin(ws);
        out
    }

    /// [`Self::classify_batch`] against an explicit model instead of the
    /// engine's own — the hot-swap dispatch hook. A serving layer that
    /// captured an older [`ModelGeneration`] at admission time runs its
    /// in-flight batch here, borrowing the engine's pooled workspaces
    /// (workspace buffers are model-agnostic scratch, so generations can
    /// share the pool freely).
    pub fn classify_batch_on(
        &self,
        model: &MvGnn,
        samples: &[&GraphSample],
    ) -> Vec<CheckedPrediction> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut ws = self.checkout();
        let out = Cascade::gnn_batch(model, &mut ws, samples);
        self.checkin(ws);
        out
    }
}

/// How a generation's weights got into memory — part of the census a
/// serving fleet reports per response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Parsed f32-by-f32 into owned buffers (`read_checkpoint` /
    /// `load_params`, or freshly initialised weights).
    Eager,
    /// Viewed zero-copy out of a mapped MVCK-v2 artifact
    /// (`MappedCheckpoint::install`).
    Mapped,
}

impl std::fmt::Display for LoadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadMode::Eager => write!(f, "eager"),
            LoadMode::Mapped => write!(f, "mapped"),
        }
    }
}

/// Identity card of one weight generation: which swap installed it,
/// where its bytes came from, and how they were loaded. Cheap to clone
/// into every response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryCensus {
    /// Monotonic generation counter (0 = the registry's initial model).
    pub generation: u64,
    /// Artifact path or a caller-chosen label (e.g. `"in-memory"`).
    pub source: String,
    /// How the weights were loaded.
    pub load_mode: LoadMode,
}

/// One immutable weight generation: the model plus its census. Requests
/// capture an `Arc<ModelGeneration>` at admission and carry it to
/// dispatch, so a swap can never change the weights under a batch that
/// was already admitted.
pub struct ModelGeneration {
    /// The shared model of this generation.
    pub model: Arc<MvGnn>,
    /// Provenance surfaced in serve responses.
    pub census: RegistryCensus,
}

impl std::fmt::Debug for ModelGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelGeneration").field("census", &self.census).finish_non_exhaustive()
    }
}

/// Hot-swappable model registry: an atomically replaceable
/// [`ModelGeneration`]. [`ModelRegistry::current`] is a short
/// lock-clone of an `Arc` (no contention in steady state);
/// [`ModelRegistry::swap`] validates architecture compatibility and
/// publishes the new generation for *subsequent* admissions only —
/// in-flight work keeps the generation it captured, which is the whole
/// zero-downtime rollout story.
pub struct ModelRegistry {
    current: Mutex<Arc<ModelGeneration>>,
    swaps: std::sync::atomic::AtomicU64,
}

impl ModelRegistry {
    /// Derive the census load mode from the store itself: any mapped
    /// tensor means the artifact is being served zero-copy.
    fn mode_of(model: &MvGnn) -> LoadMode {
        if model.params.mapped_tensor_count() > 0 {
            LoadMode::Mapped
        } else {
            LoadMode::Eager
        }
    }

    /// Start a registry at generation 0 with `model`, recording where it
    /// came from.
    pub fn new(model: Arc<MvGnn>, source: impl Into<String>) -> Self {
        let census =
            RegistryCensus { generation: 0, source: source.into(), load_mode: Self::mode_of(&model) };
        ModelRegistry {
            current: Mutex::new(Arc::new(ModelGeneration { model, census })),
            swaps: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The live generation; callers hold the returned `Arc` for as long
    /// as their request is in flight.
    pub fn current(&self) -> Arc<ModelGeneration> {
        Arc::clone(&self.current.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Generation id of the live model.
    pub fn generation(&self) -> u64 {
        self.current().census.generation
    }

    /// Publish a new generation. The replacement must be
    /// architecture-compatible with the live model (same `node_dim`,
    /// `aw_vocab` and class count — anything else would invalidate the
    /// serve layer's shape gate mid-flight); an incompatible swap is
    /// refused with a typed [`MvGnnError::Config`] and the live
    /// generation stays untouched. Returns the new generation id.
    pub fn swap(&self, model: Arc<MvGnn>, source: impl Into<String>) -> Result<u64, MvGnnError> {
        let live = self.current();
        let (a, b) = (&live.model.cfg, &model.cfg);
        if a.node_dim != b.node_dim || a.aw_vocab != b.aw_vocab || a.classes != b.classes {
            return Err(MvGnnError::Config(format!(
                "swap rejected: incompatible architecture (live node_dim/aw_vocab/classes \
                 {}/{}/{} vs candidate {}/{}/{})",
                a.node_dim, a.aw_vocab, a.classes, b.node_dim, b.aw_vocab, b.classes
            )));
        }
        let generation = self.swaps.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let census =
            RegistryCensus { generation, source: source.into(), load_mode: Self::mode_of(&model) };
        let fresh = Arc::new(ModelGeneration { model, census });
        *self.current.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = fresh;
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::model::MvGnnConfig;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn tiny_dataset() -> mvgnn_dataset::Dataset {
        build_corpus(&CorpusConfig {
            seeds: vec![4],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(16),
            test_fraction: 0.5,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 4 },
            sample: Default::default(),
            seed: 6,
            label_noise: 0.0,
            static_features: false,
        })
    }

    fn tiny_model(ds: &mvgnn_dataset::Dataset) -> MvGnn {
        let s0 = &ds.train[0].sample;
        MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab))
    }

    #[test]
    fn stream_matches_sequential_at_any_thread_count() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let reference: Vec<usize> = samples
            .chunks(3)
            .flat_map(|c| model.predict_batch(c))
            .collect();
        for threads in [1, 2, 8] {
            let eng = InferenceEngine::new(
                Arc::clone(&model),
                EngineConfig { threads, batch_size: 3 },
            );
            assert_eq!(eng.predict_stream(&samples), reference, "threads={threads}");
        }
    }

    #[test]
    fn logits_are_bit_identical_across_threads() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let one =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 1, batch_size: 4 });
        let many =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 8, batch_size: 4 });
        let a = one.logits_stream(&samples);
        let b = many.logits_stream(&samples);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            let ba: Vec<u32> = ra.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = rb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let ds = tiny_dataset();
        let eng = InferenceEngine::new(Arc::new(tiny_model(&ds)), EngineConfig::default());
        assert!(eng.predict_stream(&[]).is_empty());
        assert!(eng.logits_stream(&[]).is_empty());
        assert!(eng.predict_checked_stream(&[]).is_empty());
    }

    #[test]
    fn zero_config_clamps_to_one() {
        let ds = tiny_dataset();
        let eng = InferenceEngine::new(
            Arc::new(tiny_model(&ds)),
            EngineConfig { threads: 0, batch_size: 0 },
        );
        assert_eq!(eng.config(), EngineConfig { threads: 1, batch_size: 1 });
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().take(3).map(|s| &s.sample).collect();
        assert_eq!(eng.predict_stream(&samples).len(), 3);
    }

    #[test]
    fn degenerate_config_is_a_typed_error() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        for cfg in [
            EngineConfig { threads: 0, batch_size: 8 },
            EngineConfig { threads: 2, batch_size: 0 },
        ] {
            assert!(matches!(cfg.validate(), Err(MvGnnError::Config(_))), "{cfg:?}");
            assert!(matches!(
                InferenceEngine::try_new(Arc::clone(&model), cfg),
                Err(MvGnnError::Config(_))
            ));
        }
        let ok = EngineConfig { threads: 2, batch_size: 8 };
        assert!(ok.validate().is_ok());
        assert!(InferenceEngine::try_new(model, ok).is_ok());
    }

    #[test]
    fn classify_batch_matches_the_stream_path() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().take(5).map(|s| &s.sample).collect();
        let eng = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads: 1, batch_size: 5 },
        );
        assert_eq!(eng.classify_batch(&samples), eng.predict_checked_stream(&samples));
        assert!(eng.classify_batch(&[]).is_empty());
        // The pooled workspace is parked again after the call.
        let resident_before = eng.workspace_stats().resident;
        let _ = eng.classify_batch(&samples);
        assert!(eng.workspace_stats().resident >= resident_before);
    }

    #[test]
    fn dispatch_chunks_are_whole_batches() {
        let ds = tiny_dataset();
        let eng = InferenceEngine::new(
            Arc::new(tiny_model(&ds)),
            EngineConfig { threads: 4, batch_size: 32 },
        );
        // Small stream: one batch per pull.
        assert_eq!(eng.dispatch_chunk(40), 32);
        // Large stream: bigger pulls, but always a multiple of the batch
        // size so batch boundaries (and f32 summation order) never move.
        let big = eng.dispatch_chunk(10_000);
        assert!(big > 32);
        assert_eq!(big % 32, 0);
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let eng = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads: 1, batch_size: 4 },
        );
        let first = eng.predict_stream(&samples);
        let warm_misses = eng.workspace_stats().misses;
        assert!(warm_misses > 0, "cold run must have populated the pool");
        let second = eng.predict_stream(&samples);
        assert_eq!(first, second);
        assert_eq!(
            eng.workspace_stats().misses,
            warm_misses,
            "warm stream must be served entirely from the pool"
        );
    }

    #[test]
    fn registry_swaps_between_requests() {
        let ds = tiny_dataset();
        let model_a = Arc::new(tiny_model(&ds));
        let mut b = tiny_model(&ds);
        // Give B visibly different weights.
        for (_, d) in b.params.iter_mut() {
            for x in d.iter_mut() {
                *x *= 0.5;
            }
        }
        let model_b = Arc::new(b);

        let reg = ModelRegistry::new(Arc::clone(&model_a), "a.mvck");
        let gen0 = reg.current();
        assert_eq!(gen0.census.generation, 0);
        assert_eq!(gen0.census.source, "a.mvck");
        assert_eq!(gen0.census.load_mode, LoadMode::Eager);
        assert!(Arc::ptr_eq(&gen0.model, &model_a));

        let id = reg.swap(Arc::clone(&model_b), "b.mvck").unwrap();
        assert_eq!(id, 1);
        let gen1 = reg.current();
        assert_eq!(gen1.census.generation, 1);
        assert!(Arc::ptr_eq(&gen1.model, &model_b));
        // The generation captured before the swap still serves A.
        assert!(Arc::ptr_eq(&gen0.model, &model_a));
    }

    #[test]
    fn registry_refuses_incompatible_architectures() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let reg = ModelRegistry::new(Arc::clone(&model), "seed");
        let other = Arc::new(MvGnn::new(MvGnnConfig::small(
            model.cfg.node_dim + 1,
            model.cfg.aw_vocab,
        )));
        let err = reg.swap(other, "bad").unwrap_err();
        assert!(matches!(err, MvGnnError::Config(_)), "{err}");
        assert_eq!(reg.generation(), 0, "failed swap must not advance the registry");
    }

    #[test]
    fn classify_batch_on_matches_a_dedicated_engine() {
        let ds = tiny_dataset();
        let model_a = Arc::new(tiny_model(&ds));
        let mut b = tiny_model(&ds);
        for (_, d) in b.params.iter_mut() {
            for x in d.iter_mut() {
                *x = -*x;
            }
        }
        let model_b = Arc::new(b);
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().take(4).map(|s| &s.sample).collect();
        let eng_a = InferenceEngine::new(
            Arc::clone(&model_a),
            EngineConfig { threads: 1, batch_size: 4 },
        );
        let eng_b = InferenceEngine::new(
            Arc::clone(&model_b),
            EngineConfig { threads: 1, batch_size: 4 },
        );
        // Dispatching B's batch through A's engine must give B's answers.
        assert_eq!(eng_a.classify_batch_on(&model_b, &samples), eng_b.classify_batch(&samples));
        assert!(eng_a.classify_batch_on(&model_b, &[]).is_empty());
    }

    #[test]
    fn poisoned_model_degrades_rows_not_the_stream() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        FaultPlan::new(11).poison_params(&mut model.params, 64);
        let model = Arc::new(model);
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let eng =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 4, batch_size: 4 });
        let rows = eng.predict_checked_stream(&samples);
        assert_eq!(rows.len(), samples.len());
        // Every row's verdict must match the isolated single-sample path.
        for (row, s) in rows.iter().zip(&samples) {
            assert_eq!(*row, model.predict_checked(s));
        }
    }
}
