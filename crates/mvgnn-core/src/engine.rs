//! Concurrent inference engine: fan a stream of samples over worker
//! threads as packed batches, preserving input order.
//!
//! The engine wraps an [`Arc<MvGnn>`] — the weights are an immutable
//! value store ([`mvgnn_tensor::Params`]) and every forward pass owns a
//! private tape, so any number of workers can run inference on the same
//! model without locks or weight clones.
//!
//! Determinism contract: the stream is cut into fixed-size batches
//! *before* dispatch, workers pull whole batches, and results are merged
//! back in input order. Batch boundaries depend only on
//! [`EngineConfig::batch_size`], never on the thread count or scheduling,
//! so logits and predictions are bit-identical at 1, 2, or 8 threads —
//! and identical to the sequential [`MvGnn::predict_batch`] path over the
//! same batch size.
//!
//! Fault semantics match per-loop graceful degradation in
//! [`crate::infer`]: a row whose checked prediction shows any non-finite
//! head is re-run through single-sample inference, so its verdict is
//! decided in isolation from its batch-mates.

use crate::model::{CheckedPrediction, MvGnn};
use mvgnn_embed::GraphSample;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. Values are clamped to at least 1; more threads
    /// than batches is harmless (the surplus workers exit immediately).
    pub threads: usize,
    /// Samples per packed forward pass. This — not `threads` — fixes the
    /// batch boundaries, and with them the f32 summation order.
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, batch_size: 32 }
    }
}

/// Order-preserving concurrent inference over a shared model.
#[derive(Clone)]
pub struct InferenceEngine {
    model: Arc<MvGnn>,
    cfg: EngineConfig,
}

impl InferenceEngine {
    /// Build an engine over a shared model. Zero `threads`/`batch_size`
    /// are treated as 1.
    pub fn new(model: Arc<MvGnn>, cfg: EngineConfig) -> Self {
        let cfg = EngineConfig {
            threads: cfg.threads.max(1),
            batch_size: cfg.batch_size.max(1),
        };
        Self { model, cfg }
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<MvGnn> {
        &self.model
    }

    /// The (clamped) configuration.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Run `work` over every `batch_size`-sample chunk of `samples` on up
    /// to `threads` workers and splice the per-chunk outputs back into
    /// input order. Chunks are dispensed through an atomic counter, so
    /// thread count affects only *who* computes a chunk, never which rows
    /// it holds. A panicking worker is resumed on the caller thread.
    fn fan_out<R, F>(&self, samples: &[&GraphSample], work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&[&GraphSample]) -> Vec<R> + Sync,
    {
        let chunks: Vec<&[&GraphSample]> = samples.chunks(self.cfg.batch_size).collect();
        if chunks.is_empty() {
            return Vec::new();
        }
        let threads = self.cfg.threads.min(chunks.len());
        if threads == 1 {
            return chunks.into_iter().flat_map(&work).collect();
        }
        let next = AtomicUsize::new(0);
        let mut parts: Vec<(usize, Vec<R>)> = Vec::with_capacity(chunks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(chunk) = chunks.get(i) else { break };
                            local.push((i, work(chunk)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => parts.extend(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        parts.sort_by_key(|(i, _)| *i);
        parts.into_iter().flat_map(|(_, rows)| rows).collect()
    }

    /// Fused-head class per sample; order matches `samples`.
    pub fn predict_stream(&self, samples: &[&GraphSample]) -> Vec<usize> {
        self.fan_out(samples, |chunk| self.model.predict_batch(chunk))
    }

    /// Fused logits per sample (one `classes`-wide row each).
    pub fn logits_stream(&self, samples: &[&GraphSample]) -> Vec<Vec<f32>> {
        self.fan_out(samples, |chunk| self.model.logits_batch(chunk))
    }

    /// Finiteness-checked predictions per sample, with the per-row fault
    /// isolation of [`crate::infer::classify_module`]: any row whose
    /// batched verdict shows a non-finite head is re-run alone, so its
    /// degradation is judged by the single-sample path.
    pub fn predict_checked_stream(&self, samples: &[&GraphSample]) -> Vec<CheckedPrediction> {
        self.fan_out(samples, |chunk| {
            self.model
                .predict_checked_batch(chunk)
                .into_iter()
                .zip(chunk)
                .map(|(checked, s)| {
                    let faulty = checked.fused.is_none()
                        || checked.node.is_none()
                        || checked.structural.is_none();
                    if faulty {
                        self.model.predict_checked(s)
                    } else {
                        checked
                    }
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::model::MvGnnConfig;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn tiny_dataset() -> mvgnn_dataset::Dataset {
        build_corpus(&CorpusConfig {
            seeds: vec![4],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(16),
            test_fraction: 0.5,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 4 },
            sample: Default::default(),
            seed: 6,
            label_noise: 0.0,
        })
    }

    fn tiny_model(ds: &mvgnn_dataset::Dataset) -> MvGnn {
        let s0 = &ds.train[0].sample;
        MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab))
    }

    #[test]
    fn stream_matches_sequential_at_any_thread_count() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let reference: Vec<usize> = samples
            .chunks(3)
            .flat_map(|c| model.predict_batch(c))
            .collect();
        for threads in [1, 2, 8] {
            let eng = InferenceEngine::new(
                Arc::clone(&model),
                EngineConfig { threads, batch_size: 3 },
            );
            assert_eq!(eng.predict_stream(&samples), reference, "threads={threads}");
        }
    }

    #[test]
    fn logits_are_bit_identical_across_threads() {
        let ds = tiny_dataset();
        let model = Arc::new(tiny_model(&ds));
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let one =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 1, batch_size: 4 });
        let many =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 8, batch_size: 4 });
        let a = one.logits_stream(&samples);
        let b = many.logits_stream(&samples);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            let ba: Vec<u32> = ra.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = rb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let ds = tiny_dataset();
        let eng = InferenceEngine::new(Arc::new(tiny_model(&ds)), EngineConfig::default());
        assert!(eng.predict_stream(&[]).is_empty());
        assert!(eng.logits_stream(&[]).is_empty());
        assert!(eng.predict_checked_stream(&[]).is_empty());
    }

    #[test]
    fn zero_config_clamps_to_one() {
        let ds = tiny_dataset();
        let eng = InferenceEngine::new(
            Arc::new(tiny_model(&ds)),
            EngineConfig { threads: 0, batch_size: 0 },
        );
        assert_eq!(eng.config(), EngineConfig { threads: 1, batch_size: 1 });
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().take(3).map(|s| &s.sample).collect();
        assert_eq!(eng.predict_stream(&samples).len(), 3);
    }

    #[test]
    fn poisoned_model_degrades_rows_not_the_stream() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        FaultPlan::new(11).poison_params(&mut model.params, 64);
        let model = Arc::new(model);
        let samples: Vec<&mvgnn_embed::GraphSample> =
            ds.test.iter().map(|s| &s.sample).collect();
        let eng =
            InferenceEngine::new(Arc::clone(&model), EngineConfig { threads: 4, batch_size: 4 });
        let rows = eng.predict_checked_stream(&samples);
        assert_eq!(rows.len(), samples.len());
        // Every row's verdict must match the isolated single-sample path.
        for (row, s) in rows.iter().zip(&samples) {
            assert_eq!(*row, model.predict_checked(s));
        }
    }
}
