//! Streaming epochs over on-disk MVSH corpus shards.
//!
//! [`train_streaming`] is the trainer's out-of-core mode: instead of a
//! `&[LabeledSample]` held in memory, it takes a list of shard files
//! (written by `mvgnn_dataset::write_shard`) and runs the same
//! optimizer loop — data-parallel gradient accumulation, divergence
//! rollback, checkpointing — while only ever holding the prefetch ring
//! plus one in-flight batch in memory. RSS is bounded by
//! `(prefetch + 2) × batch` regardless of corpus size.
//!
//! The epoch state machine:
//!
//! 1. **Shuffle** — the shard *order* is permuted deterministically,
//!    keyed `(cfg.seed, epoch)` (shard granularity: record order inside
//!    a shard is the canonical generation order, so a training curve is
//!    a pure function of configuration + shard set).
//! 2. **Produce** — a reader thread walks the permuted shards through
//!    `ShardReader`'s reused record buffer, packs consecutive samples
//!    into `batch_size` groups (batches may span shard boundaries), and
//!    pushes them into a bounded `sync_channel(prefetch)` ring; a full
//!    ring blocks the producer, which is what bounds RSS.
//! 3. **Consume** — the training thread pops batches and applies the
//!    shared `step_batch` (pooled `Workspace` packing, clip, Adam).
//!    A non-finite gradient aborts the epoch, drains the ring, and the
//!    caller's rollback loop restores the last good snapshot.
//! 4. A corrupt shard surfaces as a typed [`MvGnnError::Shard`]; the
//!    model keeps its last completed epoch's weights.

use crate::checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
use crate::error::MvGnnError;
use crate::model::MvGnn;
use crate::trainer::{grad_pools, mix, step_batch, EpochStats, TrainConfig};
use mvgnn_dataset::{LabeledSample, MappedShardReader, ShardError, ShardReader};
use mvgnn_tensor::optim::Adam;
use mvgnn_tensor::Workspace;
use std::path::PathBuf;
use std::sync::mpsc;

/// Configuration of the streaming epoch mode.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Bounded prefetch-ring depth in batches. The producer thread stays
    /// at most this many batches ahead of the optimizer, so peak RSS is
    /// `(prefetch + 2) × batch` samples (ring + producer's pending batch
    /// + the batch being stepped). Must be ≥ 1.
    pub prefetch: usize,
    /// Read shards through [`MappedShardReader`] instead of buffered
    /// I/O: records decode straight out of the page cache with no read
    /// syscalls and no record buffer. Sample-for-sample (and therefore
    /// trained-weight-for-weight) identical to the buffered mode —
    /// pinned by `mmap_and_buffered_streaming_train_identically`.
    pub mmap: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { prefetch: 4, mmap: false }
    }
}

/// What one epoch's producer/consumer run observed.
enum StreamEpoch {
    Done { loss: f32, accuracy: f32 },
    Diverged { loss: f32 },
}

/// Open the chosen reader as a uniform record iterator. The two readers
/// yield identical samples for an intact shard and identical typed
/// errors for a corrupt one, so everything downstream is mode-blind.
fn open_records(
    path: &std::path::Path,
    mmap: bool,
) -> Result<Box<dyn Iterator<Item = Result<LabeledSample, ShardError>>>, ShardError> {
    Ok(if mmap {
        Box::new(MappedShardReader::open(path)?)
    } else {
        Box::new(ShardReader::open(path)?)
    })
}

fn run_stream_epoch(
    model: &mut MvGnn,
    shards: &[PathBuf],
    order: &[usize],
    cfg: &TrainConfig,
    stream: &StreamConfig,
    opt: &mut Adam,
    pools: &mut [Workspace],
) -> Result<StreamEpoch, MvGnnError> {
    let paths: Vec<PathBuf> = order.iter().map(|&i| shards[i].clone()).collect();
    let batch_size = cfg.batch_size;
    let mmap = stream.mmap;
    let (tx, rx) = mpsc::sync_channel::<Result<Vec<LabeledSample>, ShardError>>(stream.prefetch);
    // The producer owns the shard readers; one reused record buffer per
    // open shard (none at all in mmap mode), one pending batch. A send on
    // a full ring blocks until the optimizer catches up; a send after the
    // consumer hung up errors, which is the shutdown signal on early exit.
    let producer = std::thread::spawn(move || {
        let mut pending: Vec<LabeledSample> = Vec::with_capacity(batch_size);
        for path in &paths {
            let reader = match open_records(path, mmap) {
                Ok(r) => r,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            };
            for record in reader {
                match record {
                    Ok(sample) => {
                        pending.push(sample);
                        if pending.len() == batch_size {
                            let full = std::mem::replace(
                                &mut pending,
                                Vec::with_capacity(batch_size),
                            );
                            if tx.send(Ok(full)).is_err() {
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        }
        if !pending.is_empty() {
            let _ = tx.send(Ok(pending));
        }
    });

    let mut epoch_loss = 0.0f64;
    let mut epoch_correct = 0usize;
    let mut seen = 0usize;
    let mut outcome: Option<Result<StreamEpoch, MvGnnError>> = None;
    for message in &rx {
        match message {
            Ok(batch) => {
                let refs: Vec<&LabeledSample> = batch.iter().collect();
                match step_batch(model, &refs, cfg, opt, pools) {
                    Some((loss, correct)) => {
                        epoch_loss += loss;
                        epoch_correct += correct;
                        seen += batch.len();
                    }
                    None => {
                        let loss = (epoch_loss / seen.max(1) as f64) as f32;
                        outcome = Some(Ok(StreamEpoch::Diverged { loss }));
                        break;
                    }
                }
            }
            Err(e) => {
                outcome = Some(Err(MvGnnError::Shard(e)));
                break;
            }
        }
    }
    // Dropping the receiver fails any blocked producer send, so the
    // thread always winds down; its panics (it has no panic sites of its
    // own) would surface here rather than vanish.
    drop(rx);
    if producer.join().is_err() {
        return Err(MvGnnError::Io(std::io::Error::other(
            "streaming producer thread panicked",
        )));
    }
    if let Some(early) = outcome {
        return early;
    }
    if seen == 0 {
        return Err(MvGnnError::Config("streaming corpus contains no samples".into()));
    }
    let loss = (epoch_loss / seen as f64) as f32;
    if !loss.is_finite() {
        return Ok(StreamEpoch::Diverged { loss });
    }
    Ok(StreamEpoch::Done { loss, accuracy: epoch_correct as f32 / seen as f32 })
}

/// Train the model by streaming epochs over on-disk shards; returns
/// per-epoch telemetry exactly like [`crate::trainer::train`].
///
/// Semantics shared with the in-memory trainer: divergence rolls back to
/// the last completed epoch, halves the learning rate and retries up to
/// `cfg.max_retries` times; `cfg.checkpoint_path` / `cfg.resume_from`
/// work unchanged. Differences: the shuffle is at shard granularity
/// (see the module docs), and a corrupt shard is a typed
/// [`MvGnnError::Shard`] rather than a panic.
pub fn train_streaming(
    model: &mut MvGnn,
    shards: &[PathBuf],
    cfg: &TrainConfig,
    stream: &StreamConfig,
) -> Result<Vec<EpochStats>, MvGnnError> {
    if shards.is_empty() {
        return Err(MvGnnError::Config("no shard files given".into()));
    }
    if cfg.batch_size == 0 {
        return Err(MvGnnError::Config("batch_size must be >= 1".into()));
    }
    if !cfg.lr.is_finite() || cfg.lr <= 0.0 {
        return Err(MvGnnError::Config(format!("lr must be finite and positive, got {}", cfg.lr)));
    }
    if stream.prefetch == 0 {
        return Err(MvGnnError::Config("prefetch must be >= 1".into()));
    }
    if cfg.epochs == 0 {
        return Ok(Vec::new());
    }

    let mut lr = cfg.lr;
    let mut retries = 0usize;
    let mut stats: Vec<EpochStats> = Vec::with_capacity(cfg.epochs);
    let mut start_epoch = 0usize;

    if let Some(path) = &cfg.resume_from {
        let cp = read_checkpoint(path)?;
        model.load(&cp.weights)?;
        lr = cp.lr;
        retries = cp.retries;
        stats = cp.stats;
        start_epoch = cp.epoch + 1;
    }

    let mut opt = Adam::new(lr);
    let mut last_good = model.save();
    let mut pools = grad_pools(cfg);
    let mut order: Vec<usize> = (0..shards.len()).collect();
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        // Deterministic shard-granularity shuffle.
        order.sort_by_key(|&i| mix(cfg.seed ^ epoch as u64, i as u64));
        match run_stream_epoch(model, shards, &order, cfg, stream, &mut opt, &mut pools)?
        {
            StreamEpoch::Done { loss, accuracy } => {
                stats.push(EpochStats { epoch, loss, accuracy });
                last_good = model.save();
                if let Some(path) = &cfg.checkpoint_path {
                    write_checkpoint(
                        path,
                        &Checkpoint {
                            epoch,
                            lr,
                            retries,
                            calibration: None,
                            stats: stats.clone(),
                            weights: last_good.to_vec(),
                        },
                    )?;
                }
                epoch += 1;
            }
            StreamEpoch::Diverged { loss } => {
                if retries >= cfg.max_retries {
                    return Err(MvGnnError::Diverged { epoch, retries, loss });
                }
                retries += 1;
                lr *= 0.5;
                model.load(&last_good)?;
                opt = Adam::new(lr);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MvGnn, MvGnnConfig};
    use crate::trainer::evaluate;
    use mvgnn_dataset::{fit_inst2vec, write_shard, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn stream_cfg() -> CorpusConfig {
        CorpusConfig {
            seeds: vec![3, 4],
            opt_levels: vec![OptLevel::O0, OptLevel::O2],
            per_class: None,
            test_fraction: 0.25,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            sample: Default::default(),
            seed: 5,
            label_noise: 0.0,
            static_features: false,
        }
    }

    fn write_shards(dir: &std::path::Path, num_shards: usize) -> Vec<PathBuf> {
        std::fs::create_dir_all(dir).unwrap();
        let cfg = stream_cfg();
        let emb = fit_inst2vec(&cfg);
        (0..num_shards)
            .map(|s| write_shard(dir, &cfg, &emb, s, num_shards).unwrap().0)
            .collect()
    }

    fn model_for(shards: &[PathBuf]) -> MvGnn {
        let first = ShardReader::open(&shards[0]).unwrap().next().unwrap().unwrap();
        MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab))
    }

    #[test]
    fn streaming_is_deterministic_and_prefetch_invariant() {
        let dir = std::env::temp_dir().join("mvgnn_stream_det_test");
        let shards = write_shards(&dir, 3);
        let run = |prefetch: usize| {
            let mut model = model_for(&shards);
            let cfg = TrainConfig { epochs: 3, batch_size: 8, ..Default::default() };
            let stats =
                train_streaming(&mut model, &shards, &cfg, &StreamConfig { prefetch, ..Default::default() }).unwrap();
            (stats, model.save().to_vec())
        };
        let (stats_a, weights_a) = run(1);
        let (stats_b, weights_b) = run(6);
        assert_eq!(stats_a, stats_b, "telemetry must not depend on ring depth");
        assert_eq!(weights_a, weights_b, "weights must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_and_buffered_streaming_train_identically() {
        let dir = std::env::temp_dir().join("mvgnn_stream_mmap_parity_test");
        let shards = write_shards(&dir, 3);
        let run = |mmap: bool| {
            let mut model = model_for(&shards);
            let cfg = TrainConfig { epochs: 3, batch_size: 8, ..Default::default() };
            let stream = StreamConfig { mmap, ..Default::default() };
            let stats = train_streaming(&mut model, &shards, &cfg, &stream).unwrap();
            (stats, model.save().to_vec())
        };
        let (stats_buf, weights_buf) = run(false);
        let (stats_map, weights_map) = run(true);
        assert_eq!(stats_buf, stats_map, "telemetry must not depend on the read path");
        // `save()` snapshots raw weight bytes, so equality is bit-level.
        assert_eq!(weights_buf, weights_map, "zero-copy mode must train bit-identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_streaming_surfaces_corruption_typed() {
        let dir = std::env::temp_dir().join("mvgnn_stream_mmap_corrupt_test");
        let shards = write_shards(&dir, 2);
        let mut bytes = std::fs::read(&shards[0]).unwrap();
        let at = bytes.len() - 9;
        bytes[at] ^= 0xff;
        std::fs::write(&shards[0], &bytes).unwrap();
        let mut model = model_for(&shards);
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let err = train_streaming(
            &mut model,
            &shards,
            &cfg,
            &StreamConfig { mmap: true, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, MvGnnError::Shard(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_trains_and_the_model_is_usable() {
        let dir = std::env::temp_dir().join("mvgnn_stream_train_test");
        let shards = write_shards(&dir, 2);
        let mut model = model_for(&shards);
        let cfg = TrainConfig { epochs: 8, batch_size: 8, ..Default::default() };
        let stats = train_streaming(&mut model, &shards, &cfg, &StreamConfig::default()).unwrap();
        assert_eq!(stats.len(), 8);
        assert!(
            stats.last().unwrap().loss < stats[0].loss,
            "loss should fall: {} -> {}",
            stats[0].loss,
            stats.last().unwrap().loss
        );
        // The streamed corpus is raw (unbalanced): evaluate on an
        // in-memory assembly of the same configuration to check the
        // weights are usable end-to-end.
        let ds = mvgnn_dataset::build_corpus(&stream_cfg());
        let m = evaluate(&model, &ds.test);
        assert_eq!(m.total(), ds.test.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_surfaces_typed_error_not_panic() {
        let dir = std::env::temp_dir().join("mvgnn_stream_corrupt_test");
        let shards = write_shards(&dir, 2);
        // Flip one payload byte near the end of the second shard.
        let mut bytes = std::fs::read(&shards[1]).unwrap();
        let at = bytes.len() - 9;
        bytes[at] ^= 0xff;
        std::fs::write(&shards[1], &bytes).unwrap();
        let mut model = model_for(&shards);
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..Default::default() };
        let err =
            train_streaming(&mut model, &shards, &cfg, &StreamConfig::default()).unwrap_err();
        assert!(matches!(err, MvGnnError::Shard(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_streaming_configs_fail_fast() {
        let dir = std::env::temp_dir().join("mvgnn_stream_cfg_test");
        let shards = write_shards(&dir, 1);
        let mut model = model_for(&shards);
        let empty = train_streaming(
            &mut model,
            &[],
            &TrainConfig::default(),
            &StreamConfig::default(),
        );
        assert!(matches!(empty, Err(MvGnnError::Config(_))));
        let bad_ring = train_streaming(
            &mut model,
            &shards,
            &TrainConfig::default(),
            &StreamConfig { prefetch: 0, ..Default::default() },
        );
        assert!(matches!(bad_ring, Err(MvGnnError::Config(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
