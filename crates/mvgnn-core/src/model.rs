//! The MV-GNN model (paper Fig. 3).

use mvgnn_embed::GraphSample;
use mvgnn_gnn::{Dgcnn, DgcnnConfig};
use mvgnn_nn::{Embedding, Linear};
use mvgnn_tensor::init;
use mvgnn_tensor::tape::{argmax_rows, Params, Tape, Var};
use rand::rngs::StdRng;

/// Which views participate — the multi-view model plus the single-view
/// configurations used by the Static-GNN baseline and the ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// Both views fused (the paper's model).
    Multi,
    /// Node-feature view only.
    NodeOnly,
    /// Structural view only.
    StructOnly,
}

/// MV-GNN hyperparameters.
#[derive(Debug, Clone)]
pub struct MvGnnConfig {
    /// Node-feature width of the samples (inst2vec dim + kind + Table I).
    pub node_dim: usize,
    /// Anonymous-walk vocabulary size of the samples.
    pub aw_vocab: usize,
    /// Learned anonymous-walk embedding width.
    pub aw_dim: usize,
    /// DGCNN for the node-feature view.
    pub node_dgcnn: DgcnnConfig,
    /// DGCNN for the structural view.
    pub struct_dgcnn: DgcnnConfig,
    /// Fusion layer width.
    pub fusion_dim: usize,
    /// Softmax temperature (paper: 0.5).
    pub temperature: f32,
    /// Which views are active.
    pub mode: ViewMode,
    /// Zero out the Table I dynamic features (static-only ablation).
    pub drop_dynamic: bool,
    /// Output classes of the fused and per-view heads (2 = the paper's
    /// binary task; 4 = the pattern-classification extension).
    pub classes: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl MvGnnConfig {
    /// A compact configuration sized for CPU training. `node_dim` and
    /// `aw_vocab` must match the dataset's samples.
    pub fn small(node_dim: usize, aw_vocab: usize) -> Self {
        let gc = vec![24, 24, 1];
        let mk = |in_dim: usize| DgcnnConfig {
            in_dim,
            gc_dims: gc.clone(),
            k: 28,
            conv1_out: 12,
            conv2_ksize: 3,
            conv2_out: 24,
            dense_hidden: 48,
            classes: 2,
        };
        let aw_dim = 16;
        Self {
            node_dim,
            aw_vocab,
            aw_dim,
            node_dgcnn: mk(node_dim),
            struct_dgcnn: mk(aw_dim),
            fusion_dim: 64,
            temperature: 0.5,
            mode: ViewMode::Multi,
            drop_dynamic: false,
            classes: 2,
            seed: 0x31337,
        }
    }

    /// The paper-scale configuration (200-dim features, SortPooling
    /// k = 135) — slower, for `--paper-scale` runs.
    pub fn paper(node_dim: usize, aw_vocab: usize) -> Self {
        let mut cfg = Self::small(node_dim, aw_vocab);
        let gc = vec![32, 32, 32, 1];
        for (d, in_dim) in
            [(&mut cfg.node_dgcnn, node_dim), (&mut cfg.struct_dgcnn, cfg.aw_dim)]
        {
            d.in_dim = in_dim;
            d.gc_dims = gc.clone();
            d.k = 135;
            d.conv1_out = 16;
            d.conv2_ksize = 5;
            d.conv2_out = 32;
            d.dense_hidden = 128;
        }
        cfg.fusion_dim = 128;
        cfg
    }
}

/// Model outputs for one sample.
pub struct Forward {
    /// Fused logits (or the active single view's logits).
    pub logits: Var,
    /// Node-view logits (when that view is active).
    pub node_logits: Option<Var>,
    /// Structural-view logits (when that view is active).
    pub struct_logits: Option<Var>,
}

/// The multi-view GNN.
pub struct MvGnn {
    /// Configuration (public for ablation drivers).
    pub cfg: MvGnnConfig,
    /// Persistent parameters.
    pub params: Params,
    node_view: Dgcnn,
    struct_view: Dgcnn,
    aw_embed: Embedding,
    fusion: Linear,
    head: Linear,
    node_head: Linear,
    struct_head: Linear,
}

impl MvGnn {
    /// Register all parameters.
    pub fn new(cfg: MvGnnConfig) -> Self {
        let mut params = Params::new();
        let mut rng: StdRng = init::rng(cfg.seed);
        assert_eq!(cfg.struct_dgcnn.in_dim, cfg.aw_dim, "struct view consumes AW embeddings");
        assert_eq!(cfg.node_dgcnn.in_dim, cfg.node_dim, "node view consumes node features");
        let node_view = Dgcnn::new(&mut params, "node", cfg.node_dgcnn.clone(), &mut rng);
        let struct_view = Dgcnn::new(&mut params, "struct", cfg.struct_dgcnn.clone(), &mut rng);
        let aw_embed = Embedding::new(&mut params, "aw", cfg.aw_vocab, cfg.aw_dim, &mut rng);
        let fused_in = cfg.node_dgcnn.embed_dim() + cfg.struct_dgcnn.embed_dim();
        let fusion = Linear::new(&mut params, "fusion", fused_in, cfg.fusion_dim, true, &mut rng);
        let head = Linear::new(&mut params, "head", cfg.fusion_dim, cfg.classes, true, &mut rng);
        let node_head = Linear::new(
            &mut params,
            "node_head",
            cfg.node_dgcnn.embed_dim(),
            cfg.classes,
            true,
            &mut rng,
        );
        let struct_head = Linear::new(
            &mut params,
            "struct_head",
            cfg.struct_dgcnn.embed_dim(),
            cfg.classes,
            true,
            &mut rng,
        );
        Self { cfg, params, node_view, struct_view, aw_embed, fusion, head, node_head, struct_head }
    }

    /// Node-feature matrix of a sample, honouring `drop_dynamic`: the
    /// static-only configuration (Shen et al.) zeroes the Table I vector
    /// *and* erases what only a profiler can know about edges — the
    /// carried/loop-independent distinction is merged into one dep count.
    fn node_feature_input(&self, tape: &mut Tape<'_>, s: &GraphSample) -> Var {
        let mut feats = s.node_feats.clone();
        if self.cfg.drop_dynamic {
            let dyn_dim = mvgnn_profiler::DynamicFeatures::DIM;
            let edge_dim = mvgnn_embed::sample::EDGE_DIM;
            for r in 0..s.n {
                let off = r * s.node_dim + (s.node_dim - dyn_dim);
                feats[off..off + dyn_dim].fill(0.0);
                // Edge census layout: [defuse o/i, carried RAW o/i,
                // carried WAR o/i, carried WAW o/i, indep o/i, hier o/i];
                // the dep counts come from profiling, so the static-only
                // model loses them entirely (def-use and hierarchy are
                // static facts and stay).
                let eoff = r * s.node_dim + (s.node_dim - dyn_dim - edge_dim);
                feats[eoff + 2..eoff + 10].fill(0.0);
            }
        }
        tape.input(feats, s.n, s.node_dim)
    }

    /// Record the forward pass for one sample. The caller owns the tape so
    /// training can attach losses; `Self::params` must back the tape.
    pub fn forward_on(
        &self,
        tape: &mut Tape<'_>,
        s: &GraphSample,
    ) -> Forward {
        assert_eq!(s.node_dim, self.cfg.node_dim, "sample/node-dim mismatch");
        assert_eq!(s.aw_vocab, self.cfg.aw_vocab, "sample/AW-vocab mismatch");
        let use_node = self.cfg.mode != ViewMode::StructOnly;
        let use_struct = self.cfg.mode != ViewMode::NodeOnly;

        let mut node_embed = None;
        if use_node {
            let x = self.node_feature_input(tape, s);
            node_embed = Some(self.node_view.embed(tape, &s.adj, x));
        }
        let mut struct_embed = None;
        if use_struct {
            let dists = tape.input(s.struct_dists.clone(), s.n, s.aw_vocab);
            let emb = self.aw_embed.forward_soft(tape, dists);
            struct_embed = Some(self.struct_view.embed(tape, &s.adj, emb));
        }

        let node_logits = node_embed.map(|e| self.node_head.forward(tape, e));
        let struct_logits = struct_embed.map(|e| self.struct_head.forward(tape, e));

        let logits = match (node_embed, struct_embed) {
            (Some(n), Some(st)) => {
                // h = W·tanh(h_n ⊕ h_s) + b  (paper Eq. 5), then the head.
                let cat = tape.concat_cols(n, st);
                let t = tape.tanh(cat);
                let fused = self.fusion.forward(tape, t);
                self.head.forward(tape, fused)
            }
            (Some(_), None) => node_logits.expect("node head exists"),
            (None, Some(_)) => struct_logits.expect("struct head exists"),
            (None, None) => unreachable!("at least one view is always active"),
        };
        Forward { logits, node_logits, struct_logits }
    }

    /// Predict the class of one sample (inference only).
    pub fn predict(&mut self, s: &GraphSample) -> usize {
        self.predict_detailed(s).0
    }

    /// Serialise the trained weights (architecture config not included;
    /// reload into a model built with the same [`MvGnnConfig`]).
    pub fn save(&self) -> bytes::Bytes {
        mvgnn_tensor::save_params(&self.params)
    }

    /// Load weights previously produced by [`MvGnn::save`] into this
    /// model; the architecture must match.
    pub fn load(&mut self, bytes: &[u8]) -> Result<(), mvgnn_tensor::PersistError> {
        mvgnn_tensor::load_params(&mut self.params, bytes)
    }

    /// Predict with finiteness checking: any head whose logits contain
    /// NaN/Inf reports `None` instead of an arbitrary argmax, so callers
    /// can fall back to a healthy view (or a conservative default)
    /// instead of trusting garbage.
    pub fn predict_checked(&mut self, s: &GraphSample) -> CheckedPrediction {
        let mut params = std::mem::take(&mut self.params);
        let result = {
            let mut tape = Tape::new(&mut params);
            let fwd = self.forward_on(&mut tape, s);
            let c = self.cfg.classes;
            let check = |tape: &Tape<'_>, v| {
                let data = tape.data(v);
                data.iter().all(|x| x.is_finite()).then(|| argmax_rows(data, 1, c)[0])
            };
            let fused = check(&tape, fwd.logits);
            CheckedPrediction {
                fused,
                node: fwd.node_logits.map_or(fused, |v| check(&tape, v)),
                structural: fwd.struct_logits.map_or(fused, |v| check(&tape, v)),
            }
        };
        self.params = params;
        result
    }

    /// Predict with all three heads: `(fused, node, struct)` — absent
    /// views repeat the fused prediction.
    pub fn predict_detailed(&mut self, s: &GraphSample) -> (usize, usize, usize) {
        // Split borrow: move params out, run against a detached tape,
        // put it back. Params is cheap to move (Vec of Vecs).
        let mut params = std::mem::take(&mut self.params);
        let result = {
            let mut tape = Tape::new(&mut params);
            let fwd = self.forward_on(&mut tape, s);
            let c = self.cfg.classes;
            let fused = argmax_rows(tape.data(fwd.logits), 1, c)[0];
            let node = fwd
                .node_logits
                .map(|v| argmax_rows(tape.data(v), 1, c)[0])
                .unwrap_or(fused);
            let st = fwd
                .struct_logits
                .map(|v| argmax_rows(tape.data(v), 1, c)[0])
                .unwrap_or(fused);
            (fused, node, st)
        };
        self.params = params;
        result
    }
}

/// Per-view predictions from [`MvGnn::predict_checked`]; a view is `None`
/// when its logits were non-finite (absent views mirror the fused head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedPrediction {
    /// The fused (multi-view) head.
    pub fused: Option<usize>,
    /// The node-view head.
    pub node: Option<usize>,
    /// The structure-view head.
    pub structural: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_peg::{build_peg, loop_subpeg};
    use mvgnn_profiler::{build_cus, loop_features, profile_module};

    fn sample() -> GraphSample {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        build_sample(&sub, &i2v, &feats, &SampleConfig::default(), Some(1))
    }

    #[test]
    fn forward_produces_all_heads_in_multi_mode() {
        let s = sample();
        let mut model = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let (fused, node, st) = model.predict_detailed(&s);
        assert!(fused <= 1 && node <= 1 && st <= 1);
    }

    #[test]
    fn single_view_modes_work() {
        let s = sample();
        for mode in [ViewMode::NodeOnly, ViewMode::StructOnly] {
            let mut cfg = MvGnnConfig::small(s.node_dim, s.aw_vocab);
            cfg.mode = mode;
            let mut model = MvGnn::new(cfg);
            let p = model.predict(&s);
            assert!(p <= 1, "{mode:?}");
        }
    }

    #[test]
    fn drop_dynamic_changes_input_not_shape() {
        let s = sample();
        let mut cfg = MvGnnConfig::small(s.node_dim, s.aw_vocab);
        cfg.drop_dynamic = true;
        let mut model = MvGnn::new(cfg);
        let _ = model.predict(&s); // shapes must hold
    }

    #[test]
    fn deterministic_predictions_for_fixed_seed() {
        let s = sample();
        let mut m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let mut m2 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        assert_eq!(m1.predict_detailed(&s), m2.predict_detailed(&s));
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let s = sample();
        let mut m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let saved = m1.save();
        let mut cfg2 = MvGnnConfig::small(s.node_dim, s.aw_vocab);
        cfg2.seed = 0xdead; // different init — must be overwritten by load
        let mut m2 = MvGnn::new(cfg2);
        assert_ne!(
            m1.params.data(mvgnn_tensor::ParamId(0)),
            m2.params.data(mvgnn_tensor::ParamId(0))
        );
        m2.load(&saved).unwrap();
        assert_eq!(m1.predict_detailed(&s), m2.predict_detailed(&s));
    }

    #[test]
    fn load_rejects_different_architecture() {
        let s = sample();
        let m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let saved = m1.save();
        let mut other = MvGnn::new(MvGnnConfig::small(s.node_dim + 1, s.aw_vocab));
        assert!(other.load(&saved).is_err());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_dims_panic() {
        let s = sample();
        let mut model = MvGnn::new(MvGnnConfig::small(s.node_dim + 1, s.aw_vocab));
        let _ = model.predict(&s);
    }
}
