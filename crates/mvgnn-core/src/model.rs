//! The MV-GNN model (paper Fig. 3), built from composable
//! [`ViewEncoder`]s and executed over packed [`GraphBatch`]es.
//!
//! Every public prediction surface routes through one batched forward
//! pass: a mini-batch of graphs becomes one block-diagonal tape program,
//! and the per-sample entry points ([`MvGnn::forward_on`],
//! [`MvGnn::predict`], …) are batch-of-one wrappers. Batched and
//! per-sample execution are bit-identical — every primitive on the path
//! is row- or segment-local — so batching is purely a throughput knob.

use crate::views::{NodeFeatureEncoder, StructuralEncoder, ViewEncoder};
use mvgnn_embed::{GraphBatch, GraphSample};
use mvgnn_gnn::DgcnnConfig;
use mvgnn_nn::Linear;
use mvgnn_tensor::init;
use mvgnn_tensor::tape::{argmax_rows, Params, Tape, Var};
use mvgnn_tensor::Workspace;
use rand::rngs::StdRng;

/// Which views participate — the multi-view model plus the single-view
/// configurations used by the Static-GNN baseline and the ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// Both views fused (the paper's model).
    Multi,
    /// Node-feature view only.
    NodeOnly,
    /// Structural view only.
    StructOnly,
}

/// MV-GNN hyperparameters.
#[derive(Debug, Clone)]
pub struct MvGnnConfig {
    /// Node-feature width of the samples (inst2vec dim + kind + Table I).
    pub node_dim: usize,
    /// Anonymous-walk vocabulary size of the samples.
    pub aw_vocab: usize,
    /// Learned anonymous-walk embedding width.
    pub aw_dim: usize,
    /// DGCNN for the node-feature view.
    pub node_dgcnn: DgcnnConfig,
    /// DGCNN for the structural view.
    pub struct_dgcnn: DgcnnConfig,
    /// Fusion layer width.
    pub fusion_dim: usize,
    /// Softmax temperature (paper: 0.5).
    pub temperature: f32,
    /// Which views are active.
    pub mode: ViewMode,
    /// Zero out the Table I dynamic features (static-only ablation).
    pub drop_dynamic: bool,
    /// Output classes of the fused and per-view heads (2 = the paper's
    /// binary task; 4 = the pattern-classification extension).
    pub classes: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl MvGnnConfig {
    /// A compact configuration sized for CPU training. `node_dim` and
    /// `aw_vocab` must match the dataset's samples.
    pub fn small(node_dim: usize, aw_vocab: usize) -> Self {
        let gc = vec![24, 24, 1];
        let mk = |in_dim: usize| DgcnnConfig {
            in_dim,
            gc_dims: gc.clone(),
            k: 28,
            conv1_out: 12,
            conv2_ksize: 3,
            conv2_out: 24,
            dense_hidden: 48,
            classes: 2,
        };
        let aw_dim = 16;
        Self {
            node_dim,
            aw_vocab,
            aw_dim,
            node_dgcnn: mk(node_dim),
            struct_dgcnn: mk(aw_dim),
            fusion_dim: 64,
            temperature: 0.5,
            mode: ViewMode::Multi,
            drop_dynamic: false,
            classes: 2,
            seed: 0x31337,
        }
    }

    /// The paper-scale configuration (200-dim features, SortPooling
    /// k = 135) — slower, for `--paper-scale` runs.
    pub fn paper(node_dim: usize, aw_vocab: usize) -> Self {
        let mut cfg = Self::small(node_dim, aw_vocab);
        let gc = vec![32, 32, 32, 1];
        for (d, in_dim) in
            [(&mut cfg.node_dgcnn, node_dim), (&mut cfg.struct_dgcnn, cfg.aw_dim)]
        {
            d.in_dim = in_dim;
            d.gc_dims = gc.clone();
            d.k = 135;
            d.conv1_out = 16;
            d.conv2_ksize = 5;
            d.conv2_out = 32;
            d.dense_hidden = 128;
        }
        cfg.fusion_dim = 128;
        cfg
    }
}

/// Model outputs for one sample.
pub struct Forward {
    /// Fused logits (or the active single view's logits).
    pub logits: Var,
    /// Node-view logits (when that view is active).
    pub node_logits: Option<Var>,
    /// Structural-view logits (when that view is active).
    pub struct_logits: Option<Var>,
}

/// Model outputs for a packed batch; every logit tensor has one row per
/// graph of the batch.
pub struct ForwardBatch {
    /// Fused logits (or the active single view's logits),
    /// `batch × classes`.
    pub logits: Var,
    /// Per-view auxiliary logits, aligned with the model's view list
    /// (`None` for views the [`ViewMode`] disables).
    pub view_logits: Vec<Option<Var>>,
}

/// The multi-view GNN: an ordered list of [`ViewEncoder`]s whose
/// per-graph representations are fused by `W·tanh(h_1 ⊕ … ⊕ h_v) + b`
/// (paper Eq. 5) and classified by a shared head, with one auxiliary head
/// per view for the Fig. 8 analysis.
pub struct MvGnn {
    /// Configuration (public for ablation drivers).
    pub cfg: MvGnnConfig,
    /// Persistent parameters.
    pub params: Params,
    views: Vec<Box<dyn ViewEncoder>>,
    fusion: Linear,
    head: Linear,
    view_heads: Vec<Linear>,
}

impl MvGnn {
    /// Register all parameters. Construction order fixes the checkpoint
    /// layout: node encoder (`node.*`), structural encoder (`struct.*`,
    /// `aw.table`), `fusion`, `head`, then the per-view auxiliary heads —
    /// identical to the historical field-per-view layout, so existing
    /// checkpoints load unchanged.
    pub fn new(cfg: MvGnnConfig) -> Self {
        let mut params = Params::new();
        let mut rng: StdRng = init::rng(cfg.seed);
        assert_eq!(cfg.struct_dgcnn.in_dim, cfg.aw_dim, "struct view consumes AW embeddings");
        assert_eq!(cfg.node_dgcnn.in_dim, cfg.node_dim, "node view consumes node features");
        let views: Vec<Box<dyn ViewEncoder>> = vec![
            Box::new(NodeFeatureEncoder::new(
                &mut params,
                "node",
                cfg.node_dgcnn.clone(),
                cfg.drop_dynamic,
                &mut rng,
            )),
            Box::new(StructuralEncoder::new(
                &mut params,
                "struct",
                cfg.struct_dgcnn.clone(),
                cfg.aw_vocab,
                cfg.aw_dim,
                &mut rng,
            )),
        ];
        let fused_in: usize = views.iter().map(|v| v.embed_dim()).sum();
        let fusion = Linear::new(&mut params, "fusion", fused_in, cfg.fusion_dim, true, &mut rng);
        let head = Linear::new(&mut params, "head", cfg.fusion_dim, cfg.classes, true, &mut rng);
        let view_heads: Vec<Linear> = views
            .iter()
            .map(|v| {
                Linear::new(
                    &mut params,
                    &format!("{}_head", v.name()),
                    v.embed_dim(),
                    cfg.classes,
                    true,
                    &mut rng,
                )
            })
            .collect();
        Self { cfg, params, views, fusion, head, view_heads }
    }

    /// Which views the configured [`ViewMode`] activates, aligned with the
    /// view list.
    fn active_views(&self) -> Vec<bool> {
        self.views
            .iter()
            .map(|v| match self.cfg.mode {
                ViewMode::Multi => true,
                ViewMode::NodeOnly => v.name() == "node",
                ViewMode::StructOnly => v.name() == "struct",
            })
            .collect()
    }

    /// Record the forward pass for a packed batch. The caller owns the
    /// tape so training can attach losses; `Self::params` must back the
    /// tape, and the batch must outlive it (its adjacency is registered
    /// by reference, not cloned). Row `g` of every output depends only on
    /// graph `g`.
    pub fn forward_batch<'p>(&self, tape: &mut Tape<'p>, batch: &'p GraphBatch) -> ForwardBatch {
        assert_eq!(batch.node_dim, self.cfg.node_dim, "sample/node-dim mismatch");
        assert_eq!(batch.aw_vocab, self.cfg.aw_vocab, "sample/AW-vocab mismatch");
        let active = self.active_views();

        let embeds: Vec<Option<Var>> = self
            .views
            .iter()
            .zip(&active)
            .map(|(v, &on)| on.then(|| v.encode_batch(tape, batch)))
            .collect();
        let view_logits: Vec<Option<Var>> = embeds
            .iter()
            .zip(&self.view_heads)
            .map(|(e, h)| e.map(|e| h.forward(tape, e)))
            .collect();

        let live: Vec<Var> = embeds.iter().copied().flatten().collect();
        let logits = if live.len() == self.views.len() {
            // h = W·tanh(h_1 ⊕ … ⊕ h_v) + b  (paper Eq. 5), then the head.
            let mut cat = live[0];
            for &e in &live[1..] {
                cat = tape.concat_cols(cat, e);
            }
            let t = tape.tanh(cat);
            let fused = self.fusion.forward(tape, t);
            self.head.forward(tape, fused)
        } else {
            // Single-view mode: that view's head IS the model output.
            view_logits
                .iter()
                .copied()
                .flatten()
                .next()
                .expect("at least one view is always active")
        };
        ForwardBatch { logits, view_logits }
    }

    /// Record the forward pass for one sample — a batch-of-one call into
    /// [`Self::forward_batch`]. The caller builds the batch (typically
    /// [`GraphBatch::single`]) *before* the tape, because the tape
    /// borrows the batch's adjacency for its lifetime.
    pub fn forward_on<'p>(&self, tape: &mut Tape<'p>, batch: &'p GraphBatch) -> Forward {
        let fwd = self.forward_batch(tape, batch);
        let by_name = |name: &str| {
            self.views
                .iter()
                .position(|v| v.name() == name)
                .and_then(|i| fwd.view_logits[i])
        };
        Forward {
            logits: fwd.logits,
            node_logits: by_name("node"),
            struct_logits: by_name("struct"),
        }
    }

    /// Predict the class of one sample (inference only).
    pub fn predict(&self, s: &GraphSample) -> usize {
        self.predict_detailed(s).0
    }

    /// Predict classes for a slice of samples with one packed forward
    /// pass per call. Identical to mapping [`Self::predict`] (row-local
    /// execution), just faster. Takes `&self`, so an `Arc<MvGnn>` can
    /// serve many threads concurrently.
    pub fn predict_batch(&self, samples: &[&GraphSample]) -> Vec<usize> {
        self.predict_batch_ws(&mut Workspace::new(), samples)
    }

    /// [`Self::predict_batch`] against a caller-owned [`Workspace`]: the
    /// batch packing and the whole tape draw their buffers from `ws` and
    /// recycle them back on return, so repeated calls with one warm
    /// workspace allocate nothing. Predictions are bit-identical to the
    /// plain path.
    pub fn predict_batch_ws(&self, ws: &mut Workspace, samples: &[&GraphSample]) -> Vec<usize> {
        if samples.is_empty() {
            return Vec::new();
        }
        let batch = GraphBatch::from_samples_in(ws, samples);
        let mut tape = Tape::with_workspace(&self.params, std::mem::take(ws));
        let fwd = self.forward_batch(&mut tape, &batch);
        let out = argmax_rows(tape.data(fwd.logits), samples.len(), self.cfg.classes);
        *ws = tape.finish();
        batch.recycle(ws);
        out
    }

    /// Fused logits for a slice of samples, one row per sample, computed
    /// with one packed forward pass (inference only).
    pub fn logits_batch(&self, samples: &[&GraphSample]) -> Vec<Vec<f32>> {
        self.logits_batch_ws(&mut Workspace::new(), samples)
    }

    /// [`Self::logits_batch`] against a caller-owned [`Workspace`]; see
    /// [`Self::predict_batch_ws`] for the pooling contract.
    pub fn logits_batch_ws(
        &self,
        ws: &mut Workspace,
        samples: &[&GraphSample],
    ) -> Vec<Vec<f32>> {
        if samples.is_empty() {
            return Vec::new();
        }
        let batch = GraphBatch::from_samples_in(ws, samples);
        let mut tape = Tape::with_workspace(&self.params, std::mem::take(ws));
        let fwd = self.forward_batch(&mut tape, &batch);
        let out: Vec<Vec<f32>> =
            tape.data(fwd.logits).chunks(self.cfg.classes).map(<[f32]>::to_vec).collect();
        *ws = tape.finish();
        batch.recycle(ws);
        out
    }

    /// Serialise the trained weights (architecture config not included;
    /// reload into a model built with the same [`MvGnnConfig`]).
    pub fn save(&self) -> bytes::Bytes {
        mvgnn_tensor::save_params(&self.params)
    }

    /// Load weights previously produced by [`MvGnn::save`] into this
    /// model; the architecture must match.
    pub fn load(&mut self, bytes: &[u8]) -> Result<(), mvgnn_tensor::PersistError> {
        mvgnn_tensor::load_params(&mut self.params, bytes)
    }

    /// Install zero-copy views of a mapped checkpoint's tensors into
    /// this model (architecture must match); the weights read straight
    /// out of the page cache until something mutates them.
    pub fn load_mapped(
        &mut self,
        cp: &crate::checkpoint::MappedCheckpoint,
    ) -> Result<(), crate::error::MvGnnError> {
        cp.install(&mut self.params)
    }

    /// Predict with finiteness checking: any head whose logits contain
    /// NaN/Inf reports `None` instead of an arbitrary argmax, so callers
    /// can fall back to a healthy view (or a conservative default)
    /// instead of trusting garbage.
    pub fn predict_checked(&self, s: &GraphSample) -> CheckedPrediction {
        self.predict_checked_batch(&[s]).remove(0)
    }

    /// [`Self::predict_checked`] over a packed batch, one
    /// [`CheckedPrediction`] per sample. Finiteness is judged per row, so
    /// one sample's non-finite logits never contaminate its neighbours'
    /// verdicts.
    pub fn predict_checked_batch(&self, samples: &[&GraphSample]) -> Vec<CheckedPrediction> {
        self.predict_checked_batch_ws(&mut Workspace::new(), samples)
    }

    /// [`Self::predict_checked_batch`] against a caller-owned
    /// [`Workspace`]; see [`Self::predict_batch_ws`] for the pooling
    /// contract.
    pub fn predict_checked_batch_ws(
        &self,
        ws: &mut Workspace,
        samples: &[&GraphSample],
    ) -> Vec<CheckedPrediction> {
        if samples.is_empty() {
            return Vec::new();
        }
        let batch = GraphBatch::from_samples_in(ws, samples);
        let mut tape = Tape::with_workspace(&self.params, std::mem::take(ws));
        let fwd = self.forward_batch(&mut tape, &batch);
        let c = self.cfg.classes;
        let check_row = |tape: &Tape<'_>, v: Var, g: usize| {
            let row = &tape.data(v)[g * c..(g + 1) * c];
            row.iter().all(|x| x.is_finite()).then(|| argmax_rows(row, 1, c)[0])
        };
        let by_name = |name: &str| {
            self.views
                .iter()
                .position(|v| v.name() == name)
                .and_then(|i| fwd.view_logits[i])
        };
        let (node_v, struct_v) = (by_name("node"), by_name("struct"));
        let out: Vec<CheckedPrediction> = (0..samples.len())
            .map(|g| {
                let fused = check_row(&tape, fwd.logits, g);
                CheckedPrediction {
                    fused,
                    node: node_v.map_or(fused, |v| check_row(&tape, v, g)),
                    structural: struct_v.map_or(fused, |v| check_row(&tape, v, g)),
                }
            })
            .collect();
        *ws = tape.finish();
        batch.recycle(ws);
        out
    }

    /// [`Self::predict_checked_batch_ws`] that also returns the fused
    /// logits row of every sample (finite or not). Same forward pass,
    /// same tape — the checked verdicts are bit-identical to the plain
    /// checked path; the logits feed the cascade's calibrated
    /// confidence band without a second forward.
    pub fn predict_checked_logits_batch_ws(
        &self,
        ws: &mut Workspace,
        samples: &[&GraphSample],
    ) -> (Vec<CheckedPrediction>, Vec<Vec<f32>>) {
        if samples.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let batch = GraphBatch::from_samples_in(ws, samples);
        let mut tape = Tape::with_workspace(&self.params, std::mem::take(ws));
        let fwd = self.forward_batch(&mut tape, &batch);
        let c = self.cfg.classes;
        let check_row = |tape: &Tape<'_>, v: Var, g: usize| {
            let row = &tape.data(v)[g * c..(g + 1) * c];
            row.iter().all(|x| x.is_finite()).then(|| argmax_rows(row, 1, c)[0])
        };
        let by_name = |name: &str| {
            self.views
                .iter()
                .position(|v| v.name() == name)
                .and_then(|i| fwd.view_logits[i])
        };
        let (node_v, struct_v) = (by_name("node"), by_name("struct"));
        let fused_rows: Vec<Vec<f32>> =
            tape.data(fwd.logits).chunks(c).map(<[f32]>::to_vec).collect();
        let out: Vec<CheckedPrediction> = (0..samples.len())
            .map(|g| {
                let fused = check_row(&tape, fwd.logits, g);
                CheckedPrediction {
                    fused,
                    node: node_v.map_or(fused, |v| check_row(&tape, v, g)),
                    structural: struct_v.map_or(fused, |v| check_row(&tape, v, g)),
                }
            })
            .collect();
        *ws = tape.finish();
        batch.recycle(ws);
        (out, fused_rows)
    }

    /// Predict with all three heads: `(fused, node, struct)` — absent
    /// views repeat the fused prediction.
    pub fn predict_detailed(&self, s: &GraphSample) -> (usize, usize, usize) {
        self.predict_detailed_batch(&[s]).remove(0)
    }

    /// [`Self::predict_detailed`] over a packed batch.
    pub fn predict_detailed_batch(
        &self,
        samples: &[&GraphSample],
    ) -> Vec<(usize, usize, usize)> {
        if samples.is_empty() {
            return Vec::new();
        }
        let batch = GraphBatch::from_samples(samples);
        let mut tape = Tape::new(&self.params);
        let fwd = self.forward_batch(&mut tape, &batch);
        let c = self.cfg.classes;
        let rows = samples.len();
        let fused = argmax_rows(tape.data(fwd.logits), rows, c);
        let by_name = |name: &str| {
            self.views
                .iter()
                .position(|v| v.name() == name)
                .and_then(|i| fwd.view_logits[i])
                .map(|v| argmax_rows(tape.data(v), rows, c))
        };
        let node = by_name("node");
        let st = by_name("struct");
        (0..rows)
            .map(|g| {
                (
                    fused[g],
                    node.as_ref().map_or(fused[g], |n| n[g]),
                    st.as_ref().map_or(fused[g], |s| s[g]),
                )
            })
            .collect()
    }
}

// The inference surface is `&self` end to end, so a trained model must
// stay shareable across threads (`Arc<MvGnn>`); this fails to compile if
// any field regresses to interior mutability or non-`Sync` storage.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MvGnn>();
};

/// Per-view predictions from [`MvGnn::predict_checked`]; a view is `None`
/// when its logits were non-finite (absent views mirror the fused head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedPrediction {
    /// The fused (multi-view) head.
    pub fused: Option<usize>,
    /// The node-view head.
    pub node: Option<usize>,
    /// The structure-view head.
    pub structural: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_peg::{build_peg, loop_subpeg};
    use mvgnn_profiler::{build_cus, loop_features, profile_module};

    fn sample() -> GraphSample {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        build_sample(&sub, &i2v, &feats, &SampleConfig::default(), Some(1))
    }

    #[test]
    fn forward_produces_all_heads_in_multi_mode() {
        let s = sample();
        let model = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let (fused, node, st) = model.predict_detailed(&s);
        assert!(fused <= 1 && node <= 1 && st <= 1);
    }

    #[test]
    fn single_view_modes_work() {
        let s = sample();
        for mode in [ViewMode::NodeOnly, ViewMode::StructOnly] {
            let mut cfg = MvGnnConfig::small(s.node_dim, s.aw_vocab);
            cfg.mode = mode;
            let model = MvGnn::new(cfg);
            let p = model.predict(&s);
            assert!(p <= 1, "{mode:?}");
        }
    }

    #[test]
    fn drop_dynamic_changes_input_not_shape() {
        let s = sample();
        let mut cfg = MvGnnConfig::small(s.node_dim, s.aw_vocab);
        cfg.drop_dynamic = true;
        let model = MvGnn::new(cfg);
        let _ = model.predict(&s); // shapes must hold
    }

    #[test]
    fn deterministic_predictions_for_fixed_seed() {
        let s = sample();
        let m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let m2 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        assert_eq!(m1.predict_detailed(&s), m2.predict_detailed(&s));
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let s = sample();
        let m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let saved = m1.save();
        let mut cfg2 = MvGnnConfig::small(s.node_dim, s.aw_vocab);
        cfg2.seed = 0xdead; // different init — must be overwritten by load
        let mut m2 = MvGnn::new(cfg2);
        assert_ne!(
            m1.params.data(mvgnn_tensor::ParamId(0)),
            m2.params.data(mvgnn_tensor::ParamId(0))
        );
        m2.load(&saved).unwrap();
        assert_eq!(m1.predict_detailed(&s), m2.predict_detailed(&s));
    }

    #[test]
    fn load_rejects_different_architecture() {
        let s = sample();
        let m1 = MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab));
        let saved = m1.save();
        let mut other = MvGnn::new(MvGnnConfig::small(s.node_dim + 1, s.aw_vocab));
        assert!(other.load(&saved).is_err());
    }

    #[test]
    fn arc_model_serves_concurrent_predictions() {
        let s = sample();
        let model = std::sync::Arc::new(MvGnn::new(MvGnnConfig::small(s.node_dim, s.aw_vocab)));
        let want = model.predict_detailed(&s);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = std::sync::Arc::clone(&model);
                    let s = &s;
                    scope.spawn(move || (m.predict_detailed(s), m.predict_batch(&[s])))
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((detailed, batch)) => {
                        assert_eq!(detailed, want);
                        assert_eq!(batch, vec![want.0]);
                    }
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_dims_panic() {
        let s = sample();
        let model = MvGnn::new(MvGnnConfig::small(s.node_dim + 1, s.aw_vocab));
        let _ = model.predict(&s);
    }
}
