//! Training checkpoints: a versioned, checksummed container around the
//! weight snapshot plus the optimizer-facing state needed to resume
//! (epoch counter, current learning rate, telemetry so far).
//!
//! Layout (little-endian):
//! `magic "MVCK" | version u32 | epoch u64 | lr f32 | retries u32 |
//!  calibration flag u8 [temperature f32] |
//!  stats count u32 | (epoch u64, loss f32, accuracy f32)* |
//!  payload len u64 | FNV-1a checksum u64 | payload`
//! where the payload is the `save_params` weight blob. The calibration
//! field (version 2) stores the cascade's fused-head temperature-scaling
//! constant alongside the weights it was fit for; version-1 files are
//! still read (calibration `None`).
//!
//! Writes are atomic: the file is written to a sibling `*.tmp` path and
//! renamed over the target, so a crash mid-write never leaves a
//! half-written checkpoint behind. Reads validate magic, version, length
//! and checksum before any byte of the payload is interpreted, and every
//! failure is a typed [`MvGnnError::Checkpoint`] — corrupt files degrade
//! to an error, never a panic.

use crate::error::MvGnnError;
use crate::trainer::EpochStats;
use bytes::{Buf, BufMut, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MVCK";
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

/// Everything needed to resume an interrupted training run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Last completed epoch (0-based).
    pub epoch: usize,
    /// Learning rate in effect (after any divergence backoff).
    pub lr: f32,
    /// Rollback retries consumed so far.
    pub retries: usize,
    /// Temperature-scaling calibration of the fused head (see
    /// `crate::cascade::Calibration`), fit on a held-out slice and
    /// stored with the weights it belongs to. `None` for uncalibrated
    /// models and version-1 files.
    pub calibration: Option<f32>,
    /// Telemetry of all completed epochs.
    pub stats: Vec<EpochStats>,
    /// Weight snapshot (`save_params` format).
    pub weights: Vec<u8>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialise a checkpoint to its binary form.
pub fn encode_checkpoint(cp: &Checkpoint) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + cp.stats.len() * 16 + cp.weights.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(cp.epoch as u64);
    buf.put_f32_le(cp.lr);
    buf.put_u32_le(cp.retries as u32);
    match cp.calibration {
        Some(t) => {
            buf.put_u8(1);
            buf.put_f32_le(t);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(cp.stats.len() as u32);
    for s in &cp.stats {
        buf.put_u64_le(s.epoch as u64);
        buf.put_f32_le(s.loss);
        buf.put_f32_le(s.accuracy);
    }
    buf.put_u64_le(cp.weights.len() as u64);
    buf.put_u64_le(fnv1a(&cp.weights));
    buf.put_slice(&cp.weights);
    buf.freeze().to_vec()
}

fn need(bytes: &[u8], n: usize, what: &str) -> Result<(), MvGnnError> {
    if bytes.remaining() < n {
        return Err(MvGnnError::Checkpoint(format!(
            "truncated before {what} ({} bytes left, need {n})",
            bytes.remaining()
        )));
    }
    Ok(())
}

/// Parse and validate a checkpoint's binary form.
pub fn decode_checkpoint(mut bytes: &[u8]) -> Result<Checkpoint, MvGnnError> {
    need(bytes, 8, "header")?;
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(MvGnnError::Checkpoint("bad magic (not a MVCK file)".into()));
    }
    let version = bytes.get_u32_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(MvGnnError::Checkpoint(format!("unsupported version {version}")));
    }
    need(bytes, 16, "epoch/lr/retries")?;
    let epoch = bytes.get_u64_le() as usize;
    let lr = bytes.get_f32_le();
    if !lr.is_finite() || lr <= 0.0 {
        return Err(MvGnnError::Checkpoint(format!("non-positive or non-finite lr {lr}")));
    }
    let retries = bytes.get_u32_le() as usize;
    let calibration = if version >= 2 {
        need(bytes, 1, "calibration flag")?;
        match bytes.get_u8() {
            0 => None,
            1 => {
                need(bytes, 4, "calibration temperature")?;
                let t = bytes.get_f32_le();
                if !t.is_finite() || t <= 0.0 {
                    return Err(MvGnnError::Checkpoint(format!(
                        "non-positive or non-finite calibration temperature {t}"
                    )));
                }
                Some(t)
            }
            other => {
                return Err(MvGnnError::Checkpoint(format!(
                    "bad calibration flag {other} (want 0 or 1)"
                )))
            }
        }
    } else {
        None
    };
    need(bytes, 4, "stats count")?;
    let n_stats = bytes.get_u32_le() as usize;
    need(bytes, n_stats.saturating_mul(16), "epoch stats")?;
    let mut stats = Vec::with_capacity(n_stats.min(4096));
    for _ in 0..n_stats {
        let epoch = bytes.get_u64_le() as usize;
        let loss = bytes.get_f32_le();
        let accuracy = bytes.get_f32_le();
        stats.push(EpochStats { epoch, loss, accuracy });
    }
    need(bytes, 16, "payload header")?;
    let payload_len = bytes.get_u64_le() as usize;
    let checksum = bytes.get_u64_le();
    if bytes.remaining() != payload_len {
        return Err(MvGnnError::Checkpoint(format!(
            "payload length mismatch: header says {payload_len}, file has {}",
            bytes.remaining()
        )));
    }
    if fnv1a(bytes) != checksum {
        return Err(MvGnnError::Checkpoint("payload checksum mismatch".into()));
    }
    Ok(Checkpoint { epoch, lr, retries, calibration, stats, weights: bytes.to_vec() })
}

/// Atomically write a checkpoint: serialise to `<path>.tmp`, then rename
/// over `path` so readers only ever observe complete files.
pub fn write_checkpoint(path: &Path, cp: &Checkpoint) -> Result<(), MvGnnError> {
    let encoded = encode_checkpoint(cp);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &encoded)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate a checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, MvGnnError> {
    let bytes = std::fs::read(path)?;
    decode_checkpoint(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            epoch: 7,
            lr: 5e-4,
            retries: 1,
            calibration: Some(1.75),
            stats: vec![
                EpochStats { epoch: 6, loss: 0.42, accuracy: 0.8 },
                EpochStats { epoch: 7, loss: 0.40, accuracy: 0.82 },
            ],
            weights: (0u16..999).flat_map(|x| x.to_le_bytes()).collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cp = sample_checkpoint();
        let decoded = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(decoded, cp);
    }

    #[test]
    fn atomic_file_roundtrip() {
        let dir = std::env::temp_dir().join("mvgnn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let cp = sample_checkpoint();
        write_checkpoint(&path, &cp).unwrap();
        // The temporary staging file must not survive the rename.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(read_checkpoint(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_is_rejected_gracefully() {
        let full = encode_checkpoint(&sample_checkpoint());
        for cut in 0..full.len() {
            let err = decode_checkpoint(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, MvGnnError::Checkpoint(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_in_payload_fail_the_checksum() {
        let cp = sample_checkpoint();
        let mut bytes = encode_checkpoint(&cp);
        let payload_start = bytes.len() - cp.weights.len();
        for victim in [payload_start, payload_start + 17, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[victim] ^= 0x40;
            let err = decode_checkpoint(&corrupted).unwrap_err();
            assert!(err.to_string().contains("checksum"), "{err}");
        }
        // Corrupting the magic is caught before the checksum.
        bytes[0] = b'X';
        assert!(decode_checkpoint(&bytes).unwrap_err().to_string().contains("magic"));
    }

    #[test]
    fn uncalibrated_roundtrip_keeps_none() {
        let cp = Checkpoint { calibration: None, ..sample_checkpoint() };
        let decoded = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(decoded.calibration, None);
        assert_eq!(decoded, cp);
    }

    #[test]
    fn version_1_files_still_read_without_calibration() {
        // Hand-build the historical v1 layout (no calibration field).
        let cp = sample_checkpoint();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(cp.epoch as u64);
        buf.put_f32_le(cp.lr);
        buf.put_u32_le(cp.retries as u32);
        buf.put_u32_le(cp.stats.len() as u32);
        for s in &cp.stats {
            buf.put_u64_le(s.epoch as u64);
            buf.put_f32_le(s.loss);
            buf.put_f32_le(s.accuracy);
        }
        buf.put_u64_le(cp.weights.len() as u64);
        buf.put_u64_le(fnv1a(&cp.weights));
        buf.put_slice(&cp.weights);
        let decoded = decode_checkpoint(&buf.freeze()).unwrap();
        assert_eq!(decoded.calibration, None);
        assert_eq!(decoded.weights, cp.weights);
        assert_eq!(decoded.stats, cp.stats);
    }

    #[test]
    fn damaged_calibration_is_a_typed_error() {
        let full = encode_checkpoint(&sample_checkpoint());
        // The calibration flag byte sits right after magic(4) + version(4)
        // + epoch(8) + lr(4) + retries(4).
        let flag_at = 24;
        let mut bad_flag = full.clone();
        bad_flag[flag_at] = 7;
        let err = decode_checkpoint(&bad_flag).unwrap_err();
        assert!(err.to_string().contains("calibration flag"), "{err}");
        // A NaN temperature is refused before the payload is touched.
        let mut bad_temp = full;
        bad_temp[flag_at + 1..flag_at + 5].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = decode_checkpoint(&bad_temp).unwrap_err();
        assert!(err.to_string().contains("calibration temperature"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_checkpoint(&sample_checkpoint());
        bytes[4] = 99;
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
