//! Training checkpoints: a versioned, checksummed container around the
//! weight snapshot plus the optimizer-facing state needed to resume
//! (epoch counter, current learning rate, telemetry so far).
//!
//! Layout (little-endian):
//! `magic "MVCK" | version u32 | epoch u64 | lr f32 | retries u32 |
//!  calibration flag u8 [temperature f32] |
//!  stats count u32 | (epoch u64, loss f32, accuracy f32)* |
//!  payload len u64 | FNV-1a checksum u64 | payload`
//! where the payload is the `save_params` weight blob. The calibration
//! field (version 2) stores the cascade's fused-head temperature-scaling
//! constant alongside the weights it was fit for; version-1 files are
//! still read (calibration `None`).
//!
//! Writes are atomic: the file is written to a sibling `*.tmp` path and
//! renamed over the target, so a crash mid-write never leaves a
//! half-written checkpoint behind. Reads validate magic, version, length
//! and checksum before any byte of the payload is interpreted, and every
//! failure is a typed [`MvGnnError::Checkpoint`] — corrupt files degrade
//! to an error, never a panic.
//!
//! ## The mapped generation (on-disk version 3, "MVCK-v2")
//!
//! Versions 1–2 above are the *eager* layouts: the weight payload is an
//! opaque `save_params` blob that must be parsed f32-by-f32 into owned
//! buffers. On-disk version 3 is the zero-copy generation — docs and
//! ROADMAP call it MVCK-v2, the second-generation artifact story. It
//! adds a feature-flag word (explicit compatibility: a reader that sees
//! a flag bit it does not know refuses the file with a typed error
//! instead of guessing, in the style of `sui-protocol-config`), and
//! lays tensors out for direct mapping:
//!
//! ```text
//! magic "MVCK" | version u32 = 3 | feature flags u32 |
//! total file len u64 | meta len u32 |
//! meta block:
//!   epoch u64 | lr f32 | retries u32 | calibration flag u8 [f32] |
//!   stats count u32 | (epoch u64, loss f32, accuracy f32)* |
//!   tensor count u32 |
//!   per tensor: name len u32 | name | rows u32 | cols u32 |
//!               data offset u64 | data bytes u64 |
//!   tensor-region FNV-1a u64
//! zero padding to the first 64-byte boundary |
//! tensor data: each tensor's raw little-endian f32s at its declared
//!              offset, every offset 64-byte aligned
//! ```
//!
//! `total file len` makes truncation detectable from the fixed-size
//! prefix in O(1); tensor offsets are validated against the mapped
//! length before any dereference (so a file shortened behind our back
//! becomes a typed error, not a SIGBUS); and the 64-byte alignment of
//! every data offset — on top of the page-aligned mapping base — is
//! what lets [`mvgnn_tensor::Storage`] view each tensor in place.
//! [`read_checkpoint`] keeps reading versions 1–2; a version-3 file
//! must go through [`MappedCheckpoint::open`].

use crate::error::MvGnnError;
use crate::trainer::EpochStats;
use bytes::{Buf, BufMut, BytesMut};
use mvgnn_tensor::{Mmap, Params, Storage};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"MVCK";
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

/// On-disk version of the mapped (MVCK-v2) generation.
const VERSION_MAPPED: u32 = 3;
/// Tensor data offsets are multiples of 64 bytes (cache line; divides
/// the 4096-byte page alignment of the mapping base).
pub const TENSOR_ALIGN: usize = 64;
/// Feature flag: the tensor section is 64-byte aligned for direct
/// mapping. Set on every file this writer produces.
pub const FLAG_ALIGNED_TENSORS: u32 = 1 << 0;
/// Every flag bit this reader understands; any other bit set in a file
/// means a newer writer, and the file is refused with a typed error.
const KNOWN_FLAGS: u32 = FLAG_ALIGNED_TENSORS;
/// Fixed-size prefix of a version-3 file:
/// magic(4) + version(4) + flags(4) + total len(8) + meta len(4).
const MAPPED_PREFIX: usize = 24;

/// Everything needed to resume an interrupted training run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Last completed epoch (0-based).
    pub epoch: usize,
    /// Learning rate in effect (after any divergence backoff).
    pub lr: f32,
    /// Rollback retries consumed so far.
    pub retries: usize,
    /// Temperature-scaling calibration of the fused head (see
    /// `crate::cascade::Calibration`), fit on a held-out slice and
    /// stored with the weights it belongs to. `None` for uncalibrated
    /// models and version-1 files.
    pub calibration: Option<f32>,
    /// Telemetry of all completed epochs.
    pub stats: Vec<EpochStats>,
    /// Weight snapshot (`save_params` format).
    pub weights: Vec<u8>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialise a checkpoint to its binary form.
pub fn encode_checkpoint(cp: &Checkpoint) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + cp.stats.len() * 16 + cp.weights.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(cp.epoch as u64);
    buf.put_f32_le(cp.lr);
    buf.put_u32_le(cp.retries as u32);
    match cp.calibration {
        Some(t) => {
            buf.put_u8(1);
            buf.put_f32_le(t);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(cp.stats.len() as u32);
    for s in &cp.stats {
        buf.put_u64_le(s.epoch as u64);
        buf.put_f32_le(s.loss);
        buf.put_f32_le(s.accuracy);
    }
    buf.put_u64_le(cp.weights.len() as u64);
    buf.put_u64_le(fnv1a(&cp.weights));
    buf.put_slice(&cp.weights);
    buf.freeze().to_vec()
}

fn need(bytes: &[u8], n: usize, what: &str) -> Result<(), MvGnnError> {
    if bytes.remaining() < n {
        return Err(MvGnnError::Checkpoint(format!(
            "truncated before {what} ({} bytes left, need {n})",
            bytes.remaining()
        )));
    }
    Ok(())
}

/// Parse and validate a checkpoint's binary form.
pub fn decode_checkpoint(mut bytes: &[u8]) -> Result<Checkpoint, MvGnnError> {
    need(bytes, 8, "header")?;
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(MvGnnError::Checkpoint("bad magic (not a MVCK file)".into()));
    }
    let version = bytes.get_u32_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(MvGnnError::Checkpoint(format!("unsupported version {version}")));
    }
    need(bytes, 16, "epoch/lr/retries")?;
    let epoch = bytes.get_u64_le() as usize;
    let lr = bytes.get_f32_le();
    if !lr.is_finite() || lr <= 0.0 {
        return Err(MvGnnError::Checkpoint(format!("non-positive or non-finite lr {lr}")));
    }
    let retries = bytes.get_u32_le() as usize;
    let calibration = if version >= 2 {
        need(bytes, 1, "calibration flag")?;
        match bytes.get_u8() {
            0 => None,
            1 => {
                need(bytes, 4, "calibration temperature")?;
                let t = bytes.get_f32_le();
                if !t.is_finite() || t <= 0.0 {
                    return Err(MvGnnError::Checkpoint(format!(
                        "non-positive or non-finite calibration temperature {t}"
                    )));
                }
                Some(t)
            }
            other => {
                return Err(MvGnnError::Checkpoint(format!(
                    "bad calibration flag {other} (want 0 or 1)"
                )))
            }
        }
    } else {
        None
    };
    need(bytes, 4, "stats count")?;
    let n_stats = bytes.get_u32_le() as usize;
    need(bytes, n_stats.saturating_mul(16), "epoch stats")?;
    let mut stats = Vec::with_capacity(n_stats.min(4096));
    for _ in 0..n_stats {
        let epoch = bytes.get_u64_le() as usize;
        let loss = bytes.get_f32_le();
        let accuracy = bytes.get_f32_le();
        stats.push(EpochStats { epoch, loss, accuracy });
    }
    need(bytes, 16, "payload header")?;
    let payload_len = bytes.get_u64_le() as usize;
    let checksum = bytes.get_u64_le();
    if bytes.remaining() != payload_len {
        return Err(MvGnnError::Checkpoint(format!(
            "payload length mismatch: header says {payload_len}, file has {}",
            bytes.remaining()
        )));
    }
    if fnv1a(bytes) != checksum {
        return Err(MvGnnError::Checkpoint("payload checksum mismatch".into()));
    }
    Ok(Checkpoint { epoch, lr, retries, calibration, stats, weights: bytes.to_vec() })
}

/// Atomically write a checkpoint: serialise to `<path>.tmp`, then rename
/// over `path` so readers only ever observe complete files.
pub fn write_checkpoint(path: &Path, cp: &Checkpoint) -> Result<(), MvGnnError> {
    let encoded = encode_checkpoint(cp);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &encoded)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate a checkpoint file.
///
/// The fixed-size header (magic + version) is validated from an 8-byte
/// read *before* the rest of the file is touched, so a bad-magic or
/// wrong-version file of any size is rejected in O(1), not O(file).
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, MvGnnError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < 8 {
        return Err(MvGnnError::Checkpoint(format!(
            "truncated before header ({file_len} bytes, need 8)"
        )));
    }
    let mut head = [0u8; 8];
    file.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(MvGnnError::Checkpoint("bad magic (not a MVCK file)".into()));
    }
    let version = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if version == VERSION_MAPPED {
        return Err(MvGnnError::Checkpoint(format!(
            "version {version} is the mapped MVCK-v2 layout; open it with MappedCheckpoint::open"
        )));
    }
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(MvGnnError::Checkpoint(format!("unsupported version {version}")));
    }
    let mut bytes = Vec::with_capacity(usize::try_from(file_len).unwrap_or(0));
    bytes.extend_from_slice(&head);
    file.read_to_end(&mut bytes)?;
    decode_checkpoint(&bytes)
}

/// The resume state of a checkpoint minus the weights — what the mapped
/// layout stores inline in its meta block (the weights live in the
/// aligned tensor section instead of a `save_params` blob).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointMeta {
    /// Last completed epoch (0-based).
    pub epoch: usize,
    /// Learning rate in effect.
    pub lr: f32,
    /// Rollback retries consumed so far.
    pub retries: usize,
    /// Fused-head temperature-scaling constant, if calibrated.
    pub calibration: Option<f32>,
    /// Telemetry of all completed epochs.
    pub stats: Vec<EpochStats>,
}

impl From<&Checkpoint> for CheckpointMeta {
    fn from(cp: &Checkpoint) -> Self {
        CheckpointMeta {
            epoch: cp.epoch,
            lr: cp.lr,
            retries: cp.retries,
            calibration: cp.calibration,
            stats: cp.stats.clone(),
        }
    }
}

fn ck(msg: impl Into<String>) -> MvGnnError {
    MvGnnError::Checkpoint(msg.into())
}

fn pad_to(buf: &mut BytesMut, align: usize) {
    while !buf.len().is_multiple_of(align) {
        buf.put_u8(0);
    }
}

/// Atomically write a mapped-generation (on-disk version 3) checkpoint:
/// meta block up front, every tensor's raw f32 data at a 64-byte-aligned
/// offset, and an FNV-1a checksum over the whole tensor region. The
/// resulting file is what [`MappedCheckpoint::open`] maps.
pub fn write_mapped_checkpoint(
    path: &Path,
    meta: &CheckpointMeta,
    params: &Params,
) -> Result<(), MvGnnError> {
    if !meta.lr.is_finite() || meta.lr <= 0.0 {
        return Err(ck(format!("non-positive or non-finite lr {}", meta.lr)));
    }
    // Meta block first (its length fixes where the tensor region starts).
    let mut mb = BytesMut::new();
    mb.put_u64_le(meta.epoch as u64);
    mb.put_f32_le(meta.lr);
    mb.put_u32_le(meta.retries as u32);
    match meta.calibration {
        Some(t) => {
            mb.put_u8(1);
            mb.put_f32_le(t);
        }
        None => mb.put_u8(0),
    }
    mb.put_u32_le(meta.stats.len() as u32);
    for s in &meta.stats {
        mb.put_u64_le(s.epoch as u64);
        mb.put_f32_le(s.loss);
        mb.put_f32_le(s.accuracy);
    }
    mb.put_u32_le(params.len() as u32);
    // Tensor directory: offsets are assigned walking the aligned region
    // that starts after prefix + meta + checksum, rounded up.
    let dir_fixed: usize = (0..params.len())
        .map(|i| 4 + params.name(mvgnn_tensor::ParamId(i)).len() + 4 + 4 + 8 + 8)
        .sum();
    let meta_len = mb.len() + dir_fixed + 8;
    let region_start = (MAPPED_PREFIX + meta_len).div_ceil(TENSOR_ALIGN) * TENSOR_ALIGN;
    let mut offset = region_start;
    let mut offsets = Vec::with_capacity(params.len());
    for i in 0..params.len() {
        let id = mvgnn_tensor::ParamId(i);
        let bytes = params.data(id).len() * 4;
        offsets.push((offset, bytes));
        offset = (offset + bytes).div_ceil(TENSOR_ALIGN) * TENSOR_ALIGN;
    }
    // Total length: the file ends where the last tensor's data ends (no
    // trailing pad), or at the region start for an empty store.
    let total_len = offsets.last().map_or(region_start, |&(o, b)| o + b);
    for (i, &(off, bytes)) in offsets.iter().enumerate() {
        let id = mvgnn_tensor::ParamId(i);
        let name = params.name(id);
        let (rows, cols) = params.shape(id);
        mb.put_u32_le(name.len() as u32);
        mb.put_slice(name.as_bytes());
        mb.put_u32_le(rows as u32);
        mb.put_u32_le(cols as u32);
        mb.put_u64_le(off as u64);
        mb.put_u64_le(bytes as u64);
    }
    // Tensor region: zero padding between blobs, data at the declared
    // offsets, checksummed as one run.
    let mut region = BytesMut::with_capacity(total_len - region_start);
    for (i, &(off, _)) in offsets.iter().enumerate() {
        let id = mvgnn_tensor::ParamId(i);
        while region_start + region.len() < off {
            region.put_u8(0);
        }
        for &x in params.data(id) {
            region.put_f32_le(x);
        }
    }
    mb.put_u64_le(fnv1a(&region));
    debug_assert_eq!(mb.len(), meta_len);

    let mut buf = BytesMut::with_capacity(total_len);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_MAPPED);
    buf.put_u32_le(FLAG_ALIGNED_TENSORS);
    buf.put_u64_le(total_len as u64);
    buf.put_u32_le(meta_len as u32);
    buf.put_slice(&mb);
    pad_to(&mut buf, TENSOR_ALIGN);
    debug_assert_eq!(buf.len(), region_start);
    buf.put_slice(&region);
    debug_assert_eq!(buf.len(), total_len);

    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &*buf)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[derive(Debug, Clone)]
struct TensorEntry {
    name: String,
    rows: usize,
    cols: usize,
    offset: usize,
    bytes: usize,
}

/// An open, fully-validated mapped checkpoint. Holding one keeps the
/// mapping alive; [`MappedCheckpoint::install`] hands out zero-copy
/// [`Storage`] views into it, so a store loaded this way shares the
/// page cache with every other process that mapped the same file.
#[derive(Debug)]
pub struct MappedCheckpoint {
    meta: CheckpointMeta,
    map: Arc<Mmap>,
    tensors: Vec<TensorEntry>,
}

impl MappedCheckpoint {
    /// Map and validate a version-3 checkpoint file.
    ///
    /// Validation order is cheapest-first: the fixed-size prefix (magic,
    /// version, unknown feature flags, declared total length vs. the
    /// real file size — all O(1)), then the meta block (bounds-checked
    /// parse), then every tensor's offset/alignment/extent against the
    /// mapped length, and only then the tensor-region checksum (one
    /// sequential pass, still copy-free). Every failure is a typed
    /// [`MvGnnError::Checkpoint`].
    pub fn open(path: &Path) -> Result<MappedCheckpoint, MvGnnError> {
        let file = std::fs::File::open(path)?;
        let map = Arc::new(Mmap::map_file(&file)?);
        let bytes = map.as_slice();
        if bytes.len() < MAPPED_PREFIX {
            return Err(ck(format!("truncated before header ({} bytes)", bytes.len())));
        }
        let mut head = &bytes[..MAPPED_PREFIX];
        let mut magic = [0u8; 4];
        head.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ck("bad magic (not a MVCK file)"));
        }
        let version = head.get_u32_le();
        if version != VERSION_MAPPED {
            return Err(ck(format!(
                "version {version} is not the mapped layout (want {VERSION_MAPPED}); \
                 eager files go through read_checkpoint"
            )));
        }
        let flags = head.get_u32_le();
        let unknown = flags & !KNOWN_FLAGS;
        if unknown != 0 {
            return Err(ck(format!(
                "unknown feature flags {unknown:#010b}: file written by a newer \
                 version; refusing to guess at its layout"
            )));
        }
        if flags & FLAG_ALIGNED_TENSORS == 0 {
            return Err(ck("tensor section not flagged aligned; cannot map"));
        }
        let total_len = head.get_u64_le();
        if total_len != bytes.len() as u64 {
            return Err(ck(format!(
                "file is {} bytes but header declares {total_len} (truncated or grown)",
                bytes.len()
            )));
        }
        let meta_len = head.get_u32_le() as usize;
        let meta_end = MAPPED_PREFIX
            .checked_add(meta_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| ck(format!("meta block ({meta_len} bytes) exceeds the file")))?;

        let mut mb = &bytes[MAPPED_PREFIX..meta_end];
        let need_m = |mb: &&[u8], n: usize, what: &str| -> Result<(), MvGnnError> {
            if mb.remaining() < n {
                Err(ck(format!("meta block truncated before {what}")))
            } else {
                Ok(())
            }
        };
        need_m(&mb, 16, "epoch/lr/retries")?;
        let epoch = mb.get_u64_le() as usize;
        let lr = mb.get_f32_le();
        if !lr.is_finite() || lr <= 0.0 {
            return Err(ck(format!("non-positive or non-finite lr {lr}")));
        }
        let retries = mb.get_u32_le() as usize;
        need_m(&mb, 1, "calibration flag")?;
        let calibration = match mb.get_u8() {
            0 => None,
            1 => {
                need_m(&mb, 4, "calibration temperature")?;
                let t = mb.get_f32_le();
                if !t.is_finite() || t <= 0.0 {
                    return Err(ck(format!(
                        "non-positive or non-finite calibration temperature {t}"
                    )));
                }
                Some(t)
            }
            other => return Err(ck(format!("bad calibration flag {other} (want 0 or 1)"))),
        };
        need_m(&mb, 4, "stats count")?;
        let n_stats = mb.get_u32_le() as usize;
        need_m(&mb, n_stats.saturating_mul(16), "epoch stats")?;
        let mut stats = Vec::with_capacity(n_stats.min(4096));
        for _ in 0..n_stats {
            let epoch = mb.get_u64_le() as usize;
            let loss = mb.get_f32_le();
            let accuracy = mb.get_f32_le();
            stats.push(EpochStats { epoch, loss, accuracy });
        }
        need_m(&mb, 4, "tensor count")?;
        let n_tensors = mb.get_u32_le() as usize;
        let mut tensors = Vec::with_capacity(n_tensors.min(4096));
        let mut region_start = bytes.len();
        for i in 0..n_tensors {
            need_m(&mb, 4, "tensor name length")?;
            let name_len = mb.get_u32_le() as usize;
            need_m(&mb, name_len.saturating_add(24), "tensor directory entry")?;
            let mut name = vec![0u8; name_len];
            mb.copy_to_slice(&mut name);
            let name = String::from_utf8(name)
                .map_err(|_| ck(format!("tensor {i}: non-utf8 name")))?;
            let rows = mb.get_u32_le() as usize;
            let cols = mb.get_u32_le() as usize;
            let offset = usize::try_from(mb.get_u64_le())
                .map_err(|_| ck(format!("tensor `{name}`: offset overflows usize")))?;
            let tbytes = usize::try_from(mb.get_u64_le())
                .map_err(|_| ck(format!("tensor `{name}`: length overflows usize")))?;
            if offset % TENSOR_ALIGN != 0 {
                return Err(ck(format!(
                    "tensor `{name}`: data offset {offset} is not {TENSOR_ALIGN}-byte aligned"
                )));
            }
            let elems = rows
                .checked_mul(cols)
                .ok_or_else(|| ck(format!("tensor `{name}`: shape overflows")))?;
            if tbytes != elems * 4 {
                return Err(ck(format!(
                    "tensor `{name}`: {rows}×{cols} needs {} bytes, directory says {tbytes}",
                    elems * 4
                )));
            }
            let end = offset
                .checked_add(tbytes)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| {
                    ck(format!(
                        "tensor `{name}`: data [{offset}, {offset}+{tbytes}) exceeds the \
                         {}-byte mapping",
                        bytes.len()
                    ))
                })?;
            let _ = end;
            region_start = region_start.min(offset);
            tensors.push(TensorEntry { name, rows, cols, offset, bytes: tbytes });
        }
        need_m(&mb, 8, "tensor-region checksum")?;
        let checksum = mb.get_u64_le();
        if mb.remaining() != 0 {
            return Err(ck(format!("{} undeclared bytes at the end of the meta block", mb.len())));
        }
        if fnv1a(&bytes[region_start..]) != checksum {
            return Err(ck("tensor-region checksum mismatch"));
        }
        Ok(MappedCheckpoint { meta: CheckpointMeta { epoch, lr, retries, calibration, stats }, map, tensors })
    }

    /// Resume state stored alongside the weights.
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Number of tensors in the artifact.
    pub fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    /// True when the artifact is backed by a live kernel mapping (false
    /// only on non-Unix fallbacks) — surfaced in the registry census.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Install zero-copy views of every tensor into `params`, which must
    /// have the identical layout (same names, order and shapes — the
    /// same model architecture), mirroring `load_params`' contract. On
    /// success every tensor of `params` reads straight out of the
    /// mapping; nothing is copied until something mutates it.
    pub fn install(&self, params: &mut Params) -> Result<(), MvGnnError> {
        if self.tensors.len() != params.len() {
            return Err(ck(format!(
                "file has {} tensors, store has {}",
                self.tensors.len(),
                params.len()
            )));
        }
        // Validate the whole layout before touching the store, so a
        // mismatch can never leave it half-installed.
        for (i, t) in self.tensors.iter().enumerate() {
            let id = mvgnn_tensor::ParamId(i);
            if t.name != params.name(id) {
                return Err(ck(format!(
                    "tensor {i}: file `{}` vs store `{}`",
                    t.name,
                    params.name(id)
                )));
            }
            if (t.rows, t.cols) != params.shape(id) {
                return Err(ck(format!(
                    "tensor `{}`: file {}×{} vs store {:?}",
                    t.name,
                    t.rows,
                    t.cols,
                    params.shape(id)
                )));
            }
        }
        for (i, t) in self.tensors.iter().enumerate() {
            let id = mvgnn_tensor::ParamId(i);
            let storage = Storage::mapped(Arc::clone(&self.map), t.offset, t.bytes / 4)
                .map_err(|e| ck(format!("tensor `{}`: {e}", t.name)))?;
            params
                .set_storage(id, storage)
                .map_err(|e| ck(format!("tensor `{}`: {e}", t.name)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            epoch: 7,
            lr: 5e-4,
            retries: 1,
            calibration: Some(1.75),
            stats: vec![
                EpochStats { epoch: 6, loss: 0.42, accuracy: 0.8 },
                EpochStats { epoch: 7, loss: 0.40, accuracy: 0.82 },
            ],
            weights: (0u16..999).flat_map(|x| x.to_le_bytes()).collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cp = sample_checkpoint();
        let decoded = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(decoded, cp);
    }

    #[test]
    fn atomic_file_roundtrip() {
        let dir = std::env::temp_dir().join("mvgnn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let cp = sample_checkpoint();
        write_checkpoint(&path, &cp).unwrap();
        // The temporary staging file must not survive the rename.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(read_checkpoint(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_is_rejected_gracefully() {
        let full = encode_checkpoint(&sample_checkpoint());
        for cut in 0..full.len() {
            let err = decode_checkpoint(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, MvGnnError::Checkpoint(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_in_payload_fail_the_checksum() {
        let cp = sample_checkpoint();
        let mut bytes = encode_checkpoint(&cp);
        let payload_start = bytes.len() - cp.weights.len();
        for victim in [payload_start, payload_start + 17, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[victim] ^= 0x40;
            let err = decode_checkpoint(&corrupted).unwrap_err();
            assert!(err.to_string().contains("checksum"), "{err}");
        }
        // Corrupting the magic is caught before the checksum.
        bytes[0] = b'X';
        assert!(decode_checkpoint(&bytes).unwrap_err().to_string().contains("magic"));
    }

    #[test]
    fn uncalibrated_roundtrip_keeps_none() {
        let cp = Checkpoint { calibration: None, ..sample_checkpoint() };
        let decoded = decode_checkpoint(&encode_checkpoint(&cp)).unwrap();
        assert_eq!(decoded.calibration, None);
        assert_eq!(decoded, cp);
    }

    #[test]
    fn version_1_files_still_read_without_calibration() {
        // Hand-build the historical v1 layout (no calibration field).
        let cp = sample_checkpoint();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(cp.epoch as u64);
        buf.put_f32_le(cp.lr);
        buf.put_u32_le(cp.retries as u32);
        buf.put_u32_le(cp.stats.len() as u32);
        for s in &cp.stats {
            buf.put_u64_le(s.epoch as u64);
            buf.put_f32_le(s.loss);
            buf.put_f32_le(s.accuracy);
        }
        buf.put_u64_le(cp.weights.len() as u64);
        buf.put_u64_le(fnv1a(&cp.weights));
        buf.put_slice(&cp.weights);
        let decoded = decode_checkpoint(&buf.freeze()).unwrap();
        assert_eq!(decoded.calibration, None);
        assert_eq!(decoded.weights, cp.weights);
        assert_eq!(decoded.stats, cp.stats);
    }

    #[test]
    fn damaged_calibration_is_a_typed_error() {
        let full = encode_checkpoint(&sample_checkpoint());
        // The calibration flag byte sits right after magic(4) + version(4)
        // + epoch(8) + lr(4) + retries(4).
        let flag_at = 24;
        let mut bad_flag = full.clone();
        bad_flag[flag_at] = 7;
        let err = decode_checkpoint(&bad_flag).unwrap_err();
        assert!(err.to_string().contains("calibration flag"), "{err}");
        // A NaN temperature is refused before the payload is touched.
        let mut bad_temp = full;
        bad_temp[flag_at + 1..flag_at + 5].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = decode_checkpoint(&bad_temp).unwrap_err();
        assert!(err.to_string().contains("calibration temperature"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_checkpoint(&sample_checkpoint());
        bytes[4] = 99;
        let err = decode_checkpoint(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn bad_magic_file_is_rejected_from_the_prefix() {
        let dir = std::env::temp_dir().join("mvgnn_ckpt_badmagic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not_a_ckpt.bin");
        std::fs::write(&path, b"ELF!\x01\x00\x00\x00 definitely not weights").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::write(&path, b"MV").unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_params() -> Params {
        let mut p = Params::new();
        let mut seed = 0x9e37u32;
        for (name, rows, cols) in
            [("node.gc0.w", 7, 5), ("node.gc0.b", 1, 5), ("fusion.w", 10, 3), ("head.b", 1, 3)]
        {
            let init: Vec<f32> = (0..rows * cols)
                .map(|_| {
                    seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                    (seed as f32 / u32::MAX as f32) - 0.5
                })
                .collect();
            p.add(name, rows, cols, init);
        }
        p
    }

    fn mapped_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mvgnn_mapped_ckpt_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mapped_roundtrip_is_bit_identical() {
        let dir = mapped_dir("roundtrip");
        let path = dir.join("model.mvck");
        let src = sample_params();
        let meta = CheckpointMeta {
            epoch: 3,
            lr: 1e-3,
            retries: 1,
            calibration: Some(1.4),
            stats: vec![EpochStats { epoch: 3, loss: 0.5, accuracy: 0.75 }],
        };
        write_mapped_checkpoint(&path, &meta, &src).unwrap();
        let cp = MappedCheckpoint::open(&path).unwrap();
        assert_eq!(cp.meta(), &meta);
        assert_eq!(cp.tensor_count(), src.len());

        let mut dst = sample_params();
        for (_, d) in dst.iter_mut() {
            d.fill(-77.0);
        }
        cp.install(&mut dst).unwrap();
        assert_eq!(dst.mapped_tensor_count(), src.len());
        for i in 0..src.len() {
            let id = mvgnn_tensor::ParamId(i);
            let a: Vec<u32> = src.data(id).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = dst.data(id).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "tensor {i} differs");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_offsets_are_aligned() {
        let dir = mapped_dir("aligned");
        let path = dir.join("model.mvck");
        write_mapped_checkpoint(&path, &CheckpointMeta { lr: 1e-3, ..Default::default() }, &sample_params())
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Walk the directory out of the raw file and check every offset.
        let cp = MappedCheckpoint::open(&path).unwrap();
        for t in &cp.tensors {
            assert_eq!(t.offset % TENSOR_ALIGN, 0, "tensor `{}` misaligned", t.name);
            assert!(t.offset + t.bytes <= bytes.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_unknown_feature_flag_is_refused() {
        let dir = mapped_dir("flags");
        let path = dir.join("model.mvck");
        write_mapped_checkpoint(&path, &CheckpointMeta { lr: 1e-3, ..Default::default() }, &sample_params())
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] |= 1 << 5; // a flag bit this reader does not know
        std::fs::write(&path, &bytes).unwrap();
        let err = MappedCheckpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("unknown feature flags"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_truncation_and_checksum_flip_are_typed_errors() {
        let dir = mapped_dir("faults");
        let path = dir.join("model.mvck");
        write_mapped_checkpoint(&path, &CheckpointMeta { lr: 1e-3, ..Default::default() }, &sample_params())
            .unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncation at a spread of cut points, including mid-tensor.
        for cut in [0, 3, MAPPED_PREFIX - 1, MAPPED_PREFIX + 9, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = MappedCheckpoint::open(&path).unwrap_err();
            assert!(matches!(err, MvGnnError::Checkpoint(_)), "cut {cut}: {err}");
        }

        // A checksum flip deep in the tensor region.
        let mut flipped = full.clone();
        let victim = full.len() - 5;
        flipped[victim] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = MappedCheckpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // A misaligned tensor offset planted in the directory: find the
        // first directory offset by rewriting it +4. The directory's
        // first tensor offset is the 8 bytes before the last 24-byte
        // tail of the meta block structure, so patch via open() fields
        // instead: locate the 64-aligned region start in the raw bytes.
        let cp_ok = MappedCheckpoint::open({
            std::fs::write(&path, &full).unwrap();
            &path
        })
        .unwrap();
        let first_off = cp_ok.tensors[0].offset as u64;
        drop(cp_ok);
        let needle = first_off.to_le_bytes();
        let pos = full
            .windows(8)
            .position(|w| w == needle)
            .expect("directory offset present in file");
        let mut misaligned = full.clone();
        misaligned[pos..pos + 8].copy_from_slice(&(first_off + 4).to_le_bytes());
        std::fs::write(&path, &misaligned).unwrap();
        let err = MappedCheckpoint::open(&path).unwrap_err();
        assert!(err.to_string().contains("aligned"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eager_reader_redirects_mapped_files() {
        let dir = mapped_dir("redirect");
        let path = dir.join("model.mvck");
        write_mapped_checkpoint(&path, &CheckpointMeta { lr: 1e-3, ..Default::default() }, &sample_params())
            .unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("MappedCheckpoint::open"), "{err}");
        // And the mapped reader redirects eager files symmetrically.
        let eager = dir.join("eager.ckpt");
        write_checkpoint(&eager, &sample_checkpoint()).unwrap();
        let err = MappedCheckpoint::open(&eager).unwrap_err();
        assert!(err.to_string().contains("read_checkpoint"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
