//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is keyed by a seed; every injector derives its choice
//! of victim positions from that seed alone, so a failing test reproduces
//! bit-for-bit. The plan covers the fault classes the pipeline must
//! survive: NaN-poisoned weights (training divergence), corrupted
//! checkpoint bytes, truncated/mangled source programs, and starved
//! interpreter budgets (truncated traces).

use mvgnn_tensor::tape::Params;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seed-keyed plan of faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Poison the model weights with NaN at the start of this epoch
    /// (consumed once unless [`persistent`](Self::persistent) is set).
    pub poison_at_epoch: Option<usize>,
    /// Re-poison on every rollback retry too, so the retry budget is
    /// guaranteed to exhaust.
    pub persistent: bool,
}

impl FaultPlan {
    /// A plan that injects nothing until configured.
    pub fn new(seed: u64) -> Self {
        Self { seed, poison_at_epoch: None, persistent: false }
    }

    /// Arrange for the trainer's weights to be NaN-poisoned at `epoch`.
    pub fn poison_weights_at(mut self, epoch: usize) -> Self {
        self.poison_at_epoch = Some(epoch);
        self
    }

    /// Make the weight poisoning survive rollbacks (fires every retry).
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Overwrite `k` seed-chosen weight entries with NaN.
    pub fn poison_params(&self, params: &mut Params, k: usize) {
        let mut state = self.seed ^ 0x7031_50a9_e0f5_41c1;
        for (_, data) in params.iter_mut() {
            for _ in 0..k {
                let idx = (splitmix(&mut state) as usize) % data.len().max(1);
                data[idx] = f32::NAN;
            }
        }
    }

    /// Flip one bit in each of `flips` seed-chosen bytes.
    pub fn corrupt_bytes(&self, bytes: &mut [u8], flips: usize) {
        if bytes.is_empty() {
            return;
        }
        let mut state = self.seed ^ 0x94d0_49bb_1331_11eb;
        for _ in 0..flips {
            let idx = (splitmix(&mut state) as usize) % bytes.len();
            let bit = (splitmix(&mut state) % 8) as u8;
            bytes[idx] ^= 1 << bit;
        }
    }

    /// Cut a source program off mid-token, keeping roughly `frac` of it.
    pub fn truncate_source(&self, src: &str, frac: f64) -> String {
        let target = ((src.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
        let mut cut = target.min(src.len());
        while cut > 0 && !src.is_char_boundary(cut) {
            cut -= 1;
        }
        src[..cut].to_string()
    }

    /// Deterministically mangle a source program: delete one seed-chosen
    /// span and swap a pair of characters, producing a malformed but
    /// plausible-looking input.
    pub fn mangle_source(&self, src: &str) -> String {
        if src.len() < 4 {
            return String::new();
        }
        let mut state = self.seed ^ 0xbf58_476d_1ce4_e5b9;
        let bytes: Vec<char> = src.chars().collect();
        let start = (splitmix(&mut state) as usize) % (bytes.len() / 2);
        let len = 1 + (splitmix(&mut state) as usize) % (bytes.len() / 4).max(1);
        let mut out: Vec<char> =
            bytes[..start].iter().chain(&bytes[(start + len).min(bytes.len())..]).copied().collect();
        if out.len() >= 2 {
            let a = (splitmix(&mut state) as usize) % out.len();
            let b = (splitmix(&mut state) as usize) % out.len();
            out.swap(a, b);
        }
        out.into_iter().collect()
    }

    /// An interpreter step budget small enough to truncate any real trace.
    pub fn starved_step_budget(&self) -> u64 {
        let mut state = self.seed ^ 0x2545_f491_4f6c_dd1d;
        5 + splitmix(&mut state) % 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injectors_are_deterministic_per_seed() {
        let plan = FaultPlan::new(9);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        plan.corrupt_bytes(&mut a, 5);
        plan.corrupt_bytes(&mut b, 5);
        assert_eq!(a, b);
        assert_ne!(a, vec![0u8; 64]);
        assert_ne!(plan.mangle_source("fn main() { let x = 1; }"), "fn main() { let x = 1; }");
        assert_eq!(
            FaultPlan::new(3).mangle_source("abcdefgh"),
            FaultPlan::new(3).mangle_source("abcdefgh")
        );
    }

    #[test]
    fn poison_makes_weights_non_finite() {
        let mut params = Params::new();
        params.add("w", 4, 4, vec![0.5; 16]);
        FaultPlan::new(1).poison_params(&mut params, 3);
        let poisoned: usize = (0..params.len())
            .map(mvgnn_tensor::tape::ParamId)
            .map(|id| params.data(id).iter().filter(|x| x.is_nan()).count())
            .sum();
        assert!(poisoned >= 1, "expected at least one NaN");
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let plan = FaultPlan::new(2);
        let src = "loop α { a[i] = b[i]; }";
        for frac in [0.0, 0.3, 0.62, 1.0] {
            let cut = plan.truncate_source(src, frac);
            assert!(src.starts_with(&cut));
        }
    }
}
