//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is keyed by a seed; every injector derives its choice
//! of victim positions from that seed alone, so a failing test reproduces
//! bit-for-bit. The plan covers the fault classes the pipeline must
//! survive: NaN-poisoned weights (training divergence), corrupted
//! checkpoint bytes, truncated/mangled source programs, and starved
//! interpreter budgets (truncated traces).

use mvgnn_tensor::tape::Params;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seed-keyed plan of faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Poison the model weights with NaN at the start of this epoch
    /// (consumed once unless [`persistent`](Self::persistent) is set).
    pub poison_at_epoch: Option<usize>,
    /// Re-poison on every rollback retry too, so the retry budget is
    /// guaranteed to exhaust.
    pub persistent: bool,
}

impl FaultPlan {
    /// A plan that injects nothing until configured.
    pub fn new(seed: u64) -> Self {
        Self { seed, poison_at_epoch: None, persistent: false }
    }

    /// Arrange for the trainer's weights to be NaN-poisoned at `epoch`.
    pub fn poison_weights_at(mut self, epoch: usize) -> Self {
        self.poison_at_epoch = Some(epoch);
        self
    }

    /// Make the weight poisoning survive rollbacks (fires every retry).
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }

    /// Overwrite `k` seed-chosen weight entries with NaN.
    pub fn poison_params(&self, params: &mut Params, k: usize) {
        let mut state = self.seed ^ 0x7031_50a9_e0f5_41c1;
        for (_, data) in params.iter_mut() {
            for _ in 0..k {
                let idx = (splitmix(&mut state) as usize) % data.len().max(1);
                data[idx] = f32::NAN;
            }
        }
    }

    /// Flip one bit in each of `flips` seed-chosen bytes.
    pub fn corrupt_bytes(&self, bytes: &mut [u8], flips: usize) {
        if bytes.is_empty() {
            return;
        }
        let mut state = self.seed ^ 0x94d0_49bb_1331_11eb;
        for _ in 0..flips {
            let idx = (splitmix(&mut state) as usize) % bytes.len();
            let bit = (splitmix(&mut state) % 8) as u8;
            bytes[idx] ^= 1 << bit;
        }
    }

    /// Cut a source program off mid-token, keeping roughly `frac` of it.
    pub fn truncate_source(&self, src: &str, frac: f64) -> String {
        let target = ((src.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
        let mut cut = target.min(src.len());
        while cut > 0 && !src.is_char_boundary(cut) {
            cut -= 1;
        }
        src[..cut].to_string()
    }

    /// Deterministically mangle a source program: delete one seed-chosen
    /// span and swap a pair of characters, producing a malformed but
    /// plausible-looking input.
    pub fn mangle_source(&self, src: &str) -> String {
        if src.len() < 4 {
            return String::new();
        }
        let mut state = self.seed ^ 0xbf58_476d_1ce4_e5b9;
        let bytes: Vec<char> = src.chars().collect();
        let start = (splitmix(&mut state) as usize) % (bytes.len() / 2);
        let len = 1 + (splitmix(&mut state) as usize) % (bytes.len() / 4).max(1);
        let mut out: Vec<char> =
            bytes[..start].iter().chain(&bytes[(start + len).min(bytes.len())..]).copied().collect();
        if out.len() >= 2 {
            let a = (splitmix(&mut state) as usize) % out.len();
            let b = (splitmix(&mut state) as usize) % out.len();
            out.swap(a, b);
        }
        out.into_iter().collect()
    }

    /// An interpreter step budget small enough to truncate any real trace.
    pub fn starved_step_budget(&self) -> u64 {
        let mut state = self.seed ^ 0x2545_f491_4f6c_dd1d;
        5 + splitmix(&mut state) % 20
    }

    /// `n` interarrival gaps (µs) of a Poisson arrival process with mean
    /// rate `rate_per_sec`: i.i.d. exponential draws, seed-keyed, capped
    /// at 60 s so a tiny rate cannot stall a harness forever.
    pub fn poisson_interarrival_micros(&self, rate_per_sec: f64, n: usize) -> Vec<u64> {
        let mut state = self.seed ^ 0x6c62_272e_07bb_0142;
        let mean_us = 1_000_000.0 / rate_per_sec.max(1e-9);
        (0..n)
            .map(|_| (-unit(&mut state).ln() * mean_us).min(60_000_000.0) as u64)
            .collect()
    }

    /// Bursty storm gaps (µs): arrivals land in back-to-back volleys of
    /// `burst`, separated by exponential lulls sized so the long-run mean
    /// rate is still `rate_per_sec`. The degenerate `burst <= 1` case is
    /// plain Poisson.
    pub fn bursty_interarrival_micros(
        &self,
        rate_per_sec: f64,
        burst: usize,
        n: usize,
    ) -> Vec<u64> {
        let burst = burst.max(1);
        if burst == 1 {
            return self.poisson_interarrival_micros(rate_per_sec, n);
        }
        let mut state = self.seed ^ 0x9ae1_6a3b_2f90_404f;
        let volley_mean_us = burst as f64 * 1_000_000.0 / rate_per_sec.max(1e-9);
        (0..n)
            .map(|i| {
                if i % burst == 0 {
                    (-unit(&mut state).ln() * volley_mean_us).min(60_000_000.0) as u64
                } else {
                    0
                }
            })
            .collect()
    }

    /// Seed-keyed Bernoulli: whether event `i` is selected for fault
    /// injection at probability `frac`. Deterministic per `(seed, i)` and
    /// independent of evaluation order, so a storm can decide per-request
    /// malformation without sharing mutable RNG state across clients.
    pub fn selects(&self, i: u64, frac: f64) -> bool {
        let mut state =
            self.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x853c_49e6_748f_ea9b;
        unit(&mut state) <= frac.clamp(0.0, 1.0)
    }
}

/// Uniform draw in (0, 1] — never exactly 0, so `ln()` is always finite.
fn unit(state: &mut u64) -> f64 {
    (((splitmix(state) >> 11) + 1) as f64) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injectors_are_deterministic_per_seed() {
        let plan = FaultPlan::new(9);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        plan.corrupt_bytes(&mut a, 5);
        plan.corrupt_bytes(&mut b, 5);
        assert_eq!(a, b);
        assert_ne!(a, vec![0u8; 64]);
        assert_ne!(plan.mangle_source("fn main() { let x = 1; }"), "fn main() { let x = 1; }");
        assert_eq!(
            FaultPlan::new(3).mangle_source("abcdefgh"),
            FaultPlan::new(3).mangle_source("abcdefgh")
        );
    }

    #[test]
    fn poison_makes_weights_non_finite() {
        let mut params = Params::new();
        params.add("w", 4, 4, vec![0.5; 16]);
        FaultPlan::new(1).poison_params(&mut params, 3);
        let poisoned: usize = (0..params.len())
            .map(mvgnn_tensor::tape::ParamId)
            .map(|id| params.data(id).iter().filter(|x| x.is_nan()).count())
            .sum();
        assert!(poisoned >= 1, "expected at least one NaN");
    }

    #[test]
    fn arrival_storms_are_deterministic_and_shaped() {
        let plan = FaultPlan::new(7);
        let a = plan.poisson_interarrival_micros(1000.0, 256);
        assert_eq!(a, plan.poisson_interarrival_micros(1000.0, 256));
        // Mean gap of a 1 kHz process is ~1000 µs; allow wide slack.
        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!((200.0..5000.0).contains(&mean), "mean gap {mean}");

        let b = plan.bursty_interarrival_micros(1000.0, 8, 64);
        assert_eq!(b, plan.bursty_interarrival_micros(1000.0, 8, 64));
        // Within a volley the gaps collapse to zero.
        for (i, gap) in b.iter().enumerate() {
            if i % 8 != 0 {
                assert_eq!(*gap, 0, "gap {i} inside a volley");
            }
        }
        assert!(b.iter().any(|&g| g > 0), "volleys must be separated");

        // Bernoulli selection is per-index deterministic and monotone-ish
        // in frac at the extremes.
        assert!((0..64).all(|i| !plan.selects(i, 0.0)));
        assert!((0..64).all(|i| plan.selects(i, 1.0)));
        let picked: Vec<u64> = (0..256).filter(|&i| plan.selects(i, 0.25)).collect();
        assert!(!picked.is_empty() && picked.len() < 256);
        assert_eq!(picked, (0..256).filter(|&i| plan.selects(i, 0.25)).collect::<Vec<_>>());
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let plan = FaultPlan::new(2);
        let src = "loop α { a[i] = b[i]; }";
        for frac in [0.0, 0.3, 0.62, 1.0] {
            let cut = plan.truncate_source(src, frac);
            assert!(src.starts_with(&cut));
        }
    }
}
