//! End-to-end experiment driver: trains every model of Table III,
//! evaluates the auto-parallelisation tools, and produces the rows behind
//! Tables III/IV and Figures 7/8.

use crate::error::MvGnnError;
use crate::model::{MvGnn, MvGnnConfig, ViewMode};
use crate::trainer::{train, EpochStats, TrainConfig};
use crate::views::{view_importance, ViewImportance};
use mvgnn_baselines::tree::TreeConfig;
use mvgnn_baselines::{
    autopar_like, discopop_like, handcrafted_features, pluto_like, AdaBoost, DecisionTree,
    LinearSvm, Metrics, Ncc, NccConfig,
};
use mvgnn_dataset::{
    build_corpus, generate_suite, CorpusConfig, Dataset, LabeledSample, Suite,
};
use mvgnn_ir::transform::{optimize, OptLevel};
use mvgnn_profiler::profile_module;

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Benchmark group ("NPB", "PolyBench", "BOTS", "Generated Dataset").
    pub benchmark: String,
    /// Model/tool name.
    pub model: String,
    /// Accuracy in percent.
    pub accuracy: f64,
}

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// NPB application.
    pub app: String,
    /// Loops in the app.
    pub loops: usize,
    /// Loops the trained model marks parallelisable.
    pub identified: usize,
    /// Ground-truth parallelisable loops.
    pub ground_truth: usize,
}

/// Everything the experiment driver produces.
#[derive(Debug)]
pub struct PipelineReport {
    /// Table III rows (learned models; extend with [`evaluate_tools`]).
    pub table3: Vec<Table3Row>,
    /// Fig. 7 training curves for the MV-GNN.
    pub fig7: Vec<EpochStats>,
    /// Fig. 8 view importances per suite.
    pub fig8: Vec<ViewImportance>,
    /// Table IV rows (NPB apps).
    pub table4: Vec<Table4Row>,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Corpus construction.
    pub corpus: CorpusConfig,
    /// MV-GNN training.
    pub train: TrainConfig,
    /// Use the paper-scale model (k = 135 etc.) instead of the compact one.
    pub paper_scale: bool,
    /// NCC baseline configuration.
    pub ncc: NccConfig,
    /// Train/evaluate the NCC baseline (slowest baseline).
    pub run_ncc: bool,
    /// GNN training restarts (best-on-train kept).
    pub restarts: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            corpus: CorpusConfig::default(),
            train: TrainConfig::default(),
            paper_scale: false,
            ncc: NccConfig::default(),
            run_ncc: true,
            restarts: 1,
        }
    }
}

fn suite_name(s: Suite) -> &'static str {
    match s {
        Suite::Npb => "NPB",
        Suite::PolyBench => "PolyBench",
        Suite::Bots => "BOTS",
        Suite::Stress => "Stress",
    }
}

/// Accuracy of `pred` over a filtered group. Suite rows evaluate on the
/// *unbalanced* per-benchmark pool (the paper evaluates on the benchmarks
/// as they come); the dataset row evaluates on the balanced test set.
fn group_accuracy(
    ds: &Dataset,
    group: Option<Suite>,
    mut pred: impl FnMut(&LabeledSample) -> usize,
) -> Option<f64> {
    let pool: &[LabeledSample] = match group {
        Some(_) => &ds.test_full,
        None => &ds.test,
    };
    let mut m = Metrics::default();
    for s in pool.iter().filter(|s| group.is_none_or(|g| s.suite == g)) {
        m.record(pred(s), s.label);
    }
    (m.total() > 0).then(|| m.accuracy() * 100.0)
}

/// Every evaluation group of Table III: the three suites plus the full
/// generated dataset.
const GROUPS: [(Option<Suite>, &str); 4] = [
    (Some(Suite::Npb), "NPB"),
    (Some(Suite::PolyBench), "PolyBench"),
    (Some(Suite::Bots), "BOTS"),
    (None, "Generated Dataset"),
];

/// Run the learned-model half of the experiment.
///
/// Fails with [`MvGnnError::Config`] on an invalid configuration (zero
/// restarts, out-of-range label noise, or a corpus that yields no
/// training data) instead of panicking partway through.
pub fn run_pipeline(cfg: &PipelineConfig) -> Result<(PipelineReport, Dataset), MvGnnError> {
    if cfg.restarts == 0 {
        return Err(MvGnnError::Config("restarts must be >= 1".into()));
    }
    if !cfg.corpus.label_noise.is_finite() || !(0.0..=1.0).contains(&cfg.corpus.label_noise) {
        return Err(MvGnnError::Config(format!(
            "label_noise must be in [0, 1], got {}",
            cfg.corpus.label_noise
        )));
    }
    let ds = build_corpus(&cfg.corpus);
    if ds.train.is_empty() {
        return Err(MvGnnError::Config("corpus produced no training data".into()));
    }
    for (suite, name) in [(Suite::Npb, "NPB"), (Suite::PolyBench, "PolyBench"), (Suite::Bots, "BOTS")] {
        let n = ds.test_full.iter().filter(|s| s.suite == suite).count();
        eprintln!("[pipeline] {name} evaluation pool: {n} samples");
    }
    let probe = &ds.train[0].sample;
    let mk_cfg = |mode: ViewMode, drop_dynamic: bool| {
        let mut c = if cfg.paper_scale {
            MvGnnConfig::paper(probe.node_dim, probe.aw_vocab)
        } else {
            MvGnnConfig::small(probe.node_dim, probe.aw_vocab)
        };
        c.mode = mode;
        c.drop_dynamic = drop_dynamic;
        c
    };

    let mut table3 = Vec::new();

    // Train with restarts: hold out ~15% of the *training* loops (by base
    // key, so augmented variants stay together) as a validation fold and
    // keep the restart with the best validation accuracy. No test data is
    // touched.
    let is_val = |s: &LabeledSample| (s.base_key.wrapping_mul(0x9e37_79b9)) % 100 < 15;
    let fit: Vec<LabeledSample> =
        ds.train.iter().filter(|s| !is_val(s)).cloned().collect();
    let val: Vec<LabeledSample> = ds.train.iter().filter(|s| is_val(s)).cloned().collect();
    let train_best = |base: MvGnnConfig,
                      restarts: usize|
     -> Result<(MvGnn, Vec<EpochStats>), MvGnnError> {
        let mut best: Option<(f64, MvGnn, Vec<EpochStats>)> = None;
        for r in 0..restarts {
            let mut c = base.clone();
            c.seed = base.seed.wrapping_add(r as u64 * 0x9e37);
            let mut m = MvGnn::new(c);
            let stats = train(&mut m, &fit, &cfg.train)?;
            let score = if val.is_empty() {
                stats.last().map(|e| e.accuracy as f64).unwrap_or(0.0)
            } else {
                crate::trainer::evaluate(&m, &val).accuracy()
            };
            if best.as_ref().map(|(b, _, _)| score > *b).unwrap_or(true) {
                best = Some((score, m, stats));
            }
        }
        // `restarts >= 1` was validated up front, so the loop ran at least
        // once; guard anyway rather than unwrap.
        let (_, m, stats) = best
            .ok_or_else(|| MvGnnError::Config("restarts must be >= 1".into()))?;
        Ok((m, stats))
    };

    // MV-GNN (the paper's model).
    let (mv, fig7) = train_best(mk_cfg(ViewMode::Multi, false), cfg.restarts)?;
    for (group, name) in GROUPS {
        if let Some(acc) = group_accuracy(&ds, group, |s| mv.predict(&s.sample)) {
            table3.push(Table3Row {
                benchmark: name.into(),
                model: "MV-GNN".into(),
                accuracy: acc,
            });
        }
    }

    // Static GNN (Shen et al.): single node view, static features only.
    let (static_gnn, _) = train_best(mk_cfg(ViewMode::NodeOnly, true), cfg.restarts)?;
    for (group, name) in GROUPS {
        if let Some(acc) = group_accuracy(&ds, group, |s| static_gnn.predict(&s.sample)) {
            table3.push(Table3Row {
                benchmark: name.into(),
                model: "Static GNN".into(),
                accuracy: acc,
            });
        }
    }

    // Hand-crafted classifiers (Fried et al.).
    let train_x: Vec<Vec<f32>> =
        ds.train.iter().map(|s| handcrafted_features(&s.sample)).collect();
    let train_y: Vec<usize> = ds.train.iter().map(|s| s.label).collect();
    let svm = LinearSvm::train(&train_x, &train_y, 0.01, 20, 11);
    let tree = DecisionTree::train(&train_x, &train_y, TreeConfig::default());
    let ada = AdaBoost::train(&train_x, &train_y, 60);
    for (group, name) in GROUPS {
        for (model_name, pred) in [
            ("SVM", &mut (|s: &LabeledSample| svm.predict(&handcrafted_features(&s.sample)))
                as &mut dyn FnMut(&LabeledSample) -> usize),
            ("Decision Tree", &mut (|s: &LabeledSample| {
                tree.predict(&handcrafted_features(&s.sample))
            })),
            ("AdaBoost", &mut (|s: &LabeledSample| {
                ada.predict(&handcrafted_features(&s.sample))
            })),
        ] {
            if let Some(acc) = group_accuracy(&ds, group, &mut *pred) {
                table3.push(Table3Row {
                    benchmark: name.into(),
                    model: model_name.into(),
                    accuracy: acc,
                });
            }
        }
    }

    // NCC (Ben-Nun et al.): sequence model, no graph.
    if cfg.run_ncc {
        let seq_data: Vec<(Vec<usize>, usize)> = ds
            .train
            .iter()
            .map(|s| (s.sample.token_ids.clone(), s.label))
            .collect();
        let mut ncc = Ncc::new(&ds.inst2vec, cfg.ncc.clone());
        ncc.train(&seq_data);
        for (group, name) in GROUPS {
            if let Some(acc) =
                group_accuracy(&ds, group, |s| ncc.predict(&s.sample.token_ids))
            {
                table3.push(Table3Row {
                    benchmark: name.into(),
                    model: "NCC".into(),
                    accuracy: acc,
                });
            }
        }
    }

    // Fig. 8: view importance per suite on the test set.
    let fig8 = view_importance(&mv, &ds.full, |s| suite_name(s.suite).to_string());

    // Table IV: the trained model over every NPB loop (unoptimised apps).
    let mut table4 = Vec::new();
    for (suite, app_samples) in group_by_app(&ds, Suite::Npb) {
        let _ = suite;
        let mut identified = 0usize;
        let mut ground = 0usize;
        for s in &app_samples {
            if mv.predict(&s.sample) == 1 {
                identified += 1;
            }
            if s.label == 1 {
                ground += 1;
            }
        }
        table4.push(Table4Row {
            app: app_samples[0].app.clone(),
            loops: app_samples.len(),
            identified,
            ground_truth: ground,
        });
    }
    table4.sort_by(|a, b| a.app.cmp(&b.app));

    Ok((PipelineReport { table3, fig7, fig8, table4 }, ds))
}

/// Group all samples (train + test) of one suite by app, deduplicated to
/// one sample per base loop (the O0 variant set).
fn group_by_app(ds: &Dataset, suite: Suite) -> Vec<(Suite, Vec<&LabeledSample>)> {
    let mut by_app: std::collections::BTreeMap<String, Vec<&LabeledSample>> =
        std::collections::BTreeMap::new();
    for s in &ds.full {
        if s.suite == suite {
            by_app.entry(s.app.clone()).or_default().push(s);
        }
    }
    by_app.into_values().map(|v| (suite, v)).collect()
}

/// One tool-evaluation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolEval {
    /// Benchmark group.
    pub benchmark: String,
    /// Tool name.
    pub tool: &'static str,
    /// Metrics against ground truth.
    pub metrics: Metrics,
}

/// Evaluate Pluto/AutoPar/DiscoPoP-like tools over freshly generated
/// suites (tools are not trained, so no split is needed). `opt_levels`
/// adds the transformed-dataset group the paper reports.
pub fn evaluate_tools(seeds: &[u64], opt_levels: &[OptLevel]) -> Vec<ToolEval> {
    evaluate_tools_with_noise(seeds, opt_levels, 0.0, 0)
}

/// Like [`evaluate_tools`] but scoring against the same noisy labels the
/// learned models see (pass the corpus `label_noise` and `seed`).
pub fn evaluate_tools_with_noise(
    seeds: &[u64],
    opt_levels: &[OptLevel],
    label_noise: f64,
    corpus_seed: u64,
) -> Vec<ToolEval> {
    let mut per_group: std::collections::BTreeMap<(String, &'static str), Metrics> =
        std::collections::BTreeMap::new();
    for &seed in seeds {
        for app in generate_suite(None, seed) {
            for &level in opt_levels {
                let module = optimize(&app.module, level);
                let Ok(res) = profile_module(&module, app.entry, &[]) else { continue };
                for (f, l, pattern) in &app.loops {
                    let key = mvgnn_dataset::base_key(app.spec.name, seed, *f, *l);
                    let label = mvgnn_dataset::noisy_label(
                        key,
                        corpus_seed,
                        label_noise,
                        usize::from(pattern.is_parallelizable()),
                    );
                    let runtime = res.loops.get(&(*f, *l)).copied().unwrap_or_default();
                    let verdicts = [
                        ("Pluto", pluto_like(&module, *f, *l).label()),
                        ("AutoPar", autopar_like(&module, *f, *l).label()),
                        (
                            "DiscoPoP",
                            discopop_like(&module, *f, *l, &res.deps, &runtime).label(),
                        ),
                    ];
                    let groups: [String; 2] = [
                        suite_name(app.spec.suite).to_string(),
                        "Generated Dataset".to_string(),
                    ];
                    for g in groups {
                        for (tool, v) in verdicts {
                            per_group
                                .entry((g.clone(), tool))
                                .or_default()
                                .record(v, label);
                        }
                    }
                }
            }
        }
    }
    per_group
        .into_iter()
        .map(|((benchmark, tool), metrics)| ToolEval { benchmark, tool, metrics })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_embed::Inst2VecConfig;

    fn tiny_pipeline_cfg() -> PipelineConfig {
        PipelineConfig {
            corpus: CorpusConfig {
                seeds: vec![2],
                opt_levels: vec![OptLevel::O0],
                per_class: Some(30),
                test_fraction: 0.3,
                suite: None,
                inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
                sample: Default::default(),
                seed: 9,
                label_noise: 0.0,
                static_features: false,
            },
            train: TrainConfig { epochs: 6, batch_size: 8, ..Default::default() },
            paper_scale: false,
            ncc: NccConfig { hidden: 8, dense: 8, max_len: 16, lr: 0.02, epochs: 3, seed: 1 },
            run_ncc: true,
            restarts: 1,
        }
    }

    #[test]
    fn invalid_pipeline_configs_fail_fast() {
        let zero_restarts = PipelineConfig { restarts: 0, ..tiny_pipeline_cfg() };
        assert!(matches!(run_pipeline(&zero_restarts), Err(MvGnnError::Config(_))));
        let mut bad_noise = tiny_pipeline_cfg();
        bad_noise.corpus.label_noise = 1.5;
        assert!(matches!(run_pipeline(&bad_noise), Err(MvGnnError::Config(_))));
        bad_noise.corpus.label_noise = f64::NAN;
        assert!(matches!(run_pipeline(&bad_noise), Err(MvGnnError::Config(_))));
    }

    #[test]
    fn pipeline_produces_all_artifacts() {
        let (report, ds) = run_pipeline(&tiny_pipeline_cfg()).unwrap();
        assert!(!ds.train.is_empty());
        // Table III has rows for every learned model on the full dataset.
        let models: std::collections::HashSet<&str> =
            report.table3.iter().map(|r| r.model.as_str()).collect();
        for m in ["MV-GNN", "Static GNN", "SVM", "Decision Tree", "AdaBoost", "NCC"] {
            assert!(models.contains(m), "missing model {m}: {models:?}");
        }
        for r in &report.table3 {
            assert!((0.0..=100.0).contains(&r.accuracy), "{r:?}");
        }
        // Fig 7 telemetry exists and is finite.
        assert_eq!(report.fig7.len(), 6);
        assert!(report.fig7.iter().all(|e| e.loss.is_finite()));
        // Table IV covers NPB apps present in the corpus.
        assert!(!report.table4.is_empty());
        for row in &report.table4 {
            assert!(row.identified <= row.loops);
        }
    }

    #[test]
    fn tool_evaluation_covers_all_groups() {
        let evals = evaluate_tools(&[2], &[OptLevel::O0]);
        let groups: std::collections::HashSet<&str> =
            evals.iter().map(|e| e.benchmark.as_str()).collect();
        for g in ["NPB", "PolyBench", "BOTS", "Generated Dataset"] {
            assert!(groups.contains(g), "missing group {g}");
        }
        // Paper ordering: DiscoPoP beats Pluto overall (reductions).
        let acc = |tool: &str| {
            evals
                .iter()
                .find(|e| e.benchmark == "Generated Dataset" && e.tool == tool)
                .map(|e| e.metrics.accuracy())
                .unwrap()
        };
        assert!(
            acc("DiscoPoP") > acc("Pluto"),
            "DiscoPoP {} should beat Pluto {}",
            acc("DiscoPoP"),
            acc("Pluto")
        );
    }
}
