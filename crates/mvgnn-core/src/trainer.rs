//! Mini-batch training with rayon data-parallel gradient accumulation,
//! divergence recovery, and checkpoint/resume.
//!
//! Each batch is split across worker threads; every worker reads the
//! shared immutable weights through `&Params`, accumulates gradients
//! into its own private [`GradStore`] sidecar, and the sidecars are
//! reduced into a master store before the optimizer step — the standard
//! synchronous data-parallel scheme, safe by construction (no shared
//! mutable state, and no per-worker weight clones).
//!
//! Robustness: the trainer snapshots the weights after every completed
//! epoch. If an epoch produces a non-finite loss or gradient norm it
//! rolls back to the last good snapshot, halves the learning rate,
//! resets the optimizer moments, and retries; after
//! [`TrainConfig::max_retries`] rollbacks it gives up with
//! [`MvGnnError::Diverged`]. When [`TrainConfig::checkpoint_path`] is
//! set, each completed epoch is also persisted atomically so an
//! interrupted run can continue via [`TrainConfig::resume_from`].

use crate::checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
use crate::error::MvGnnError;
use crate::fault::FaultPlan;
use crate::model::MvGnn;
use mvgnn_dataset::LabeledSample;
use mvgnn_embed::GraphBatch;
use mvgnn_tensor::optim::{clip_grad_norm, Adam};
use mvgnn_tensor::tape::{argmax_rows, GradStore, Tape};
use mvgnn_tensor::Workspace;
use rayon::prelude::*;
use std::path::PathBuf;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate. The paper trains with lr 1e-5 for 200 epochs
    /// under a different optimizer scale; defaults here converge to the
    /// same plateau in CI time.
    pub lr: f32,
    /// Gradient clip (global L2 norm).
    pub clip: f32,
    /// Weight of the per-view auxiliary losses (trains the Fig. 8 heads).
    pub aux_weight: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Use rayon data-parallel gradient accumulation.
    pub parallel: bool,
    /// Divergence rollbacks allowed before training fails.
    pub max_retries: usize,
    /// When set, write an atomic checkpoint here after every epoch.
    pub checkpoint_path: Option<PathBuf>,
    /// When set, restore weights/lr/telemetry from this checkpoint and
    /// continue from the following epoch.
    pub resume_from: Option<PathBuf>,
    /// Deterministic fault injection (robustness tests only).
    pub fault: Option<FaultPlan>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            clip: 10.0,
            aux_weight: 0.3,
            seed: 42,
            parallel: true,
            max_retries: 3,
            checkpoint_path: None,
            resume_from: None,
            fault: None,
        }
    }
}

/// Telemetry for one epoch (the series plotted in Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub accuracy: f32,
}

pub(crate) fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Gradient accumulation over one shard — a single packed forward and
/// backward pass over every sample of the shard; returns
/// (gradient sidecar, summed loss, correct count). The shared weights
/// are only read; each call owns nothing but its grad buffers.
///
/// `softmax_ce` averages over the batch rows, so the loss is rescaled by
/// the shard size before `backward` to keep the historical
/// sum-of-per-sample-losses gradient semantics: shard boundaries change
/// only f32 summation order, never the math.
pub(crate) fn shard_grads(
    model: &MvGnn,
    shard: &[&LabeledSample],
    aux_weight: f32,
    ws: &mut Workspace,
) -> (GradStore, f64, usize) {
    let temperature = model.cfg.temperature;
    let classes = model.cfg.classes;
    let samples: Vec<&mvgnn_embed::GraphSample> = shard.iter().map(|s| &s.sample).collect();
    let labels: Vec<usize> = shard.iter().map(|s| s.label).collect();
    // Pooled packing: once the workspace is warm this allocates nothing,
    // and the batch buffers go back to the pool below — per-step RSS is
    // bounded by the largest batch ever packed, not the batch count.
    let batch = GraphBatch::from_samples_in(ws, &samples);

    let mut tape = Tape::new(&model.params);
    let fwd = model.forward_batch(&mut tape, &batch);
    let preds = argmax_rows(tape.data(fwd.logits), shard.len(), classes);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();

    let mut loss = tape.softmax_ce(fwd.logits, &labels, temperature);
    for aux in fwd.view_logits.iter().copied().flatten() {
        // In single-view modes the view head IS the main head; adding
        // its loss again would double-count.
        if aux == fwd.logits {
            continue;
        }
        let al = tape.softmax_ce(aux, &labels, temperature);
        let scaled = tape.scale(al, aux_weight);
        loss = tape.add(loss, scaled);
    }
    let total = tape.scale(loss, shard.len() as f32);
    let loss_sum = tape.data(total)[0] as f64;
    tape.backward(total);
    let grads = tape.into_grads();
    batch.recycle(ws);
    (grads, loss_sum, correct)
}

/// One pooled workspace per data-parallel worker slot; reused across
/// every batch and epoch of a run.
pub(crate) fn grad_pools(cfg: &TrainConfig) -> Vec<Workspace> {
    let slots = if cfg.parallel { rayon::current_num_threads().max(1) } else { 1 };
    (0..slots).map(|_| Workspace::new()).collect()
}

/// One optimizer step over one batch: data-parallel gradient
/// accumulation, clip, step. Returns `None` when a non-finite gradient
/// norm was observed (the step is NOT applied), otherwise the batch's
/// `(summed loss, correct count)`.
pub(crate) fn step_batch(
    model: &mut MvGnn,
    batch: &[&LabeledSample],
    cfg: &TrainConfig,
    opt: &mut Adam,
    pools: &mut [Workspace],
) -> Option<(f64, usize)> {
    let shard_size = batch.len().div_ceil(pools.len().max(1));
    let results: Vec<(GradStore, f64, usize)> = if cfg.parallel && batch.len() > 1 {
        let shared: &MvGnn = model;
        batch
            .par_chunks(shard_size)
            .zip(pools.par_iter_mut())
            .map(|(shard, ws)| shard_grads(shared, shard, cfg.aux_weight, ws))
            .collect()
    } else {
        vec![shard_grads(model, batch, cfg.aux_weight, &mut pools[0])]
    };
    let mut master = GradStore::zeros_like(&model.params);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (local, l, c) in results {
        master.absorb(&local);
        loss += l;
        correct += c;
    }
    // clip_grad_norm returns the PRE-clip norm, so a NaN/Inf gradient
    // anywhere in the sidecar surfaces here — bail before the optimizer
    // step can smear it into the weights.
    let grad_norm = clip_grad_norm(&mut master, cfg.clip);
    if !grad_norm.is_finite() {
        return None;
    }
    opt.step(&mut model.params, &master);
    Some((loss, correct))
}

/// Outcome of one epoch over the data.
enum EpochRun {
    Done { loss: f32, accuracy: f32 },
    /// A non-finite loss or gradient norm was observed; carries the
    /// offending value for diagnostics.
    Diverged { loss: f32 },
}

fn run_epoch(
    model: &mut MvGnn,
    data: &[LabeledSample],
    order: &[usize],
    cfg: &TrainConfig,
    opt: &mut Adam,
    pools: &mut [Workspace],
) -> EpochRun {
    let mut epoch_loss = 0.0f64;
    let mut epoch_correct = 0usize;
    for batch_idx in order.chunks(cfg.batch_size) {
        let batch: Vec<&LabeledSample> = batch_idx.iter().map(|&i| &data[i]).collect();
        match step_batch(model, &batch, cfg, opt, pools) {
            Some((loss, correct)) => {
                epoch_loss += loss;
                epoch_correct += correct;
            }
            None => {
                return EpochRun::Diverged { loss: (epoch_loss / data.len() as f64) as f32 }
            }
        }
    }
    let loss = (epoch_loss / data.len() as f64) as f32;
    if !loss.is_finite() {
        return EpochRun::Diverged { loss };
    }
    EpochRun::Done { loss, accuracy: epoch_correct as f32 / data.len() as f32 }
}

/// Train the model; returns per-epoch telemetry.
///
/// Fails fast with [`MvGnnError::Config`] on an invalid configuration,
/// and with [`MvGnnError::Diverged`] if training keeps producing
/// non-finite losses after exhausting the rollback budget. `epochs == 0`
/// is a valid no-op and returns an empty telemetry vector.
pub fn train(
    model: &mut MvGnn,
    data: &[LabeledSample],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>, MvGnnError> {
    if data.is_empty() {
        return Err(MvGnnError::Config("training set is empty".into()));
    }
    if cfg.batch_size == 0 {
        return Err(MvGnnError::Config("batch_size must be >= 1".into()));
    }
    if !cfg.lr.is_finite() || cfg.lr <= 0.0 {
        return Err(MvGnnError::Config(format!("lr must be finite and positive, got {}", cfg.lr)));
    }
    if cfg.epochs == 0 {
        return Ok(Vec::new());
    }

    let mut lr = cfg.lr;
    let mut retries = 0usize;
    let mut stats: Vec<EpochStats> = Vec::with_capacity(cfg.epochs);
    let mut start_epoch = 0usize;

    if let Some(path) = &cfg.resume_from {
        let cp = read_checkpoint(path)?;
        model.load(&cp.weights)?;
        lr = cp.lr;
        retries = cp.retries;
        stats = cp.stats;
        start_epoch = cp.epoch + 1;
    }

    let mut opt = Adam::new(lr);
    let mut last_good = model.save();
    let mut fault_armed = cfg.fault.as_ref().and_then(|f| f.poison_at_epoch).is_some();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut pools = grad_pools(cfg);
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        if let Some(plan) = &cfg.fault {
            if plan.poison_at_epoch == Some(epoch) && (fault_armed || plan.persistent) {
                plan.poison_params(&mut model.params, 2);
                fault_armed = false;
            }
        }
        // Deterministic shuffle.
        order.sort_by_key(|&i| mix(cfg.seed ^ epoch as u64, i as u64));
        match run_epoch(model, data, &order, cfg, &mut opt, &mut pools) {
            EpochRun::Done { loss, accuracy } => {
                stats.push(EpochStats { epoch, loss, accuracy });
                last_good = model.save();
                if let Some(path) = &cfg.checkpoint_path {
                    write_checkpoint(
                        path,
                        &Checkpoint {
                            epoch,
                            lr,
                            retries,
                            calibration: None,
                            stats: stats.clone(),
                            weights: last_good.to_vec(),
                        },
                    )?;
                }
                epoch += 1;
            }
            EpochRun::Diverged { loss } => {
                if retries >= cfg.max_retries {
                    return Err(MvGnnError::Diverged { epoch, retries, loss });
                }
                retries += 1;
                lr *= 0.5;
                model.load(&last_good)?;
                opt = Adam::new(lr);
            }
        }
    }
    Ok(stats)
}

/// Evaluate accuracy on a sample slice (packed batched inference;
/// predictions match the per-sample path exactly).
pub fn evaluate(model: &MvGnn, data: &[LabeledSample]) -> mvgnn_baselines::Metrics {
    let mut m = mvgnn_baselines::Metrics::default();
    for chunk in data.chunks(32) {
        let samples: Vec<&mvgnn_embed::GraphSample> = chunk.iter().map(|s| &s.sample).collect();
        for (pred, s) in model.predict_batch(&samples).into_iter().zip(chunk) {
            m.record(pred, s.label);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MvGnnConfig;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn tiny_dataset() -> mvgnn_dataset::Dataset {
        build_corpus(&CorpusConfig {
            seeds: vec![3],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(24),
            test_fraction: 0.25,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            sample: Default::default(),
            seed: 5,
            label_noise: 0.0,
            static_features: false,
        })
    }

    fn tiny_model(ds: &mvgnn_dataset::Dataset) -> MvGnn {
        let s0 = &ds.train[0].sample;
        MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab))
    }

    #[test]
    fn training_improves_over_initial() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let cfg = TrainConfig { epochs: 12, batch_size: 8, ..Default::default() };
        let stats = train(&mut model, &ds.train, &cfg).unwrap();
        assert_eq!(stats.len(), 12);
        let first = stats[0];
        let last = stats.last().unwrap();
        assert!(
            last.loss < first.loss,
            "loss should fall: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy >= 0.6, "train accuracy {}", last.accuracy);
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // Data-parallel reduction must be equivalent to serial
        // accumulation (up to f32 summation order; predictions agree).
        let ds = tiny_dataset();
        let run = |parallel: bool| {
            let mut model = tiny_model(&ds);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 8,
                parallel,
                ..Default::default()
            };
            train(&mut model, &ds.train, &cfg).unwrap();
            ds.test.iter().map(|s| model.predict(&s.sample)).collect::<Vec<_>>()
        };
        let a = run(true);
        let b = run(false);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            agree as f32 / a.len() as f32 > 0.9,
            "parallel/serial agreement {agree}/{}",
            a.len()
        );
    }

    #[test]
    fn evaluate_reports_metrics() {
        let ds = tiny_dataset();
        let model = tiny_model(&ds);
        let m = evaluate(&model, &ds.test);
        assert_eq!(m.total(), ds.test.len());
    }

    #[test]
    fn zero_epochs_is_a_no_op() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let before = model.save();
        let cfg = TrainConfig { epochs: 0, ..Default::default() };
        let stats = train(&mut model, &ds.train, &cfg).unwrap();
        assert!(stats.is_empty());
        assert_eq!(&*model.save(), &*before, "weights must be untouched");
    }

    #[test]
    fn invalid_configs_fail_fast() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let empty = train(&mut model, &[], &TrainConfig::default());
        assert!(matches!(empty, Err(MvGnnError::Config(_))));
        let bad_batch =
            train(&mut model, &ds.train, &TrainConfig { batch_size: 0, ..Default::default() });
        assert!(matches!(bad_batch, Err(MvGnnError::Config(_))));
        let bad_lr =
            train(&mut model, &ds.train, &TrainConfig { lr: f32::NAN, ..Default::default() });
        assert!(matches!(bad_lr, Err(MvGnnError::Config(_))));
    }

    #[test]
    fn divergence_rolls_back_and_recovers() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            fault: Some(FaultPlan::new(7).poison_weights_at(2)),
            ..Default::default()
        };
        let stats = train(&mut model, &ds.train, &cfg).unwrap();
        assert_eq!(stats.len(), 4, "all epochs must complete after rollback");
        assert!(stats.iter().all(|s| s.loss.is_finite()));
        // The recovered weights must be usable.
        let m = evaluate(&model, &ds.test);
        assert_eq!(m.total(), ds.test.len());
    }

    #[test]
    fn persistent_divergence_exhausts_retries() {
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 8,
            max_retries: 2,
            fault: Some(FaultPlan::new(7).poison_weights_at(1).persistent()),
            ..Default::default()
        };
        match train(&mut model, &ds.train, &cfg) {
            Err(MvGnnError::Diverged { epoch, retries, .. }) => {
                assert_eq!(epoch, 1);
                assert_eq!(retries, 2);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_continues_training() {
        let dir = std::env::temp_dir().join("mvgnn_trainer_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("train.ckpt");
        let ds = tiny_dataset();

        // Full 6-epoch reference run with checkpointing enabled.
        let mut reference = tiny_model(&ds);
        let full_cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            checkpoint_path: Some(ckpt.clone()),
            ..Default::default()
        };
        let full = train(&mut reference, &ds.train, &full_cfg).unwrap();

        // Interrupted run: stop after 3 epochs, then resume to 6.
        let mut model = tiny_model(&ds);
        let half_cfg = TrainConfig { epochs: 3, ..full_cfg.clone() };
        train(&mut model, &ds.train, &half_cfg).unwrap();
        let mut resumed = tiny_model(&ds);
        let resume_cfg = TrainConfig { resume_from: Some(ckpt.clone()), ..full_cfg.clone() };
        let rest = train(&mut resumed, &ds.train, &resume_cfg).unwrap();

        assert_eq!(rest.len(), 6, "resume must carry prior telemetry forward");
        assert_eq!(&rest[..3], &full[..3]);
        let preds_full: Vec<usize> = ds.test.iter().map(|s| reference.predict(&s.sample)).collect();
        let preds_res: Vec<usize> = ds.test.iter().map(|s| resumed.predict(&s.sample)).collect();
        assert_eq!(preds_full, preds_res, "resumed run must match the uninterrupted one");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_not_panicked() {
        let dir = std::env::temp_dir().join("mvgnn_trainer_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("bad.ckpt");
        std::fs::write(&ckpt, b"MVCKgarbage that is definitely not a checkpoint").unwrap();
        let ds = tiny_dataset();
        let mut model = tiny_model(&ds);
        let cfg = TrainConfig { resume_from: Some(ckpt), epochs: 2, ..Default::default() };
        let err = train(&mut model, &ds.train, &cfg).unwrap_err();
        assert!(matches!(err, MvGnnError::Checkpoint(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
