//! Mini-batch training with rayon data-parallel gradient accumulation.
//!
//! Each batch is split across worker threads; every worker clones the
//! parameter store, accumulates gradients over its shard, and the shards
//! are reduced into the master store before the optimizer step — the
//! standard synchronous data-parallel scheme, safe by construction
//! (no shared mutable state).

use crate::model::MvGnn;
use mvgnn_dataset::LabeledSample;
use mvgnn_tensor::optim::{clip_grad_norm, Adam};
use mvgnn_tensor::tape::{argmax_rows, Params, Tape};
use rayon::prelude::*;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate. The paper trains with lr 1e-5 for 200 epochs
    /// under a different optimizer scale; defaults here converge to the
    /// same plateau in CI time.
    pub lr: f32,
    /// Gradient clip (global L2 norm).
    pub clip: f32,
    /// Weight of the per-view auxiliary losses (trains the Fig. 8 heads).
    pub aux_weight: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Use rayon data-parallel gradient accumulation.
    pub parallel: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 30, batch_size: 16, lr: 1e-3, clip: 10.0, aux_weight: 0.3, seed: 42, parallel: true }
    }
}

/// Telemetry for one epoch (the series plotted in Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub accuracy: f32,
}

fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Gradient accumulation over one shard; returns (params-with-grads,
/// summed loss, correct count).
fn shard_grads(
    model: &MvGnn,
    base: &Params,
    shard: &[&LabeledSample],
    aux_weight: f32,
) -> (Params, f64, usize) {
    let mut local = base.clone();
    local.zero_grads();
    let mut loss_sum = 0.0f64;
    let mut correct = 0usize;
    let temperature = model.cfg.temperature;
    for s in shard {
        let mut tape = Tape::new(&mut local);
        let fwd = model.forward_on(&mut tape, &s.sample);
        let pred = argmax_rows(tape.data(fwd.logits), 1, 2)[0];
        if pred == s.label {
            correct += 1;
        }
        let mut loss = tape.softmax_ce(fwd.logits, &[s.label], temperature);
        for aux in [fwd.node_logits, fwd.struct_logits].into_iter().flatten() {
            // In single-view modes the view head IS the main head; adding
            // its loss again would double-count.
            if aux == fwd.logits {
                continue;
            }
            let al = tape.softmax_ce(aux, &[s.label], temperature);
            let scaled = tape.scale(al, aux_weight);
            loss = tape.add(loss, scaled);
        }
        loss_sum += tape.data(loss)[0] as f64;
        tape.backward(loss);
    }
    (local, loss_sum, correct)
}

/// Train the model; returns per-epoch telemetry.
pub fn train(model: &mut MvGnn, data: &[LabeledSample], cfg: &TrainConfig) -> Vec<EpochStats> {
    assert!(!data.is_empty(), "empty training set");
    let mut opt = Adam::new(cfg.lr);
    let mut stats = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for epoch in 0..cfg.epochs {
        // Deterministic shuffle.
        order.sort_by_key(|&i| mix(cfg.seed ^ epoch as u64, i as u64));
        let mut epoch_loss = 0.0f64;
        let mut epoch_correct = 0usize;
        for batch_idx in order.chunks(cfg.batch_size) {
            let batch: Vec<&LabeledSample> = batch_idx.iter().map(|&i| &data[i]).collect();
            model.params.zero_grads();
            let threads = if cfg.parallel { rayon::current_num_threads().max(1) } else { 1 };
            let shard_size = batch.len().div_ceil(threads);
            let results: Vec<(Params, f64, usize)> = if cfg.parallel && batch.len() > 1 {
                batch
                    .par_chunks(shard_size)
                    .map(|shard| shard_grads(model, &model.params, shard, cfg.aux_weight))
                    .collect()
            } else {
                vec![shard_grads(model, &model.params, &batch, cfg.aux_weight)]
            };
            for (local, loss, correct) in results {
                model.params.absorb_grads(&local);
                epoch_loss += loss;
                epoch_correct += correct;
            }
            clip_grad_norm(&mut model.params, cfg.clip);
            opt.step(&mut model.params);
        }
        stats.push(EpochStats {
            epoch,
            loss: (epoch_loss / data.len() as f64) as f32,
            accuracy: epoch_correct as f32 / data.len() as f32,
        });
    }
    stats
}

/// Evaluate accuracy on a sample slice.
pub fn evaluate(model: &mut MvGnn, data: &[LabeledSample]) -> mvgnn_baselines::Metrics {
    let mut m = mvgnn_baselines::Metrics::default();
    for s in data {
        let pred = model.predict(&s.sample);
        m.record(pred, s.label);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MvGnnConfig;
    use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn tiny_dataset() -> mvgnn_dataset::Dataset {
        build_corpus(&CorpusConfig {
            seeds: vec![3],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(24),
            test_fraction: 0.25,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            sample: Default::default(),
            seed: 5,
            label_noise: 0.0,
        })
    }

    #[test]
    fn training_improves_over_initial() {
        let ds = tiny_dataset();
        let s0 = &ds.train[0].sample;
        let mut model = MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab));
        let cfg = TrainConfig { epochs: 12, batch_size: 8, ..Default::default() };
        let stats = train(&mut model, &ds.train, &cfg);
        assert_eq!(stats.len(), 12);
        let first = stats[0];
        let last = stats.last().unwrap();
        assert!(
            last.loss < first.loss,
            "loss should fall: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy >= 0.6, "train accuracy {}", last.accuracy);
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // Data-parallel reduction must be equivalent to serial
        // accumulation (up to f32 summation order; predictions agree).
        let ds = tiny_dataset();
        let s0 = &ds.train[0].sample;
        let mk = || MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab));
        let run = |parallel: bool| {
            let mut model = mk();
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 8,
                parallel,
                ..Default::default()
            };
            train(&mut model, &ds.train, &cfg);
            ds.test.iter().map(|s| model.predict(&s.sample)).collect::<Vec<_>>()
        };
        let a = run(true);
        let b = run(false);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            agree as f32 / a.len() as f32 > 0.9,
            "parallel/serial agreement {agree}/{}",
            a.len()
        );
    }

    #[test]
    fn evaluate_reports_metrics() {
        let ds = tiny_dataset();
        let s0 = &ds.train[0].sample;
        let mut model = MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab));
        let m = evaluate(&mut model, &ds.test);
        assert_eq!(m.total(), ds.test.len());
    }
}
