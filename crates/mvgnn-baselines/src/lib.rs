//! # mvgnn-baselines — every comparator of the paper's Table III
//!
//! **Hand-crafted classifiers** (Fried et al., ICMLA'13) over the Table I
//! feature vector plus simple graph statistics:
//! [`svm::LinearSvm`] (Pegasos), [`tree::DecisionTree`] (CART),
//! [`adaboost::AdaBoost`] (decision stumps).
//!
//! **Neural Code Comprehension** ([`ncc`]): two stacked LSTMs over
//! inst2vec statement sequences (Ben-Nun et al.).
//!
//! **Auto-parallelisation tools** ([`tools`]): a Pluto-like static affine
//! dependence tester, an AutoPar-like conservative static analyser, and a
//! DiscoPoP-like dynamic heuristic, each preserving the decision-procedure
//! class (and hence the error profile) of the original tool.
//!
//! [`metrics`] provides the shared accuracy/precision/recall machinery.

pub mod adaboost;
pub mod features;
pub mod metrics;
pub mod ncc;
pub mod svm;
pub mod tools;
pub mod tree;

pub use adaboost::AdaBoost;
pub use features::handcrafted_features;
pub use metrics::Metrics;
pub use ncc::{Ncc, NccConfig};
pub use svm::LinearSvm;
pub use tools::{autopar_like, discopop_like, pluto_like, ToolVerdict};
pub use tree::DecisionTree;
