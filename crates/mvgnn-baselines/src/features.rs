//! Hand-crafted feature extraction (Fried et al., ICMLA'13).
//!
//! The classic classifiers consume exactly the Table I dynamic feature
//! vector per loop — instruction count, trip count, critical path length,
//! estimated speedup and the three dependence counts — matching the
//! feature set of the paper's SVM / decision-tree / AdaBoost baselines.

use mvgnn_embed::GraphSample;
use mvgnn_profiler::DynamicFeatures;

/// Width of the hand-crafted vector (the Table I features).
pub const HANDCRAFTED_DIM: usize = DynamicFeatures::DIM;

/// Extract the Table I feature vector from a model sample. The dynamics
/// are broadcast to every node row, so row 0 carries them.
pub fn handcrafted_features(s: &GraphSample) -> Vec<f32> {
    let dyn_off = s.node_dim - DynamicFeatures::DIM;
    s.node_feats[dyn_off..s.node_dim].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_peg::{build_peg, loop_subpeg};
    use mvgnn_profiler::{build_cus, loop_features, profile_module};

    fn sample(serial: bool) -> GraphSample {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 18);
        let out = m.add_array("b", Ty::F64, 18);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(1);
        let hi = b.const_i64(17);
        let st = b.const_i64(1);
        let one = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let im1 = b.bin(BinOp::Sub, iv, one);
            let x = b.load(a, im1);
            let y = b.bin(BinOp::Add, x, x);
            if serial {
                b.store(a, iv, y);
            } else {
                b.store(out, iv, y);
            }
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        let i2v = Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        build_sample(&sub, &i2v, &feats, &SampleConfig::default(), None)
    }

    #[test]
    fn feature_vector_is_exactly_table1() {
        let s = sample(false);
        let f = handcrafted_features(&s);
        assert_eq!(f.len(), HANDCRAFTED_DIM);
        assert_eq!(f.len(), 7);
        assert!(f.iter().all(|x| x.is_finite()));
        // Must equal the broadcast dynamics of any row.
        let dyn_off = s.node_dim - 7;
        assert_eq!(&f[..], &s.node_feats[dyn_off..s.node_dim]);
    }

    #[test]
    fn serial_and_parallel_loops_separate_in_feature_space() {
        let fp = handcrafted_features(&sample(false));
        let fs = handcrafted_features(&sample(true));
        // ESP (index 3) must be higher for the parallel loop.
        assert!(fp[3] > fs[3], "parallel esp {} vs serial esp {}", fp[3], fs[3]);
    }
}
