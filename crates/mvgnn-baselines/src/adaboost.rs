//! AdaBoost over decision stumps (the strongest hand-crafted baseline in
//! the paper's Table III).

/// One weak learner: a single-feature threshold with polarity.
#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f32,
    /// `true`: predict +1 when `x > threshold`.
    polarity: bool,
    alpha: f64,
}

impl Stump {
    fn predict(&self, x: &[f32]) -> f64 {
        let above = x[self.feature] > self.threshold;
        if above == self.polarity {
            1.0
        } else {
            -1.0
        }
    }
}

/// AdaBoost ensemble.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    stumps: Vec<Stump>,
}

impl AdaBoost {
    /// Train `rounds` boosting rounds.
    pub fn train(features: &[Vec<f32>], labels: &[usize], rounds: usize) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let n = features.len();
        let dim = features[0].len();
        let ys: Vec<f64> = labels.iter().map(|&y| if y == 1 { 1.0 } else { -1.0 }).collect();
        let mut w = vec![1.0 / n as f64; n];
        let mut stumps = Vec::with_capacity(rounds);

        // Precompute sorted value lists per feature.
        let sorted: Vec<Vec<(f32, usize)>> = (0..dim)
            .map(|d| {
                let mut v: Vec<(f32, usize)> =
                    features.iter().enumerate().map(|(i, f)| (f[d], i)).collect();
                v.sort_by(|a, b| a.0.total_cmp(&b.0));
                v
            })
            .collect();

        for _ in 0..rounds {
            // Find the stump with minimum weighted error.
            let mut best: Option<(Stump, f64)> = None;
            for (d, col) in sorted.iter().enumerate() {
                // err(threshold) for polarity=true starts with all "above".
                // Sweep thresholds at midpoints.
                // err_pol_true = Σ w_i [pred != y]: initially everything is
                // above threshold (threshold below min) → pred = +1.
                let mut err_true: f64 =
                    col.iter().map(|&(_, i)| if ys[i] > 0.0 { 0.0 } else { w[i] }).sum();
                let consider = |best: &mut Option<(Stump, f64)>, stump: Stump, err: f64| {
                    let e = err.clamp(0.0, 1.0);
                    // Use distance from 0.5 (a stump worse than chance is
                    // used with flipped polarity).
                    let (stump, e) = if e > 0.5 {
                        (Stump { polarity: !stump.polarity, ..stump }, 1.0 - e)
                    } else {
                        (stump, e)
                    };
                    if best.as_ref().map(|&(_, be)| e < be).unwrap_or(true) {
                        *best = Some((stump, e));
                    }
                };
                consider(
                    &mut best,
                    Stump { feature: d, threshold: f32::NEG_INFINITY, polarity: true, alpha: 0.0 },
                    err_true,
                );
                for k in 0..col.len() {
                    let (v, i) = col[k];
                    // Moving sample i below the threshold flips its pred
                    // from +1 to -1 under polarity=true.
                    if ys[i] > 0.0 {
                        err_true += w[i];
                    } else {
                        err_true -= w[i];
                    }
                    let next_v = col.get(k + 1).map(|&(nv, _)| nv);
                    if next_v == Some(v) {
                        continue;
                    }
                    let threshold = match next_v {
                        Some(nv) => (v + nv) / 2.0,
                        None => v + 1.0,
                    };
                    consider(
                        &mut best,
                        Stump { feature: d, threshold, polarity: true, alpha: 0.0 },
                        err_true,
                    );
                }
            }
            let Some((mut stump, err)) = best else {
                break; // zero-width feature vectors: nothing to boost on
            };
            let err = err.max(1e-10);
            if err >= 0.5 {
                break; // no weak learner better than chance
            }
            stump.alpha = 0.5 * ((1.0 - err) / err).ln();
            // Reweight.
            let mut z = 0.0;
            for i in 0..n {
                w[i] *= (-stump.alpha * ys[i] * stump.predict(&features[i])).exp();
                z += w[i];
            }
            for wi in &mut w {
                *wi /= z;
            }
            let perfect = err < 1e-9;
            stumps.push(stump);
            if perfect {
                break;
            }
        }
        Self { stumps }
    }

    /// Ensemble margin (positive → class 1).
    pub fn decision(&self, x: &[f32]) -> f64 {
        self.stumps.iter().map(|s| s.alpha * s.predict(x)).sum()
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f32]) -> usize {
        usize::from(self.decision(x) >= 0.0)
    }

    /// Number of weak learners actually kept.
    pub fn rounds(&self) -> usize {
        self.stumps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_threshold_problem_is_one_stump() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let model = AdaBoost::train(&xs, &ys, 10);
        let preds: Vec<usize> = xs.iter().map(|x| model.predict(x)).collect();
        assert_eq!(Metrics::from_predictions(&preds, &ys).accuracy(), 1.0);
        assert_eq!(model.rounds(), 1, "one stump suffices");
    }

    #[test]
    fn boosting_solves_interval_problem() {
        // Class 1 inside [3, 7): needs at least two stumps.
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 / 2.0]).collect();
        let ys: Vec<usize> =
            xs.iter().map(|x| usize::from(x[0] >= 3.0 && x[0] < 7.0)).collect();
        let model = AdaBoost::train(&xs, &ys, 50);
        let preds: Vec<usize> = xs.iter().map(|x| model.predict(x)).collect();
        let acc = Metrics::from_predictions(&preds, &ys).accuracy();
        assert!(acc >= 0.9, "interval accuracy {acc}");
        assert!(model.rounds() >= 2);
    }

    #[test]
    fn noisy_blobs_beat_chance() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let y = rng.random_range(0..2usize);
            let c = if y == 1 { 1.2 } else { -1.2 };
            xs.push(vec![c + rng.random_range(-2.0..2.0), rng.random_range(-1.0..1.0)]);
            ys.push(y);
        }
        let model = AdaBoost::train(&xs, &ys, 40);
        let preds: Vec<usize> = xs.iter().map(|x| model.predict(x)).collect();
        let acc = Metrics::from_predictions(&preds, &ys).accuracy();
        assert!(acc > 0.65, "accuracy {acc}");
    }

    #[test]
    fn inverted_labels_learned_via_polarity() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i < 10)).collect(); // class 1 below
        let model = AdaBoost::train(&xs, &ys, 5);
        let preds: Vec<usize> = xs.iter().map(|x| model.predict(x)).collect();
        assert_eq!(Metrics::from_predictions(&preds, &ys).accuracy(), 1.0);
    }
}
