//! Binary-classification metrics shared by every model and tool.

/// Confusion-matrix based metrics for the binary parallelism task
/// (positive class = parallelisable).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Metrics {
    /// Accumulate predictions against labels.
    pub fn from_predictions(preds: &[usize], labels: &[usize]) -> Self {
        assert_eq!(preds.len(), labels.len(), "prediction/label count mismatch");
        let mut m = Metrics::default();
        for (&p, &y) in preds.iter().zip(labels) {
            m.record(p, y);
        }
        m
    }

    /// Record one prediction. The task is binary, so any nonzero value
    /// saturates to the positive class rather than faulting.
    pub fn record(&mut self, pred: usize, label: usize) {
        match (pred.min(1), label.min(1)) {
            (1, 1) => self.tp += 1,
            (0, 0) => self.tn += 1,
            (1, 0) => self.fp += 1,
            _ => self.fn_ += 1,
        }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision of the positive class.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall of the positive class.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 of the positive class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc {:.1}% | P {:.3} R {:.3} F1 {:.3} | tp {} tn {} fp {} fn {}",
            self.accuracy() * 100.0,
            self.precision(),
            self.recall(),
            self.f1(),
            self.tp,
            self.tn,
            self.fp,
            self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = Metrics::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn mixed_predictions() {
        // preds: tp, fp, fn, tn
        let m = Metrics::from_predictions(&[1, 1, 0, 0], &[1, 0, 1, 0]);
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = Metrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        let all_neg = Metrics::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(all_neg.accuracy(), 1.0);
        assert_eq!(all_neg.precision(), 0.0);
    }

    #[test]
    fn non_binary_saturates_to_positive() {
        let mut m = Metrics::default();
        m.record(2, 1);
        m.record(3, 0);
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
    }
}
