//! Neural Code Comprehension baseline (Ben-Nun et al., NeurIPS'18):
//! inst2vec statement embeddings fed through two stacked LSTMs and a
//! small dense head — no graph structure, sequence order only.

use mvgnn_embed::Inst2Vec;
use mvgnn_nn::{Embedding, Linear, Lstm};
use mvgnn_tensor::init;
use mvgnn_tensor::optim::{clip_grad_norm, Adam};
use mvgnn_tensor::tape::{argmax_rows, Params, Tape};

/// NCC hyperparameters.
#[derive(Debug, Clone)]
pub struct NccConfig {
    /// LSTM hidden width (paper: 200; scaled default for CPU training).
    pub hidden: usize,
    /// Dense layer width (paper: 16).
    pub dense: usize,
    /// Maximum sequence length (longer sequences truncate).
    pub max_len: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Seed for weight init.
    pub seed: u64,
}

impl Default for NccConfig {
    fn default() -> Self {
        Self { hidden: 32, dense: 16, max_len: 48, lr: 0.01, epochs: 12, seed: 0x9cc }
    }
}

/// The NCC model.
pub struct Ncc {
    cfg: NccConfig,
    params: Params,
    embedding: Embedding,
    lstm1: Lstm,
    lstm2: Lstm,
    dense: Linear,
    head: Linear,
}

impl Ncc {
    /// Build with the embedding table initialised from a trained inst2vec
    /// (rows copied; fine-tuned during training, as in the original).
    pub fn new(inst2vec: &Inst2Vec, cfg: NccConfig) -> Self {
        let mut params = Params::new();
        let mut rng = init::rng(cfg.seed);
        let dim = inst2vec.dim();
        let vocab = inst2vec.vocab_size();
        let embedding = Embedding::new(&mut params, "ncc.embed", vocab, dim, &mut rng);
        // Seed the table with inst2vec rows.
        {
            let table = params.data_mut(embedding.table);
            let mut tokens: Vec<&str> = inst2vec.tokens().collect();
            tokens.sort_unstable();
            for tok in tokens {
                let id = inst2vec.id(tok);
                table[id * dim..(id + 1) * dim].copy_from_slice(inst2vec.embed(tok));
            }
        }
        let lstm1 = Lstm::new(&mut params, "ncc.lstm1", dim, cfg.hidden, &mut rng);
        let lstm2 = Lstm::new(&mut params, "ncc.lstm2", cfg.hidden, cfg.hidden, &mut rng);
        let dense = Linear::new(&mut params, "ncc.dense", cfg.hidden, cfg.dense, true, &mut rng);
        let head = Linear::new(&mut params, "ncc.head", cfg.dense, 2, true, &mut rng);
        Self { cfg, params, embedding, lstm1, lstm2, dense, head }
    }

    fn clip_seq<'a>(&self, seq: &'a [usize]) -> &'a [usize] {
        &seq[..seq.len().min(self.cfg.max_len)]
    }

    fn forward_logits(&self, tape: &mut Tape<'_>, seq: &[usize]) -> mvgnn_tensor::tape::Var {
        let xs = self.embedding.forward(tape, seq);
        let (h1, _) = self.lstm1.forward_seq(tape, xs);
        let a1 = tape.relu(h1);
        let (_, last) = self.lstm2.forward_seq(tape, a1);
        let d = self.dense.forward(tape, last);
        let a = tape.relu(d);
        self.head.forward(tape, a)
    }

    /// Train on `(token sequence, label)` pairs; returns per-epoch mean
    /// loss for monitoring.
    pub fn train(&mut self, data: &[(Vec<usize>, usize)]) -> Vec<f32> {
        assert!(!data.is_empty(), "empty training set");
        let mut opt = Adam::new(self.cfg.lr);
        let mut curve = Vec::with_capacity(self.cfg.epochs);
        for _epoch in 0..self.cfg.epochs {
            let mut total = 0.0f32;
            let mut master = mvgnn_tensor::GradStore::zeros_like(&self.params);
            for (seq, label) in data {
                if seq.is_empty() {
                    continue;
                }
                let seq_c: Vec<usize> = self.clip_seq(seq).to_vec();
                let mut tape = Tape::new(&self.params);
                let logits = self.forward_logits(&mut tape, &seq_c);
                let loss = tape.softmax_ce(logits, &[*label], 1.0);
                total += tape.data(loss)[0];
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            clip_grad_norm(&mut master, 5.0);
            opt.step(&mut self.params, &master);
            curve.push(total / data.len() as f32);
        }
        curve
    }

    /// Predict the class of one sequence.
    pub fn predict(&self, seq: &[usize]) -> usize {
        if seq.is_empty() {
            return 1; // majority prior
        }
        let seq_c: Vec<usize> = self.clip_seq(seq).to_vec();
        let mut tape = Tape::new(&self.params);
        let logits = self.forward_logits(&mut tape, &seq_c);
        argmax_rows(tape.data(logits), 1, 2)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};

    fn tiny_inst2vec() -> Inst2Vec {
        let mut m = Module::new("c");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let st = b.const_i64(1);
        b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Add, x, x);
            b.store(a, iv, y);
        });
        b.finish();
        Inst2Vec::train(
            &[&m],
            &Inst2VecConfig { dim: 8, epochs: 2, negatives: 2, lr: 0.05, seed: 2 },
        )
    }

    fn quick_cfg() -> NccConfig {
        NccConfig { hidden: 8, dense: 8, max_len: 12, lr: 0.05, epochs: 40, seed: 3 }
    }

    #[test]
    fn learns_token_presence_rule() {
        // Class by whether token id 2 appears — an easy sequence task.
        let i2v = tiny_inst2vec();
        let data: Vec<(Vec<usize>, usize)> = vec![
            (vec![0, 2, 1], 1),
            (vec![2, 0, 0], 1),
            (vec![1, 1, 2], 1),
            (vec![0, 1, 0], 0),
            (vec![1, 0, 1], 0),
            (vec![0, 0, 1], 0),
        ];
        let mut ncc = Ncc::new(&i2v, quick_cfg());
        let curve = ncc.train(&data);
        assert!(curve.last().unwrap() < &curve[0], "loss should fall: {curve:?}");
        let correct = data.iter().filter(|(s, y)| ncc.predict(s) == *y).count();
        assert!(correct >= 5, "{correct}/6 correct");
    }

    #[test]
    fn truncates_long_sequences() {
        let i2v = tiny_inst2vec();
        let ncc = Ncc::new(&i2v, quick_cfg());
        let long: Vec<usize> = vec![0; 500];
        let _ = ncc.predict(&long); // must not blow up
    }

    #[test]
    fn empty_sequence_has_default() {
        let i2v = tiny_inst2vec();
        let ncc = Ncc::new(&i2v, quick_cfg());
        assert_eq!(ncc.predict(&[]), 1);
    }

    #[test]
    fn embedding_initialised_from_inst2vec() {
        let i2v = tiny_inst2vec();
        let ncc = Ncc::new(&i2v, quick_cfg());
        let id = i2v.id("load");
        let dim = i2v.dim();
        let row = &ncc.params.data(ncc.embedding.table)[id * dim..(id + 1) * dim];
        assert_eq!(row, i2v.embed("load"));
    }
}
