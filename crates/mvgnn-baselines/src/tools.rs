//! Auto-parallelisation tool baselines.
//!
//! Each preserves the *decision-procedure class* of the original tool,
//! which is what produces the Table III accuracy ordering:
//!
//! - [`pluto_like`] — purely static polyhedral-style dependence testing
//!   over affine index expressions (GCD test). Precise on affine nests
//!   (PolyBench), blind to reductions and calls (NPB/BOTS).
//! - [`autopar_like`] — conservative static analysis that additionally
//!   recognises scalar and memory reductions, still rejecting calls and
//!   non-affine accesses.
//! - [`discopop_like`] — the dynamic classifier of `mvgnn-profiler` with
//!   DiscoPoP's practical filters (profitability threshold, call-free
//!   regions), which introduce its characteristic false negatives.

use mvgnn_ir::inst::{BinOp, Inst};
use mvgnn_ir::module::{BlockId, FuncId, LoopId, Module};
use mvgnn_ir::types::{ArrayId, VReg};
use mvgnn_profiler::{classify_loop, DepGraph, LoopRuntime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A tool's verdict on one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolVerdict {
    /// The tool would parallelise the loop.
    Parallel,
    /// The tool refuses.
    NotParallel,
}

impl ToolVerdict {
    /// As the binary label of the evaluation.
    pub fn label(self) -> usize {
        usize::from(self == ToolVerdict::Parallel)
    }
}

/// Affine expression over induction registers, or unanalysable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sym {
    Affine {
        constant: i64,
        /// Coefficient per induction register.
        coeffs: BTreeMap<u32, i64>,
    },
    Unknown,
}

impl Sym {
    fn constant(c: i64) -> Sym {
        Sym::Affine { constant: c, coeffs: BTreeMap::new() }
    }

    fn var(reg: VReg) -> Sym {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(reg.0, 1);
        Sym::Affine { constant: 0, coeffs }
    }

    fn add(&self, other: &Sym, negate: bool) -> Sym {
        match (self, other) {
            (
                Sym::Affine { constant: c1, coeffs: k1 },
                Sym::Affine { constant: c2, coeffs: k2 },
            ) => {
                let sign = if negate { -1 } else { 1 };
                let mut coeffs = k1.clone();
                for (&r, &c) in k2 {
                    *coeffs.entry(r).or_insert(0) += sign * c;
                }
                coeffs.retain(|_, &mut c| c != 0);
                Sym::Affine { constant: c1 + sign * c2, coeffs }
            }
            _ => Sym::Unknown,
        }
    }

    fn mul(&self, other: &Sym) -> Sym {
        match (self, other) {
            (Sym::Affine { constant, coeffs }, rhs) if coeffs.is_empty() => rhs.scale(*constant),
            (lhs, Sym::Affine { constant, coeffs }) if coeffs.is_empty() => lhs.scale(*constant),
            _ => Sym::Unknown,
        }
    }

    fn scale(&self, s: i64) -> Sym {
        match self {
            Sym::Affine { constant, coeffs } => {
                let mut k: BTreeMap<u32, i64> =
                    coeffs.iter().map(|(&r, &c)| (r, c * s)).collect();
                k.retain(|_, &mut c| c != 0);
                Sym::Affine { constant: constant * s, coeffs: k }
            }
            Sym::Unknown => Sym::Unknown,
        }
    }
}

/// One static memory access in a loop body.
#[derive(Debug, Clone)]
struct Access {
    arr: ArrayId,
    index: Sym,
    is_write: bool,
    block: BlockId,
    idx_in_block: usize,
}

/// Static summary of a loop body.
struct LoopSummary {
    accesses: Vec<Access>,
    has_call: bool,
    /// Self-updating registers (`r = r ⊕ x`, r not an induction), split by
    /// commutativity of the update.
    commutative_recs: HashSet<VReg>,
    noncommutative_recs: HashSet<VReg>,
}

fn summarise(module: &Module, func: FuncId, l: LoopId) -> LoopSummary {
    let f = &module.funcs[func.index()];
    let blocks: Vec<BlockId> = f.loop_blocks(l);
    let block_set: HashSet<BlockId> = blocks.iter().copied().collect();
    let inductions: HashSet<VReg> = f.loops.iter().filter_map(|i| i.induction).collect();

    // Multi-def registers (outside induction updates) become Unknown.
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    for (r, inst, _) in f.insts_with_refs(func) {
        let _ = r;
        if let Some(d) = inst.def() {
            *def_count.entry(d).or_insert(0) += 1;
        }
    }

    let mut sym: HashMap<VReg, Sym> = HashMap::new();
    for iv in &inductions {
        sym.insert(*iv, Sym::var(*iv));
    }
    let lookup = |sym: &HashMap<VReg, Sym>, r: VReg| sym.get(&r).cloned().unwrap_or(Sym::Unknown);

    let mut summary = LoopSummary {
        accesses: Vec::new(),
        has_call: false,
        commutative_recs: HashSet::new(),
        noncommutative_recs: HashSet::new(),
    };

    // Walk the whole function in block order so values defined before the
    // loop (bounds, constants, strides) are known; record accesses only
    // inside the loop's blocks.
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let inside = block_set.contains(&bid);
        for (ii, inst) in blk.insts.iter().enumerate() {
            match inst {
                Inst::Const { dst, value }
                    if !inductions.contains(dst) => {
                        let s = value
                            .as_i64()
                            .map(Sym::constant)
                            .unwrap_or(Sym::Unknown);
                        sym.insert(*dst, s);
                    }
                Inst::Copy { dst, src }
                    if !inductions.contains(dst) => {
                        let s = lookup(&sym, *src);
                        sym.insert(*dst, s);
                    }
                Inst::Bin { op, dst, lhs, rhs } => {
                    if inside && (*dst == *lhs || *dst == *rhs) && !inductions.contains(dst) {
                        if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                            summary.commutative_recs.insert(*dst);
                        } else {
                            summary.noncommutative_recs.insert(*dst);
                        }
                    }
                    if !inductions.contains(dst) {
                        let a = lookup(&sym, *lhs);
                        let b = lookup(&sym, *rhs);
                        let s = if def_count.get(dst).copied().unwrap_or(0) > 1 {
                            Sym::Unknown
                        } else {
                            match op {
                                BinOp::Add => a.add(&b, false),
                                BinOp::Sub => a.add(&b, true),
                                BinOp::Mul => a.mul(&b),
                                _ => Sym::Unknown,
                            }
                        };
                        sym.insert(*dst, s);
                    }
                }
                Inst::Un { dst, .. }
                    if !inductions.contains(dst) => {
                        sym.insert(*dst, Sym::Unknown);
                    }
                Inst::Load { dst, arr, idx } => {
                    if inside {
                        summary.accesses.push(Access {
                            arr: *arr,
                            index: lookup(&sym, *idx),
                            is_write: false,
                            block: bid,
                            idx_in_block: ii,
                        });
                    }
                    if !inductions.contains(dst) {
                        sym.insert(*dst, Sym::Unknown);
                    }
                }
                Inst::Store { arr, idx, .. }
                    if inside => {
                        summary.accesses.push(Access {
                            arr: *arr,
                            index: lookup(&sym, *idx),
                            is_write: true,
                            block: bid,
                            idx_in_block: ii,
                        });
                    }
                Inst::Call { dst, .. } => {
                    if inside {
                        summary.has_call = true;
                    }
                    if let Some(d) = dst {
                        sym.insert(*d, Sym::Unknown);
                    }
                }
                _ => {}
            }
        }
    }
    summary
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Does a pair of accesses conflict across iterations of the loop whose
/// induction register is `iv`? Conservative: `true` unless provably safe.
fn conflicts(iv: VReg, a: &Access, b: &Access) -> bool {
    let (Sym::Affine { constant: c1, coeffs: k1 }, Sym::Affine { constant: c2, coeffs: k2 }) =
        (&a.index, &b.index)
    else {
        return true; // unanalysable index
    };
    let a_iv = k1.get(&iv.0).copied().unwrap_or(0);
    let b_iv = k2.get(&iv.0).copied().unwrap_or(0);
    // Remaining symbols (outer/inner loop ivs) must match coefficient-wise;
    // otherwise be conservative.
    let strip = |k: &BTreeMap<u32, i64>| -> BTreeMap<u32, i64> {
        k.iter().filter(|&(&r, _)| r != iv.0).map(|(&r, &c)| (r, c)).collect()
    };
    if strip(k1) != strip(k2) {
        return true;
    }
    let dc = c2 - c1;
    match (a_iv, b_iv) {
        (0, 0) => dc == 0, // same fixed cell touched every iteration
        (x, y) if x == y => {
            // a(i1 - i2) = dc: carried iff a nonzero distance exists.
            dc != 0 && dc % x == 0
        }
        (x, y) => {
            // x·i1 − y·i2 = dc solvable (GCD test) — conservative on
            // distinct coefficients.
            let g = gcd(x, y);
            g != 0 && dc % g == 0
        }
    }
}

/// Memory reduction chains: stores whose value flows through a
/// commutative op from a load of the same array and index register in
/// the same block (the classic `a[x] = a[x] ⊕ v`).
fn reduction_stores(module: &Module, func: FuncId, l: LoopId) -> HashSet<(BlockId, usize)> {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<BlockId> = f.loop_blocks(l).into_iter().collect();
    // Single-def constant registers (front-ends emit one per literal).
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    let mut const_val: HashMap<VReg, mvgnn_ir::types::Value> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
            if let Inst::Const { dst, value } = inst {
                const_val.insert(*dst, *value);
            }
        }
    }
    const_val.retain(|r, _| def_count.get(r) == Some(&1));
    let mut out = HashSet::new();
    for (bi, blk) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if !blocks.contains(&bid) {
            continue;
        }
        for (si, inst) in blk.insts.iter().enumerate() {
            let Inst::Store { arr, idx, src } = inst else { continue };
            let mut reduction = false;
            for prev in blk.insts[..si].iter().rev() {
                if prev.def() == Some(*src) {
                    if let Inst::Bin { op, lhs, rhs, .. } = prev {
                        if matches!(op, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max) {
                            reduction = blk.insts[..si].iter().any(|p| {
                                matches!(p, Inst::Load { dst, arr: la, idx: li }
                                    if (dst == lhs || dst == rhs) && la == arr
                                        && (li == idx
                                            || matches!(
                                                (const_val.get(li), const_val.get(idx)),
                                                (Some(x), Some(y)) if x == y)))
                            });
                        }
                    }
                    break;
                }
            }
            if reduction {
                out.insert((bid, si));
            }
        }
    }
    out
}

/// Pluto-like static verdict: affine dependence testing, no reduction
/// support, rejects calls and scalar recurrences.
pub fn pluto_like(module: &Module, func: FuncId, l: LoopId) -> ToolVerdict {
    let f = &module.funcs[func.index()];
    let Some(iv) = f.loops[l.index()].induction else {
        return ToolVerdict::NotParallel; // non-counted loop
    };
    let s = summarise(module, func, l);
    if s.has_call || !s.commutative_recs.is_empty() || !s.noncommutative_recs.is_empty() {
        return ToolVerdict::NotParallel;
    }
    for (i, a) in s.accesses.iter().enumerate() {
        for b in &s.accesses[i..] {
            if a.arr != b.arr || (!a.is_write && !b.is_write) {
                continue;
            }
            if conflicts(iv, a, b) {
                return ToolVerdict::NotParallel;
            }
        }
    }
    ToolVerdict::Parallel
}

/// AutoPar-like static verdict: like Pluto but accepts commutative scalar
/// recurrences and memory reduction chains.
pub fn autopar_like(module: &Module, func: FuncId, l: LoopId) -> ToolVerdict {
    let f = &module.funcs[func.index()];
    let Some(iv) = f.loops[l.index()].induction else {
        return ToolVerdict::NotParallel;
    };
    let s = summarise(module, func, l);
    if !s.noncommutative_recs.is_empty() {
        return ToolVerdict::NotParallel;
    }
    // AutoPar inlines trivial pure callees; anything else is opaque.
    if s.has_call && has_call_failing(module, func, l, is_simple_pure) {
        return ToolVerdict::NotParallel;
    }
    let red = reduction_stores(module, func, l);
    // Arrays that are targets of reduction stores: conflicts on them are
    // tolerated (implemented as an OpenMP reduction/atomic).
    let red_arrays: HashSet<ArrayId> = s
        .accesses
        .iter()
        .filter(|a| a.is_write && red.contains(&(a.block, a.idx_in_block)))
        .map(|a| a.arr)
        .collect();
    for (i, a) in s.accesses.iter().enumerate() {
        for b in &s.accesses[i..] {
            if a.arr != b.arr || (!a.is_write && !b.is_write) {
                continue;
            }
            if red_arrays.contains(&a.arr) {
                continue;
            }
            if conflicts(iv, a, b) {
                return ToolVerdict::NotParallel;
            }
        }
    }
    ToolVerdict::Parallel
}

/// One-level purity: a function is "simple pure" when it neither touches
/// memory nor calls anything (recursion counts as a call). Static tools
/// can reason about such callees by inlining.
fn is_simple_pure(module: &Module, callee: mvgnn_ir::module::FuncId) -> bool {
    module.funcs[callee.index()].insts_with_refs(callee).all(|(_, inst, _)| {
        !matches!(inst, Inst::Load { .. } | Inst::Store { .. } | Inst::Call { .. })
    })
}

/// Transitive write-freedom over the call graph (optimistic fixpoint:
/// cycles — recursion — do not themselves make a function write). The
/// *dynamic* tool can bound side effects this way because it observes
/// the whole execution.
fn is_store_free(module: &Module, callee: mvgnn_ir::module::FuncId) -> bool {
    fn rec(
        module: &Module,
        f: mvgnn_ir::module::FuncId,
        visiting: &mut HashSet<u32>,
    ) -> bool {
        if !visiting.insert(f.0) {
            return true; // optimistic on cycles
        }
        let ok = module.funcs[f.index()].insts_with_refs(f).all(|(_, inst, _)| match inst {
            Inst::Store { .. } => false,
            Inst::Call { func: g, .. } => rec(module, *g, visiting),
            _ => true,
        });
        visiting.remove(&f.0);
        ok
    }
    rec(module, callee, &mut HashSet::new())
}

/// Calls inside the loop that the given purity rule does not excuse.
fn has_call_failing(
    module: &Module,
    func: FuncId,
    l: LoopId,
    mut ok: impl FnMut(&Module, mvgnn_ir::module::FuncId) -> bool,
) -> bool {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<BlockId> = f.loop_blocks(l).into_iter().collect();
    f.insts_with_refs(func).any(|(r, inst, _)| {
        blocks.contains(&r.block)
            && matches!(inst, Inst::Call { func: callee, .. } if !ok(module, *callee))
    })
}

/// DiscoPoP-like dynamic verdict: the profiler's classification plus the
/// tool's practical filters — a profitability threshold (tiny loops are
/// not worth parallelising) and opacity of calls whose side effects the
/// CU analysis cannot bound (simple pure callees are fine; recursive or
/// memory-touching ones are not).
pub fn discopop_like(
    module: &Module,
    func: FuncId,
    l: LoopId,
    deps: &DepGraph,
    runtime: &LoopRuntime,
) -> ToolVerdict {
    if runtime.iterations < 3 {
        return ToolVerdict::NotParallel; // not profitable
    }
    if has_call_failing(module, func, l, is_store_free) {
        return ToolVerdict::NotParallel;
    }
    if classify_loop(module, func, l, deps).is_parallelizable() {
        ToolVerdict::Parallel
    } else {
        ToolVerdict::NotParallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_dataset::{build_kernel, KernelKind};
    use mvgnn_profiler::profile_module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel(kind: KernelKind) -> (Module, FuncId, Vec<(LoopId, mvgnn_dataset::PatternKind)>) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Module::new("t");
        let (f, loops) = build_kernel(&mut m, kind, 0, 12, &mut rng);
        (m, f, loops)
    }

    #[test]
    fn pluto_accepts_affine_doall() {
        let (m, f, loops) = kernel(KernelKind::Triad);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::Parallel);
        let (m2, f2, loops2) = kernel(KernelKind::Stencil3);
        assert_eq!(pluto_like(&m2, f2, loops2[0].0), ToolVerdict::Parallel);
    }

    #[test]
    fn pluto_rejects_serial_and_reductions() {
        let (m, f, loops) = kernel(KernelKind::PrefixSum);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel);
        // Reductions are parallelisable in the label set but Pluto says no
        // — the characteristic false negative.
        let (m2, f2, loops2) = kernel(KernelKind::SumReduction);
        assert_eq!(pluto_like(&m2, f2, loops2[0].0), ToolVerdict::NotParallel);
    }

    #[test]
    fn pluto_rejects_calls_and_indirect() {
        let (m, f, loops) = kernel(KernelKind::TaskSpawn);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel);
        let (m2, f2, loops2) = kernel(KernelKind::IndirectGather);
        // The gather loop (second) has an unanalysable load index... the
        // read is non-affine but reads don't conflict with reads; the only
        // write is out[i] (affine). Pluto accepts read-side indirection.
        assert_eq!(pluto_like(&m2, f2, loops2[1].0), ToolVerdict::Parallel);
        // Scatter with indirect *write* index must be rejected.
        let (m3, f3, loops3) = kernel(KernelKind::ScatterConflict);
        assert_eq!(pluto_like(&m3, f3, loops3[1].0), ToolVerdict::NotParallel);
    }

    #[test]
    fn autopar_accepts_reductions_pluto_rejects() {
        for kind in [KernelKind::SumReduction, KernelKind::DotProduct, KernelKind::MaxReduction] {
            let (m, f, loops) = kernel(kind);
            assert_eq!(autopar_like(&m, f, loops[0].0), ToolVerdict::Parallel, "{kind:?}");
            assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel, "{kind:?}");
        }
    }

    #[test]
    fn autopar_still_rejects_true_serial() {
        for kind in [KernelKind::PrefixSum, KernelKind::Recurrence, KernelKind::Stencil3InPlace] {
            let (m, f, loops) = kernel(kind);
            assert_eq!(autopar_like(&m, f, loops[0].0), ToolVerdict::NotParallel, "{kind:?}");
        }
    }

    #[test]
    fn discopop_matches_ground_truth_on_large_call_free_loops() {
        for kind in [KernelKind::VectorMap, KernelKind::SumReduction, KernelKind::PrefixSum] {
            let (m, f, loops) = kernel(kind);
            let res = profile_module(&m, f, &[]).unwrap();
            let (l, pat) = loops[0];
            let v = discopop_like(&m, f, l, &res.deps, &res.loops[&(f, l)]);
            assert_eq!(v.label(), usize::from(pat.is_parallelizable()), "{kind:?}");
        }
    }

    #[test]
    fn discopop_sees_through_store_free_recursion() {
        // DiscoPoP's dynamic analysis identifies BOTS-style task loops;
        // the recursive fib callee writes nothing shared.
        let (m, f, loops) = kernel(KernelKind::TaskSpawn);
        let res = profile_module(&m, f, &[]).unwrap();
        let (l, pat) = loops[0];
        assert!(pat.is_parallelizable());
        let v = discopop_like(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert_eq!(v, ToolVerdict::Parallel, "store-free recursion is transparent");
        // The static tools stay conservative on recursion.
        assert_eq!(autopar_like(&m, f, l), ToolVerdict::NotParallel);
        assert_eq!(pluto_like(&m, f, l), ToolVerdict::NotParallel);
    }

    #[test]
    fn verdict_label_mapping() {
        assert_eq!(ToolVerdict::Parallel.label(), 1);
        assert_eq!(ToolVerdict::NotParallel.label(), 0);
    }
}
