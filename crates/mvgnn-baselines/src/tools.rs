//! Auto-parallelisation tool baselines.
//!
//! Each preserves the *decision-procedure class* of the original tool,
//! which is what produces the Table III accuracy ordering:
//!
//! - [`pluto_like`] — purely static polyhedral-style dependence testing
//!   over affine index expressions (GCD test). Precise on affine nests
//!   (PolyBench), blind to reductions and calls (NPB/BOTS).
//! - [`autopar_like`] — conservative static analysis that additionally
//!   recognises scalar and memory reductions, still rejecting calls and
//!   non-affine accesses.
//! - [`discopop_like`] — the dynamic classifier of `mvgnn-profiler` with
//!   DiscoPoP's practical filters (profitability threshold, call-free
//!   regions), which introduce its characteristic false negatives.

use mvgnn_analyze::{conflicts, reduction_store_sites, summarize_loop};
use mvgnn_ir::inst::Inst;
use mvgnn_ir::module::{BlockId, FuncId, LoopId, Module};
use mvgnn_ir::types::ArrayId;
use mvgnn_profiler::{classify_loop, DepGraph, LoopRuntime};
use std::collections::HashSet;

/// A tool's verdict on one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolVerdict {
    /// The tool would parallelise the loop.
    Parallel,
    /// The tool refuses.
    NotParallel,
}

impl ToolVerdict {
    /// As the binary label of the evaluation.
    pub fn label(self) -> usize {
        usize::from(self == ToolVerdict::Parallel)
    }
}

/// Pluto-like static verdict: affine dependence testing, no reduction
/// support, rejects calls and scalar recurrences.
pub fn pluto_like(module: &Module, func: FuncId, l: LoopId) -> ToolVerdict {
    let f = &module.funcs[func.index()];
    let Some(iv) = f.loops[l.index()].induction else {
        return ToolVerdict::NotParallel; // non-counted loop
    };
    let s = summarize_loop(module, func, l);
    if s.has_call || !s.commutative_recs.is_empty() || !s.noncommutative_recs.is_empty() {
        return ToolVerdict::NotParallel;
    }
    for (i, a) in s.accesses.iter().enumerate() {
        for b in &s.accesses[i..] {
            if a.arr != b.arr || (!a.is_write && !b.is_write) {
                continue;
            }
            if conflicts(iv, a, b) {
                return ToolVerdict::NotParallel;
            }
        }
    }
    ToolVerdict::Parallel
}

/// AutoPar-like static verdict: like Pluto but accepts commutative scalar
/// recurrences and memory reduction chains.
pub fn autopar_like(module: &Module, func: FuncId, l: LoopId) -> ToolVerdict {
    let f = &module.funcs[func.index()];
    let Some(iv) = f.loops[l.index()].induction else {
        return ToolVerdict::NotParallel;
    };
    let s = summarize_loop(module, func, l);
    if !s.noncommutative_recs.is_empty() {
        return ToolVerdict::NotParallel;
    }
    // AutoPar inlines trivial pure callees; anything else is opaque.
    if s.has_call && has_call_failing(module, func, l, is_simple_pure) {
        return ToolVerdict::NotParallel;
    }
    let red = reduction_store_sites(module, func, l);
    // Arrays that are targets of reduction stores: conflicts on them are
    // tolerated (implemented as an OpenMP reduction/atomic).
    let red_arrays: HashSet<ArrayId> = s
        .accesses
        .iter()
        .filter(|a| a.is_write && red.contains(&(a.block, a.idx_in_block)))
        .map(|a| a.arr)
        .collect();
    for (i, a) in s.accesses.iter().enumerate() {
        for b in &s.accesses[i..] {
            if a.arr != b.arr || (!a.is_write && !b.is_write) {
                continue;
            }
            if red_arrays.contains(&a.arr) {
                continue;
            }
            if conflicts(iv, a, b) {
                return ToolVerdict::NotParallel;
            }
        }
    }
    ToolVerdict::Parallel
}

/// One-level purity: a function is "simple pure" when it neither touches
/// memory nor calls anything (recursion counts as a call). Static tools
/// can reason about such callees by inlining.
fn is_simple_pure(module: &Module, callee: mvgnn_ir::module::FuncId) -> bool {
    module.funcs[callee.index()].insts_with_refs(callee).all(|(_, inst, _)| {
        !matches!(inst, Inst::Load { .. } | Inst::Store { .. } | Inst::Call { .. })
    })
}

/// Transitive write-freedom over the call graph (optimistic fixpoint:
/// cycles — recursion — do not themselves make a function write). The
/// *dynamic* tool can bound side effects this way because it observes
/// the whole execution.
fn is_store_free(module: &Module, callee: mvgnn_ir::module::FuncId) -> bool {
    fn rec(
        module: &Module,
        f: mvgnn_ir::module::FuncId,
        visiting: &mut HashSet<u32>,
    ) -> bool {
        if !visiting.insert(f.0) {
            return true; // optimistic on cycles
        }
        let ok = module.funcs[f.index()].insts_with_refs(f).all(|(_, inst, _)| match inst {
            Inst::Store { .. } => false,
            Inst::Call { func: g, .. } => rec(module, *g, visiting),
            _ => true,
        });
        visiting.remove(&f.0);
        ok
    }
    rec(module, callee, &mut HashSet::new())
}

/// Calls inside the loop that the given purity rule does not excuse.
fn has_call_failing(
    module: &Module,
    func: FuncId,
    l: LoopId,
    mut ok: impl FnMut(&Module, mvgnn_ir::module::FuncId) -> bool,
) -> bool {
    let f = &module.funcs[func.index()];
    let blocks: HashSet<BlockId> = f.loop_blocks(l).into_iter().collect();
    f.insts_with_refs(func).any(|(r, inst, _)| {
        blocks.contains(&r.block)
            && matches!(inst, Inst::Call { func: callee, .. } if !ok(module, *callee))
    })
}

/// DiscoPoP-like dynamic verdict: the profiler's classification plus the
/// tool's practical filters — a profitability threshold (tiny loops are
/// not worth parallelising) and opacity of calls whose side effects the
/// CU analysis cannot bound (simple pure callees are fine; recursive or
/// memory-touching ones are not).
pub fn discopop_like(
    module: &Module,
    func: FuncId,
    l: LoopId,
    deps: &DepGraph,
    runtime: &LoopRuntime,
) -> ToolVerdict {
    if runtime.iterations < 3 {
        return ToolVerdict::NotParallel; // not profitable
    }
    if has_call_failing(module, func, l, is_store_free) {
        return ToolVerdict::NotParallel;
    }
    if classify_loop(module, func, l, deps).is_parallelizable() {
        ToolVerdict::Parallel
    } else {
        ToolVerdict::NotParallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_dataset::{build_kernel, KernelKind};
    use mvgnn_profiler::profile_module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel(kind: KernelKind) -> (Module, FuncId, Vec<(LoopId, mvgnn_dataset::PatternKind)>) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Module::new("t");
        let (f, loops) = build_kernel(&mut m, kind, 0, 12, &mut rng);
        (m, f, loops)
    }

    #[test]
    fn pluto_accepts_affine_doall() {
        let (m, f, loops) = kernel(KernelKind::Triad);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::Parallel);
        let (m2, f2, loops2) = kernel(KernelKind::Stencil3);
        assert_eq!(pluto_like(&m2, f2, loops2[0].0), ToolVerdict::Parallel);
    }

    #[test]
    fn pluto_rejects_serial_and_reductions() {
        let (m, f, loops) = kernel(KernelKind::PrefixSum);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel);
        // Reductions are parallelisable in the label set but Pluto says no
        // — the characteristic false negative.
        let (m2, f2, loops2) = kernel(KernelKind::SumReduction);
        assert_eq!(pluto_like(&m2, f2, loops2[0].0), ToolVerdict::NotParallel);
    }

    #[test]
    fn pluto_rejects_calls_and_indirect() {
        let (m, f, loops) = kernel(KernelKind::TaskSpawn);
        assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel);
        let (m2, f2, loops2) = kernel(KernelKind::IndirectGather);
        // The gather loop (second) has an unanalysable load index... the
        // read is non-affine but reads don't conflict with reads; the only
        // write is out[i] (affine). Pluto accepts read-side indirection.
        assert_eq!(pluto_like(&m2, f2, loops2[1].0), ToolVerdict::Parallel);
        // Scatter with indirect *write* index must be rejected.
        let (m3, f3, loops3) = kernel(KernelKind::ScatterConflict);
        assert_eq!(pluto_like(&m3, f3, loops3[1].0), ToolVerdict::NotParallel);
    }

    #[test]
    fn autopar_accepts_reductions_pluto_rejects() {
        for kind in [KernelKind::SumReduction, KernelKind::DotProduct, KernelKind::MaxReduction] {
            let (m, f, loops) = kernel(kind);
            assert_eq!(autopar_like(&m, f, loops[0].0), ToolVerdict::Parallel, "{kind:?}");
            assert_eq!(pluto_like(&m, f, loops[0].0), ToolVerdict::NotParallel, "{kind:?}");
        }
    }

    #[test]
    fn autopar_still_rejects_true_serial() {
        for kind in [KernelKind::PrefixSum, KernelKind::Recurrence, KernelKind::Stencil3InPlace] {
            let (m, f, loops) = kernel(kind);
            assert_eq!(autopar_like(&m, f, loops[0].0), ToolVerdict::NotParallel, "{kind:?}");
        }
    }

    #[test]
    fn discopop_matches_ground_truth_on_large_call_free_loops() {
        for kind in [KernelKind::VectorMap, KernelKind::SumReduction, KernelKind::PrefixSum] {
            let (m, f, loops) = kernel(kind);
            let res = profile_module(&m, f, &[]).unwrap();
            let (l, pat) = loops[0];
            let v = discopop_like(&m, f, l, &res.deps, &res.loops[&(f, l)]);
            assert_eq!(v.label(), usize::from(pat.is_parallelizable()), "{kind:?}");
        }
    }

    #[test]
    fn discopop_sees_through_store_free_recursion() {
        // DiscoPoP's dynamic analysis identifies BOTS-style task loops;
        // the recursive fib callee writes nothing shared.
        let (m, f, loops) = kernel(KernelKind::TaskSpawn);
        let res = profile_module(&m, f, &[]).unwrap();
        let (l, pat) = loops[0];
        assert!(pat.is_parallelizable());
        let v = discopop_like(&m, f, l, &res.deps, &res.loops[&(f, l)]);
        assert_eq!(v, ToolVerdict::Parallel, "store-free recursion is transparent");
        // The static tools stay conservative on recursion.
        assert_eq!(autopar_like(&m, f, l), ToolVerdict::NotParallel);
        assert_eq!(pluto_like(&m, f, l), ToolVerdict::NotParallel);
    }

    #[test]
    fn verdict_label_mapping() {
        assert_eq!(ToolVerdict::Parallel.label(), 1);
        assert_eq!(ToolVerdict::NotParallel.label(), 0);
    }
}
