//! Linear SVM trained with Pegasos (primal sub-gradient descent).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Linear support-vector classifier with an explicit bias term.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f32>,
    bias: f32,
    /// Per-feature standardisation (mean, inv-std) fitted on training data.
    norm: Vec<(f32, f32)>,
}

impl LinearSvm {
    /// Train with Pegasos: `lambda` regularises, `epochs` passes.
    pub fn train(features: &[Vec<f32>], labels: &[usize], lambda: f32, epochs: usize, seed: u64) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let dim = features[0].len();
        let norm = fit_norm(features, dim);
        let xs: Vec<Vec<f32>> = features.iter().map(|f| apply_norm(f, &norm)).collect();
        let ys: Vec<f32> = labels.iter().map(|&y| if y == 1 { 1.0 } else { -1.0 }).collect();

        let mut w = vec![0.0f32; dim];
        let mut b = 0.0f32;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 1u64;
        for _ in 0..epochs {
            for _ in 0..xs.len() {
                let i = rng.random_range(0..xs.len());
                let eta = 1.0 / (lambda * t as f32);
                t += 1;
                let margin = ys[i] * (dot(&w, &xs[i]) + b);
                // Regularisation shrink.
                let shrink = 1.0 - eta * lambda;
                for wv in &mut w {
                    *wv *= shrink;
                }
                if margin < 1.0 {
                    for (wv, &x) in w.iter_mut().zip(&xs[i]) {
                        *wv += eta * ys[i] * x;
                    }
                    b += eta * ys[i];
                }
            }
        }
        Self { weights: w, bias: b, norm }
    }

    /// Signed decision value.
    pub fn decision(&self, features: &[f32]) -> f32 {
        let x = apply_norm(features, &self.norm);
        dot(&self.weights, &x) + self.bias
    }

    /// Predicted class (1 = parallelisable).
    pub fn predict(&self, features: &[f32]) -> usize {
        usize::from(self.decision(features) >= 0.0)
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn fit_norm(features: &[Vec<f32>], dim: usize) -> Vec<(f32, f32)> {
    let n = features.len() as f32;
    let mut norm = vec![(0.0f32, 1.0f32); dim];
    for d in 0..dim {
        let mean: f32 = features.iter().map(|f| f[d]).sum::<f32>() / n;
        let var: f32 = features.iter().map(|f| (f[d] - mean).powi(2)).sum::<f32>() / n;
        let inv_std = if var > 1e-12 { 1.0 / var.sqrt() } else { 1.0 };
        norm[d] = (mean, inv_std);
    }
    norm
}

pub(crate) fn apply_norm(f: &[f32], norm: &[(f32, f32)]) -> Vec<f32> {
    f.iter().zip(norm).map(|(&x, &(m, s))| (x - m) * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn blobs(n: usize, sep: f32, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y = rng.random_range(0..2usize);
            let cx = if y == 1 { sep } else { -sep };
            xs.push(vec![
                cx + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (xs, ys) = blobs(200, 3.0, 1);
        let svm = LinearSvm::train(&xs, &ys, 0.01, 20, 7);
        let preds: Vec<usize> = xs.iter().map(|x| svm.predict(x)).collect();
        let m = Metrics::from_predictions(&preds, &ys);
        assert!(m.accuracy() > 0.97, "{m}");
    }

    #[test]
    fn overlapping_blobs_stay_above_chance() {
        let (xs, ys) = blobs(400, 0.7, 2);
        let svm = LinearSvm::train(&xs, &ys, 0.01, 20, 7);
        let preds: Vec<usize> = xs.iter().map(|x| svm.predict(x)).collect();
        let m = Metrics::from_predictions(&preds, &ys);
        assert!(m.accuracy() > 0.6, "{m}");
        assert!(m.accuracy() < 1.0, "overlap should prevent perfection");
    }

    #[test]
    fn decision_is_monotone_along_weight_direction() {
        let (xs, ys) = blobs(100, 3.0, 3);
        let svm = LinearSvm::train(&xs, &ys, 0.01, 10, 7);
        let low = svm.decision(&[-5.0, 0.0]);
        let high = svm.decision(&[5.0, 0.0]);
        assert!(high > low);
    }

    #[test]
    fn standardisation_handles_constant_features() {
        let xs = vec![vec![1.0, 5.0], vec![-1.0, 5.0], vec![1.2, 5.0], vec![-0.8, 5.0]];
        let ys = vec![1, 0, 1, 0];
        let svm = LinearSvm::train(&xs, &ys, 0.05, 30, 1);
        assert_eq!(svm.predict(&[1.0, 5.0]), 1);
        assert_eq!(svm.predict(&[-1.0, 5.0]), 0);
    }
}
