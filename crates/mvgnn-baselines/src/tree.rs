//! CART decision tree with Gini impurity.

/// A binary decision tree over f32 feature vectors.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Child index when `x[feature] <= threshold`.
        left: usize,
        /// Child index otherwise.
        right: usize,
    },
}

/// Tree-growth hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 8, min_samples: 4 }
    }
}

fn gini(counts: &[usize; 2]) -> f64 {
    let n = (counts[0] + counts[1]) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p0 = counts[0] as f64 / n;
    let p1 = counts[1] as f64 / n;
    1.0 - p0 * p0 - p1 * p1
}

impl DecisionTree {
    /// Grow a tree on the training set.
    pub fn train(features: &[Vec<f32>], labels: &[usize], cfg: TreeConfig) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let idx: Vec<usize> = (0..features.len()).collect();
        let mut nodes = Vec::new();
        Self::grow(features, labels, &idx, cfg, 0, &mut nodes);
        Self { nodes }
    }

    fn majority(labels: &[usize], idx: &[usize]) -> usize {
        let pos = idx.iter().filter(|&&i| labels[i] == 1).count();
        usize::from(pos * 2 >= idx.len())
    }

    fn grow(
        features: &[Vec<f32>],
        labels: &[usize],
        idx: &[usize],
        cfg: TreeConfig,
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| labels[i] == 1).count();
        let pure = pos == 0 || pos == idx.len();
        if pure || depth >= cfg.max_depth || idx.len() < cfg.min_samples {
            let id = nodes.len();
            nodes.push(Node::Leaf { class: Self::majority(labels, idx) });
            return id;
        }
        // Best split by Gini gain over candidate thresholds (midpoints of
        // sorted unique values).
        let dim = features[0].len();
        let parent_counts = [idx.len() - pos, pos];
        let parent_gini = gini(&parent_counts);
        let mut best: Option<(usize, f32, f64)> = None;
        #[allow(clippy::needless_range_loop)]
        for d in 0..dim {
            let mut vals: Vec<(f32, usize)> =
                idx.iter().map(|&i| (features[i][d], labels[i])).collect();
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left = [0usize; 2];
            let mut right = parent_counts;
            for w in 0..vals.len() - 1 {
                let (v, y) = vals[w];
                left[y] += 1;
                right[y] -= 1;
                let next_v = vals[w + 1].0;
                if v == next_v {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = (vals.len() - w - 1) as f64;
                let n = vals.len() as f64;
                let score = parent_gini - (nl / n) * gini(&left) - (nr / n) * gini(&right);
                // Accept zero-gain splits too: on XOR-like data the first
                // split gains nothing but enables pure children below.
                if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                    best = Some((d, (v + next_v) / 2.0, score));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            let id = nodes.len();
            nodes.push(Node::Leaf { class: Self::majority(labels, idx) });
            return id;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| features[i][feature] <= threshold);
        debug_assert!(!li.is_empty() && !ri.is_empty());
        let id = nodes.len();
        nodes.push(Node::Leaf { class: 0 }); // placeholder
        let left = Self::grow(features, labels, &li, cfg, depth + 1, nodes);
        let right = Self::grow(features, labels, &ri, cfg, depth + 1, nodes);
        nodes[id] = Node::Split { feature, threshold, left, right };
        id
    }

    /// Predicted class.
    pub fn predict(&self, features: &[f32]) -> usize {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    cur = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn axis_aligned_split_is_learned_exactly() {
        let xs: Vec<Vec<f32>> =
            (0..40).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let ys: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let tree = DecisionTree::train(&xs, &ys, TreeConfig::default());
        let preds: Vec<usize> = xs.iter().map(|x| tree.predict(x)).collect();
        assert_eq!(Metrics::from_predictions(&preds, &ys).accuracy(), 1.0);
        assert!(tree.size() >= 3);
    }

    #[test]
    fn learns_xor_with_bounded_depth() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ];
        let ys = vec![0, 1, 1, 0, 0, 1, 1, 0];
        let tree = DecisionTree::train(&xs, &ys, TreeConfig { max_depth: 6, min_samples: 1 });
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y, "at {x:?}");
        }
    }

    #[test]
    fn depth_limit_caps_tree() {
        let xs: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let ys: Vec<usize> = (0..64).map(|i| (i / 2) % 2).collect(); // very jagged
        let shallow = DecisionTree::train(&xs, &ys, TreeConfig { max_depth: 1, min_samples: 1 });
        let deep = DecisionTree::train(&xs, &ys, TreeConfig { max_depth: 10, min_samples: 1 });
        assert!(shallow.size() < deep.size());
        assert!(shallow.size() <= 3);
    }

    #[test]
    fn pure_node_stops_early() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1, 1, 1];
        let tree = DecisionTree::train(&xs, &ys, TreeConfig::default());
        assert_eq!(tree.size(), 1);
        assert_eq!(tree.predict(&[99.0]), 1);
    }
}
