//! Pins the static tool verdicts that drive the Table III ordering.
//!
//! The affine machinery behind `pluto_like`/`autopar_like` lives in
//! `mvgnn-analyze`; this test freezes the verdict of both tools on every
//! kernel template at several seeds so any refactor of the shared
//! analyses is provably behaviour-preserving (the expected strings were
//! captured from the pre-refactor implementation).

use mvgnn_baselines::{autopar_like, pluto_like, ToolVerdict};
use mvgnn_dataset::{build_kernel, KernelKind};
use mvgnn_ir::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One line per (kernel, seed): `kind seed pluto-verdicts autopar-verdicts`
/// with one `P`/`.` char per loop of the kernel, in loop order.
fn verdict_table(seeds: &[u64], size: i64) -> String {
    let mut out = String::new();
    for kind in KernelKind::ALL {
        for &seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Module::new("pins");
            let (f, loops) = build_kernel(&mut m, kind, 0, size, &mut rng);
            let verdicts = |tool: &dyn Fn(&Module, _, _) -> ToolVerdict| -> String {
                loops
                    .iter()
                    .map(|(l, _)| if tool(&m, f, *l) == ToolVerdict::Parallel { 'P' } else { '.' })
                    .collect()
            };
            let p = verdicts(&|m, f, l| pluto_like(m, f, l));
            let a = verdicts(&|m, f, l| autopar_like(m, f, l));
            out.push_str(&format!("{kind:?} {seed} {p} {a}\n"));
        }
    }
    out
}

#[test]
fn pluto_and_autopar_verdicts_are_pinned() {
    let actual = verdict_table(&[4, 16, 77], 12);
    assert_eq!(actual, EXPECTED, "static tool verdicts drifted:\n{actual}");
}

const EXPECTED: &str = "\
VectorMap 4 P P
VectorMap 16 P P
VectorMap 77 P P
Triad 4 P P
Triad 16 P P
Triad 77 P P
DotProduct 4 . P
DotProduct 16 . P
DotProduct 77 . P
SumReduction 4 . P
SumReduction 16 . P
SumReduction 77 . P
MaxReduction 4 . P
MaxReduction 16 . P
MaxReduction 77 . P
Stencil3 4 P P
Stencil3 16 P P
Stencil3 77 P P
Stencil3InPlace 4 . .
Stencil3InPlace 16 . .
Stencil3InPlace 77 . .
PrefixSum 4 . .
PrefixSum 16 . .
PrefixSum 77 . .
Recurrence 4 . .
Recurrence 16 . .
Recurrence 77 . .
MatVec 4 P. PP
MatVec 16 P. PP
MatVec 77 P. PP
MatMul 4 PP. PPP
MatMul 16 PP. PPP
MatMul 77 PP. PPP
Jacobi2d 4 PP PP
Jacobi2d 16 PP PP
Jacobi2d 77 PP PP
GaussSeidel 4 .. ..
GaussSeidel 16 .. ..
GaussSeidel 77 .. ..
Histogram 4 P. PP
Histogram 16 P. PP
Histogram 77 P. PP
IndirectGather 4 PP PP
IndirectGather 16 PP PP
IndirectGather 77 PP PP
ScatterConflict 4 P. P.
ScatterConflict 16 P. P.
ScatterConflict 77 P. P.
FirFilter 4 P P
FirFilter 16 P P
FirFilter 77 P P
Transpose 4 PP PP
Transpose 16 PP PP
Transpose 77 PP PP
TriangularSolve 4 P.. P.P
TriangularSolve 16 P.. P.P
TriangularSolve 77 P.. P.P
TaskSpawn 4 . .
TaskSpawn 16 . .
TaskSpawn 77 . .
CallDoAll 4 . P
CallDoAll 16 . P
CallDoAll 77 . P
TinyDoAll 4 P P
TinyDoAll 16 P P
TinyDoAll 77 P P
ScalarSumReduction 4 . P
ScalarSumReduction 16 . P
ScalarSumReduction 77 . P
NonCommutativeScalar 4 . .
NonCommutativeScalar 16 . .
NonCommutativeScalar 77 . .
DistanceRecurrence 4 . .
DistanceRecurrence 16 . .
DistanceRecurrence 77 . .
GuardedReduction 4 . P
GuardedReduction 16 . P
GuardedReduction 77 . P
ScatterPermutation 4 P. P.
ScatterPermutation 16 P. P.
ScatterPermutation 77 P. P.
GuardedScatter 4 P P
GuardedScatter 16 P P
GuardedScatter 77 P P
IndirectGatherReduction 4 P. PP
IndirectGatherReduction 16 P. PP
IndirectGatherReduction 77 P. PP
PointerChase 4 P. P.
PointerChase 16 P. P.
PointerChase 77 P. P.
TriangularCopy 4 PP PP
TriangularCopy 16 PP PP
TriangularCopy 77 PP PP
MultiDistanceRecurrence 4 . .
MultiDistanceRecurrence 16 . .
MultiDistanceRecurrence 77 . .
";
