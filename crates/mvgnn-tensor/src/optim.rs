//! Optimizers: SGD with momentum, Adam, and global-norm gradient clipping.
//!
//! Optimizers read accumulated gradients from a [`GradStore`] sidecar
//! (produced by [`crate::tape::Tape::into_grads`], possibly reduced from
//! several workers) and write updated values into [`Params`].

use crate::tape::{GradStore, Params};

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut GradStore, max_norm: f32) -> f32 {
    let norm = grads.grad_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale(max_norm / norm);
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Create with a learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Apply one update from the accumulated gradients (does not zero them).
    pub fn step(&mut self, params: &mut Params, grads: &GradStore) {
        if self.velocity.len() != params.len() {
            self.velocity = (0..params.len())
                .map(|i| vec![0.0; params.data(crate::tape::ParamId(i)).len()])
                .collect();
        }
        for (id, data) in params.iter_mut() {
            let v = &mut self.velocity[id.0];
            for ((p, &g), vel) in data.iter_mut().zip(grads.get(id)).zip(v.iter_mut()) {
                *vel = self.momentum * *vel - self.lr * g;
                *p += *vel;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Create with standard betas (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Apply one update from the accumulated gradients (does not zero them).
    pub fn step(&mut self, params: &mut Params, grads: &GradStore) {
        if self.m.len() != params.len() {
            self.m = (0..params.len())
                .map(|i| vec![0.0; params.data(crate::tape::ParamId(i)).len()])
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, data) in params.iter_mut() {
            let m = &mut self.m[id.0];
            let v = &mut self.v[id.0];
            for (((p, &g), mi), vi) in
                data.iter_mut().zip(grads.get(id)).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{Params, Tape};

    /// Minimise (w - 3)² with each optimizer.
    fn quadratic_descends(mut step: impl FnMut(&mut Params, &GradStore)) -> f32 {
        let mut params = Params::new();
        let w = params.add("w", 1, 1, vec![0.0]);
        for _ in 0..300 {
            let grads = {
                let mut tape = Tape::new(&params);
                let wv = tape.param(w);
                let c = tape.input(vec![3.0], 1, 1);
                let d = tape.sub(wv, c);
                let sq = tape.mul(d, d);
                let loss = tape.sum_all(sq);
                tape.backward(loss);
                tape.into_grads()
            };
            step(&mut params, &grads);
        }
        params.data(w)[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.0);
        let w = quadratic_descends(move |p, g| opt.step(p, g));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::new(0.02, 0.9);
        let w = quadratic_descends(move |p, g| opt.step(p, g));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = quadratic_descends(move |p, g| opt.step(p, g));
        assert!((w - 3.0).abs() < 5e-2, "w = {w}");
    }

    #[test]
    fn clip_rescales_only_above_threshold() {
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![0.0, 0.0]);
        let mut grads = {
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![3.0, 4.0], 1, 2);
            let wv = tape.param(w);
            let m = tape.mul(x, wv);
            let loss = tape.sum_all(m);
            tape.backward(loss);
            tape.into_grads()
        };
        // Norm is 5; clipping at 1 rescales to unit norm.
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        assert!((grads.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping again at a larger threshold is a no-op.
        let pre2 = clip_grad_norm(&mut grads, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((grads.grad_norm() - 1.0).abs() < 1e-5);
    }
}
