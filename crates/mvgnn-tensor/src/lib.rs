//! # mvgnn-tensor — minimal CPU deep-learning substrate
//!
//! A small, dependency-free (beyond `rand`/`rayon`) tensor library with
//! reverse-mode tape autograd, built for the graph neural networks of the
//! MV-GNN reproduction. Everything is `f32`, row-major, and 2-D
//! (`rows × cols`); vectors are `1 × n` rows.
//!
//! - [`dense`]: matmul and elementwise kernels (rayon-parallel over rows
//!   for large operands)
//! - [`sparse`]: CSR sparse matrices for GCN propagation operators
//! - [`tape`]: the autograd tape — build a graph per forward pass against
//!   a shared `&`[`tape::Params`] value store, call
//!   [`tape::Tape::backward`] to fill the tape's private
//!   [`tape::GradStore`] sidecar, reduce sidecars and step an optimizer
//! - [`optim`]: SGD with momentum and Adam, plus gradient clipping
//! - [`init`]: seeded Xavier/uniform/zero initializers

pub mod dense;
pub mod init;
pub mod mmap;
pub mod optim;
pub mod persist;
pub mod sparse;
pub mod tape;
pub mod workspace;

pub use mmap::{Advice, Mmap};
pub use sparse::SparseMatrix;
pub use persist::{load_params, save_params, PersistError};
pub use tape::{GradStore, Params, ParamId, SparseId, Storage, Tape, Var, ViewError};
pub use workspace::{Workspace, WorkspaceStats};
