//! CSR sparse matrices — the GCN propagation operators `Â`.

use serde::{Deserialize, Serialize};

/// An immutable CSR sparse matrix of f32 values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Build from COO triplets `(row, col, value)`; duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            assert!((r as usize) < rows && (c as usize) < cols, "triplet out of bounds");
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        row_ptr.push(0u32);
        let mut cur_row = 0u32;
        for (r, c, v) in merged {
            while cur_row < r {
                row_ptr.push(col_idx.len() as u32);
                cur_row += 1;
            }
            col_idx.push(c);
            values.push(v);
        }
        while row_ptr.len() < rows + 1 {
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(u32, u32, f32)> = (0..n as u32).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zero `(col, value)` pairs of one row.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// `out[rows×n] = self[rows×cols] · dense[cols×n]` (out overwritten).
    pub fn spmm(&self, dense: &[f32], out: &mut [f32], n: usize) {
        assert_eq!(dense.len(), self.cols * n, "dense operand shape");
        assert_eq!(out.len(), self.rows * n, "output shape");
        out.fill(0.0);
        for r in 0..self.rows {
            let orow = &mut out[r * n..(r + 1) * n];
            for (c, v) in self.row(r) {
                let drow = &dense[c as usize * n..(c as usize + 1) * n];
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
    }

    /// `out[cols×n] += selfᵀ · dense[rows×n]` — the backward pass of
    /// [`Self::spmm`] (accumulating).
    pub fn spmm_transpose_accum(&self, dense: &[f32], out: &mut [f32], n: usize) {
        assert_eq!(dense.len(), self.rows * n);
        assert_eq!(out.len(), self.cols * n);
        for r in 0..self.rows {
            let drow = &dense[r * n..(r + 1) * n];
            for (c, v) in self.row(r) {
                let orow = &mut out[c as usize * n..(c as usize + 1) * n];
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 3.0)]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let id = SparseMatrix::identity(3);
        let x: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 6];
        id.spmm(&x, &mut out, 2);
        assert_eq!(out, x);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        // Sparse 3×3 with a few entries vs its dense form.
        let triplets = [(0u32, 1u32, 2.0f32), (1, 0, -1.0), (2, 2, 0.5), (0, 2, 1.0)];
        let sp = SparseMatrix::from_triplets(3, 3, &triplets);
        let mut dense_a = vec![0.0f32; 9];
        for &(r, c, v) in &triplets {
            dense_a[r as usize * 3 + c as usize] = v;
        }
        let b: Vec<f32> = (0..6).map(|i| (i as f32) - 2.0).collect(); // 3×2
        let mut out_sp = vec![0.0f32; 6];
        sp.spmm(&b, &mut out_sp, 2);
        let mut out_d = vec![0.0f32; 6];
        dense::matmul(&dense_a, &b, &mut out_d, 3, 3, 2);
        for (x, y) in out_sp.iter().zip(&out_d) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let triplets = [(0u32, 1u32, 2.0f32), (2, 0, 3.0)];
        let sp = SparseMatrix::from_triplets(3, 2, &triplets);
        let g: Vec<f32> = vec![1.0, 0.0, 0.5, -1.0, 2.0, 2.0]; // 3×2 dense
        let mut out = vec![0.0f32; 4]; // 2×2
        sp.spmm_transpose_accum(&g, &mut out, 2);
        // dense Aᵀ (2×3) · g (3×2)
        let mut at = vec![0.0f32; 6];
        at[3] = 2.0; // A[0][1] -> At[1][0]
        at[2] = 3.0; // A[2][0] -> At[0][2]
        let mut expect = vec![0.0f32; 4];
        dense::matmul(&at, &g, &mut expect, 2, 3, 2);
        for (x, y) in out.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let sp = SparseMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]);
        assert_eq!(sp.row(0).count(), 0);
        assert_eq!(sp.row(3).count(), 1);
        let x = vec![1.0f32; 4];
        let mut out = vec![9.0f32; 4];
        sp.spmm(&x, &mut out, 1);
        assert_eq!(out, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_triplet_panics() {
        SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
