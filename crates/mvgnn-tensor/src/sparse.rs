//! CSR sparse matrices — the GCN propagation operators `Â`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Work threshold above which `spmm` fans rows out across rayon workers
/// (matches `dense::matmul`'s threshold).
const PAR_THRESHOLD: usize = 1 << 16;

/// An immutable CSR sparse matrix of f32 values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Build from COO triplets `(row, col, value)`; duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            assert!((r as usize) < rows && (c as usize) < cols, "triplet out of bounds");
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        row_ptr.push(0u32);
        let mut cur_row = 0u32;
        for (r, c, v) in merged {
            while cur_row < r {
                row_ptr.push(col_idx.len() as u32);
                cur_row += 1;
            }
            col_idx.push(c);
            values.push(v);
        }
        while row_ptr.len() < rows + 1 {
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Direct sum of matrices: a block-diagonal matrix with the given
    /// blocks on the diagonal, in order. Applying it to a row-packed dense
    /// batch is exactly the per-block products — the batched GCN
    /// propagation operator over packed graphs.
    pub fn block_diag(blocks: &[&SparseMatrix]) -> Self {
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        Self::fill_block_diag(blocks, &mut row_ptr, &mut col_idx, &mut values)
    }

    /// [`SparseMatrix::block_diag`] with the CSR buffers drawn from a
    /// workspace pool instead of the allocator; hand the matrix back
    /// with [`SparseMatrix::recycle`] when the batch is done.
    pub fn block_diag_in(ws: &mut crate::workspace::Workspace, blocks: &[&SparseMatrix]) -> Self {
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut row_ptr = ws.acquire_u32(rows + 1);
        let mut col_idx = ws.acquire_u32(nnz);
        let mut values = ws.acquire_f32(nnz);
        row_ptr.clear();
        col_idx.clear();
        values.clear();
        Self::fill_block_diag(blocks, &mut row_ptr, &mut col_idx, &mut values)
    }

    fn fill_block_diag(
        blocks: &[&SparseMatrix],
        row_ptr: &mut Vec<u32>,
        col_idx: &mut Vec<u32>,
        values: &mut Vec<f32>,
    ) -> Self {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        row_ptr.push(0u32);
        let mut col_off = 0u32;
        let mut nnz_off = 0u32;
        for b in blocks {
            for &p in &b.row_ptr[1..] {
                row_ptr.push(p + nnz_off);
            }
            for &c in &b.col_idx {
                col_idx.push(c + col_off);
            }
            values.extend_from_slice(&b.values);
            col_off += b.cols as u32;
            nnz_off += b.nnz() as u32;
        }
        Self {
            rows,
            cols,
            row_ptr: std::mem::take(row_ptr),
            col_idx: std::mem::take(col_idx),
            values: std::mem::take(values),
        }
    }

    /// Release the CSR buffers back into a workspace pool (the partner
    /// of [`SparseMatrix::block_diag_in`]).
    pub fn recycle(self, ws: &mut crate::workspace::Workspace) {
        ws.release_u32(self.row_ptr);
        ws.release_u32(self.col_idx);
        ws.release_f32(self.values);
    }

    /// Borrow the raw CSR arrays `(row_ptr, col_idx, values)` — the
    /// exact internal representation, for serialisers that must round-trip
    /// the matrix bit-for-bit.
    pub fn csr_parts(&self) -> (&[u32], &[u32], &[f32]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Rebuild a matrix from raw CSR arrays (the inverse of
    /// [`SparseMatrix::csr_parts`]). Returns `None` when the arrays are
    /// structurally inconsistent — wrong `row_ptr` length, non-monotone
    /// row pointers, a column index out of range, or a length mismatch
    /// between `col_idx` and `values` — so corrupt on-disk data surfaces
    /// as an error at the caller, never a later out-of-bounds panic.
    pub fn from_csr_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Option<Self> {
        if row_ptr.len() != rows + 1
            || row_ptr.first() != Some(&0)
            || *row_ptr.last()? as usize != col_idx.len()
            || col_idx.len() != values.len()
        {
            return None;
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        if col_idx.iter().any(|&c| c as usize >= cols) {
            return None;
        }
        Some(Self { rows, cols, row_ptr, col_idx, values })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(u32, u32, f32)> = (0..n as u32).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zero `(col, value)` pairs of one row.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// `out[rows×n] = self[rows×cols] · dense[cols×n]` (out overwritten).
    ///
    /// Output rows are independent, so large products (packed batches
    /// through a block-diagonal operator) fan out across rayon workers;
    /// each row accumulates in the same order either way, keeping the
    /// result bit-identical to the serial path.
    pub fn spmm(&self, dense: &[f32], out: &mut [f32], n: usize) {
        assert_eq!(dense.len(), self.cols * n, "dense operand shape");
        assert_eq!(out.len(), self.rows * n, "output shape");
        let spmm_row = |r: usize, orow: &mut [f32]| {
            orow.fill(0.0);
            for (c, v) in self.row(r) {
                let drow = &dense[c as usize * n..(c as usize + 1) * n];
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        };
        if self.nnz() * n >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(|(r, orow)| spmm_row(r, orow));
        } else {
            for (r, orow) in out.chunks_mut(n).enumerate() {
                spmm_row(r, orow);
            }
        }
    }

    /// `out[cols×n] += selfᵀ · dense[rows×n]` — the backward pass of
    /// [`Self::spmm`] (accumulating).
    pub fn spmm_transpose_accum(&self, dense: &[f32], out: &mut [f32], n: usize) {
        assert_eq!(dense.len(), self.rows * n);
        assert_eq!(out.len(), self.cols * n);
        for r in 0..self.rows {
            let drow = &dense[r * n..(r + 1) * n];
            for (c, v) in self.row(r) {
                let orow = &mut out[c as usize * n..(c as usize + 1) * n];
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        assert_eq!(m.nnz(), 2);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 3.0)]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let id = SparseMatrix::identity(3);
        let x: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 6];
        id.spmm(&x, &mut out, 2);
        assert_eq!(out, x);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        // Sparse 3×3 with a few entries vs its dense form.
        let triplets = [(0u32, 1u32, 2.0f32), (1, 0, -1.0), (2, 2, 0.5), (0, 2, 1.0)];
        let sp = SparseMatrix::from_triplets(3, 3, &triplets);
        let mut dense_a = vec![0.0f32; 9];
        for &(r, c, v) in &triplets {
            dense_a[r as usize * 3 + c as usize] = v;
        }
        let b: Vec<f32> = (0..6).map(|i| (i as f32) - 2.0).collect(); // 3×2
        let mut out_sp = vec![0.0f32; 6];
        sp.spmm(&b, &mut out_sp, 2);
        let mut out_d = vec![0.0f32; 6];
        dense::matmul(&dense_a, &b, &mut out_d, 3, 3, 2);
        for (x, y) in out_sp.iter().zip(&out_d) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let triplets = [(0u32, 1u32, 2.0f32), (2, 0, 3.0)];
        let sp = SparseMatrix::from_triplets(3, 2, &triplets);
        let g: Vec<f32> = vec![1.0, 0.0, 0.5, -1.0, 2.0, 2.0]; // 3×2 dense
        let mut out = vec![0.0f32; 4]; // 2×2
        sp.spmm_transpose_accum(&g, &mut out, 2);
        // dense Aᵀ (2×3) · g (3×2)
        let mut at = vec![0.0f32; 6];
        at[3] = 2.0; // A[0][1] -> At[1][0]
        at[2] = 3.0; // A[2][0] -> At[0][2]
        let mut expect = vec![0.0f32; 4];
        dense::matmul(&at, &g, &mut expect, 2, 3, 2);
        for (x, y) in out.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let sp = SparseMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]);
        assert_eq!(sp.row(0).count(), 0);
        assert_eq!(sp.row(3).count(), 1);
        let x = vec![1.0f32; 4];
        let mut out = vec![9.0f32; 4];
        sp.spmm(&x, &mut out, 1);
        assert_eq!(out, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_triplet_panics() {
        SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn block_diag_spmm_equals_per_block_spmm() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, -1.0)]);
        let b = SparseMatrix::from_triplets(3, 3, &[(0, 2, 0.5), (2, 1, 3.0)]);
        let bd = SparseMatrix::block_diag(&[&a, &b]);
        assert_eq!(bd.rows(), 5);
        assert_eq!(bd.cols(), 5);
        assert_eq!(bd.nnz(), 4);
        let xa: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0]; // 2×2
        let xb: Vec<f32> = vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]; // 3×2
        let packed: Vec<f32> = xa.iter().chain(&xb).copied().collect();
        let mut out = vec![0.0f32; 10];
        bd.spmm(&packed, &mut out, 2);
        let mut oa = vec![0.0f32; 4];
        a.spmm(&xa, &mut oa, 2);
        let mut ob = vec![0.0f32; 6];
        b.spmm(&xb, &mut ob, 2);
        assert_eq!(&out[..4], &oa[..]);
        assert_eq!(&out[4..], &ob[..]);
    }

    #[test]
    fn block_diag_of_empty_block_keeps_alignment() {
        let a = SparseMatrix::from_triplets(2, 2, &[(1, 1, 4.0)]);
        let empty = SparseMatrix::from_triplets(0, 0, &[]);
        let bd = SparseMatrix::block_diag(&[&empty, &a, &empty]);
        assert_eq!(bd.rows(), 2);
        let row1: Vec<_> = bd.row(1).collect();
        assert_eq!(row1, vec![(1, 4.0)]);
    }

    #[test]
    fn csr_parts_roundtrip_is_bit_identical() {
        let m = SparseMatrix::from_triplets(
            3,
            4,
            &[(0, 1, 0.25), (1, 0, -1.5), (1, 3, 7.0), (2, 2, 1e-30)],
        );
        let (rp, ci, vs) = m.csr_parts();
        let back =
            SparseMatrix::from_csr_parts(3, 4, rp.to_vec(), ci.to_vec(), vs.to_vec()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn inconsistent_csr_parts_are_rejected() {
        // row_ptr too short.
        assert!(SparseMatrix::from_csr_parts(3, 3, vec![0, 1], vec![0], vec![1.0]).is_none());
        // non-monotone row_ptr.
        assert!(
            SparseMatrix::from_csr_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0])
                .is_none()
        );
        // column index out of range.
        assert!(SparseMatrix::from_csr_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_none());
        // col_idx / values length mismatch.
        assert!(SparseMatrix::from_csr_parts(1, 2, vec![0, 1], vec![0], vec![]).is_none());
        // nnz disagrees with the final row pointer.
        assert!(
            SparseMatrix::from_csr_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).is_none()
        );
    }
}
