//! Dense row-major matrix kernels.
//!
//! These are the hot loops of training; they follow the perf-book basics:
//! flat `Vec<f32>` storage, inner loops over contiguous rows (ikj order),
//! and rayon parallelism across output rows once the work is large enough
//! to amortise the fork-join.

use rayon::prelude::*;

/// Work threshold (output elements × inner dim) above which matmul goes
/// parallel. Below it the sequential loop wins on fork-join overhead.
const PAR_THRESHOLD: usize = 1 << 16;

/// Row count of the largest matmul register tile; the column count is 16
/// (4×16 f32 = 8 ymm accumulators plus broadcast/load registers).
const MR: usize = 4;

/// MRB×NRB register-tile micro-kernel:
/// `ct[r][j0..j0+NRB] = Σ_p at[r][p] · b[p][j]` for MRB full rows.
/// The fixed-size `acc` array is promoted to vector registers, so the
/// k-loop runs load/store-free instead of round-tripping every partial
/// sum through memory, and the MRB independent rows hide FMA latency.
///
/// Every output element accumulates in ascending-`p` order with fused
/// multiply-adds regardless of MRB/NRB, so any greedy decomposition of a
/// matrix into these tiles produces bit-identical results — in
/// particular, a graph's rows inside a packed batch match the same graph
/// multiplied alone.
#[inline(always)]
fn mm_kernel<const MRB: usize, const NRB: usize>(
    at: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    ct: &mut [f32],
) {
    let mut acc = [[0.0f32; NRB]; MRB];
    for p in 0..k {
        // The range is exactly NRB long, so the conversion always
        // succeeds; the `else` arm only keeps this panic-free.
        let Ok(brow) = <&[f32; NRB]>::try_from(&b[p * n + j0..p * n + j0 + NRB]) else {
            continue;
        };
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = at[r * k + p];
            for j in 0..NRB {
                accr[j] = av.mul_add(brow[j], accr[j]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        ct[r * n + j0..r * n + j0 + NRB].copy_from_slice(accr);
    }
}

/// One block of up to MR rows: greedy column decomposition into
/// 16/8/4/2/1-wide register tiles (no scalar fallback path).
fn mm_block<const MRB: usize>(at: &[f32], b: &[f32], k: usize, n: usize, ct: &mut [f32]) {
    let mut j0 = 0;
    while j0 + 16 <= n {
        mm_kernel::<MRB, 16>(at, b, k, n, j0, ct);
        j0 += 16;
    }
    if j0 + 8 <= n {
        mm_kernel::<MRB, 8>(at, b, k, n, j0, ct);
        j0 += 8;
    }
    if j0 + 4 <= n {
        mm_kernel::<MRB, 4>(at, b, k, n, j0, ct);
        j0 += 4;
    }
    if j0 + 2 <= n {
        mm_kernel::<MRB, 2>(at, b, k, n, j0, ct);
        j0 += 2;
    }
    if j0 < n {
        mm_kernel::<MRB, 1>(at, b, k, n, j0, ct);
    }
}

/// Up to MR rows of output: greedy row decomposition into 4/2/1-row
/// blocks.
fn mm_rows(at: &[f32], b: &[f32], k: usize, n: usize, ct: &mut [f32]) {
    let rows = ct.len() / n;
    let mut r0 = 0;
    while r0 + 4 <= rows {
        mm_block::<4>(&at[r0 * k..(r0 + 4) * k], b, k, n, &mut ct[r0 * n..(r0 + 4) * n]);
        r0 += 4;
    }
    if r0 + 2 <= rows {
        mm_block::<2>(&at[r0 * k..(r0 + 2) * k], b, k, n, &mut ct[r0 * n..(r0 + 2) * n]);
        r0 += 2;
    }
    if r0 < rows {
        mm_block::<1>(&at[r0 * k..(r0 + 1) * k], b, k, n, &mut ct[r0 * n..(r0 + 1) * n]);
    }
}

/// `c[m×n] = a[m×k] · b[k×n]` (c is overwritten).
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size");
    assert_eq!(b.len(), k * n, "rhs size");
    assert_eq!(c.len(), m * n, "out size");
    let work = m * n * k;
    if work >= PAR_THRESHOLD {
        c.par_chunks_mut(MR * n)
            .zip(a.par_chunks(MR * k))
            .for_each(|(ct, at)| mm_rows(at, b, k, n, ct));
    } else {
        for (ct, at) in c.chunks_mut(MR * n).zip(a.chunks(MR * k)) {
            mm_rows(at, b, k, n, ct);
        }
    }
}

/// `c[m×n] += aᵀ[k×m]ᵀ · b[k×n]` — accumulating `Aᵀ·B` where `a` is stored
/// `k×m`. Used by matmul backward for the lhs-transposed product.
pub fn matmul_at_b_accum(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `c[m×k] += a[m×n] · bᵀ[k×n]ᵀ` — accumulating `A·Bᵀ` where `b` is stored
/// `k×n`. Used by matmul backward for the rhs-transposed product.
pub fn matmul_a_bt_accum(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * k);
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        let crow = &mut c[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// Branchless single-precision `tanh` via the identity `1 − 2/(e²ˣ + 1)`
/// with an inlined polynomial `exp` (Cephes minimax coefficients). Every
/// step is straight-line float/int arithmetic, so the elementwise loop in
/// [`tanh_vec`] autovectorises — libm's `tanhf`/`expf` are opaque calls
/// and do not. Stays within ~2e-7 of libm `tanh`, saturates exactly to
/// ±1 for |x| ≥ 10, and propagates NaN.
#[inline(always)]
fn tanh_branchless(x: f32) -> f32 {
    // z = 2x, clamped to where tanh is already ±1 at f32 precision
    // (|z| ≥ 20 ⇒ 2/(e^z + 1) < 5e-9 < one ulp of 1.0). Written as two
    // selects rather than min/max so NaN falls through unchanged (both
    // comparisons are false) and poisons the rest of the pipeline —
    // min/max would swallow it, and a separate is_nan fix-up branch
    // defeats vectorisation.
    let z2 = 2.0 * x;
    #[allow(clippy::manual_clamp)] // clamp() keeps NaN out; we need it through
    let z = if z2 > 20.0 {
        20.0
    } else if z2 < -20.0 {
        -20.0
    } else {
        z2
    };
    // exp(z): split z = n·ln2 + r, evaluate a polynomial on r, scale by
    // 2ⁿ through the exponent bits. The 1.5·2²³ magic constant rounds
    // n to the nearest integer without a branch or an fenv round trip.
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // Exactly 0x1.63p-1: the low mantissa bits are zero so n·LN2_HI is
    // exact for |n| ≤ 29 — don't shorten the literal.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const MAGIC: f32 = 12_582_912.0;
    let nf = z.mul_add(LOG2E, MAGIC);
    let n = nf - MAGIC;
    let r = n.mul_add(-LN2_LO, n.mul_add(-LN2_HI, z));
    // Degree-6 minimax polynomial for exp(r) on |r| ≤ ln2 / 2.
    let mut p = 1.987_569_1e-4f32;
    p = p.mul_add(r, 1.398_199_9e-3);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_6e-1);
    p = p.mul_add(r, 0.5);
    let p = (p * r).mul_add(r, r + 1.0);
    // 2ⁿ, read straight out of the magic sum's low mantissa bits:
    // nf = 1.5·2²³ + n has bit pattern 0x4B400000 + n (mantissa ulp is
    // exactly 1.0 in that binade), so no float→int cast is needed — a
    // saturating `as i32` cast would scalarise the loop. NaN reaches
    // here with r = NaN and a garbage (but well-defined) scale, so the
    // result is still NaN without any explicit fix-up.
    let ni = (nf.to_bits() as i32).wrapping_sub(0x4B40_0000);
    let e = p * f32::from_bits((ni.wrapping_add(127).wrapping_shl(23)) as u32);
    1.0 - 2.0 / (e + 1.0)
}

/// Elementwise `tanh` of a slice into a fresh vec (vectorised; see
/// `tanh_branchless` for the numerics).
pub fn tanh_vec(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| tanh_branchless(v)).collect()
}

/// Elementwise `tanh` into a caller-provided buffer (same numerics as
/// [`tanh_vec`], bit for bit) — the allocation-free flavour used by the
/// pooled tape. `out.len()` must equal `x.len()`.
pub fn tanh_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "tanh_into length mismatch");
    for (o, &v) in out.iter_mut().zip(x) {
        *o = tanh_branchless(v);
    }
}

/// Transpose `a[m×n]` into a fresh `n×m` vec.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n);
    let mut out = vec![0.0f32; n * m];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Numerically stable row-wise softmax of `x[rows×cols]`, in place, with a
/// temperature divisor applied to the logits first.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize, temperature: f32) {
    assert_eq!(x.len(), rows * cols);
    assert!(temperature > 0.0, "temperature must be positive");
    for r in x.chunks_mut(cols) {
        let mut max = f32::NEG_INFINITY;
        for v in r.iter_mut() {
            *v /= temperature;
            max = max.max(*v);
        }
        let mut sum = 0.0f32;
        for v in r.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in r.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // 1×3 · 3×2
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0f32; 2];
        matmul(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force both paths with a matrix above the threshold.
        let m = 64;
        let k = 64;
        let n = 64;
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32) * 0.5).collect();
        let mut c1 = vec![0.0f32; m * n];
        matmul(&a, &b, &mut c1, m, k, n); // above threshold -> parallel
        // Reference: transpose trick through small sequential calls.
        let mut c2 = vec![0.0f32; m * n];
        for i in 0..m {
            let mut row = vec![0.0f32; n];
            matmul(&a[i * k..(i + 1) * k], &b, &mut row, 1, k, n);
            c2[i * n..(i + 1) * n].copy_from_slice(&row);
        }
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let k = 3;
        let m = 2;
        let n = 4;
        let a: Vec<f32> = (0..k * m).map(|i| i as f32).collect(); // k×m
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect(); // k×n
        let mut c = vec![0.0f32; m * n];
        matmul_at_b_accum(&a, &b, &mut c, k, m, n);
        let at = transpose(&a, k, m); // m×k
        let mut expect = vec![0.0f32; m * n];
        matmul(&at, &b, &mut expect, m, k, n);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let m = 2;
        let n = 3;
        let k = 4;
        let a: Vec<f32> = (0..m * n).map(|i| i as f32).collect(); // m×n
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) - 5.0).collect(); // k×n
        let mut c = vec![0.0f32; m * k];
        matmul_a_bt_accum(&a, &b, &mut c, m, n, k);
        let bt = transpose(&b, k, n); // n×k
        let mut expect = vec![0.0f32; m * k];
        matmul(&a, &bt, &mut expect, m, n, k);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulating_kernels_accumulate() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // 2×2 identity, k=m=2
        let b = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = vec![10.0f32; 4];
        matmul_at_b_accum(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let t = transpose(&a, 2, 3);
        assert_eq!(t, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert_eq!(transpose(&t, 3, 2), a);
    }

    #[test]
    fn softmax_rows_normalises() {
        let mut x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3, 1.0);
        for r in x.chunks(3) {
            let s: f32 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(r[2] > r[1] && r[1] > r[0]);
        }
    }

    #[test]
    fn softmax_temperature_sharpens() {
        let mut hot = vec![1.0f32, 2.0];
        let mut cold = vec![1.0f32, 2.0];
        softmax_rows(&mut hot, 1, 2, 0.5);
        softmax_rows(&mut cold, 1, 2, 2.0);
        assert!(hot[1] > cold[1], "low temperature must sharpen the max");
    }

    #[test]
    fn tanh_vec_tracks_libm() {
        let xs: Vec<f32> = (-4000..=4000).map(|i| i as f32 * 0.005).collect();
        for (&x, &t) in xs.iter().zip(&tanh_vec(&xs)) {
            let want = (x as f64).tanh() as f32;
            assert!((t - want).abs() <= 3e-7, "tanh({x}) = {t}, want {want}");
        }
    }

    #[test]
    fn tanh_vec_saturates_and_propagates_specials() {
        let out = tanh_vec(&[
            15.0,
            -15.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            0.0,
            -0.0,
        ]);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], -1.0);
        assert_eq!(out[2], 1.0);
        assert_eq!(out[3], -1.0);
        assert!(out[4].is_nan());
        assert_eq!(out[5], 0.0);
        assert_eq!(out[6], 0.0);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut x = vec![1000.0f32, 1001.0];
        softmax_rows(&mut x, 1, 2, 1.0);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-5);
    }
}
