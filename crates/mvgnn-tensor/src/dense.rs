//! Dense row-major matrix kernels.
//!
//! These are the hot loops of training; they follow the perf-book basics:
//! flat `Vec<f32>` storage, inner loops over contiguous rows (ikj order),
//! and rayon parallelism across output rows once the work is large enough
//! to amortise the fork-join.

use rayon::prelude::*;

/// Work threshold (output elements × inner dim) above which matmul goes
/// parallel. Below it the sequential loop wins on fork-join overhead.
const PAR_THRESHOLD: usize = 1 << 16;

/// `c[m×n] = a[m×k] · b[k×n]` (c is overwritten).
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs size");
    assert_eq!(b.len(), k * n, "rhs size");
    assert_eq!(c.len(), m * n, "out size");
    let work = m * n * k;
    let row = |ci: &mut [f32], ai: &[f32]| {
        ci.fill(0.0);
        for (p, &av) in ai.iter().enumerate() {
            if av != 0.0 {
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in ci.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    };
    if work >= PAR_THRESHOLD {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

/// `c[m×n] += aᵀ[k×m]ᵀ · b[k×n]` — accumulating `Aᵀ·B` where `a` is stored
/// `k×m`. Used by matmul backward for the lhs-transposed product.
pub fn matmul_at_b_accum(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `c[m×k] += a[m×n] · bᵀ[k×n]ᵀ` — accumulating `A·Bᵀ` where `b` is stored
/// `k×n`. Used by matmul backward for the rhs-transposed product.
pub fn matmul_a_bt_accum(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * k);
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        let crow = &mut c[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// Transpose `a[m×n]` into a fresh `n×m` vec.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n);
    let mut out = vec![0.0f32; n * m];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Numerically stable row-wise softmax of `x[rows×cols]`, in place, with a
/// temperature divisor applied to the logits first.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize, temperature: f32) {
    assert_eq!(x.len(), rows * cols);
    assert!(temperature > 0.0, "temperature must be positive");
    for r in x.chunks_mut(cols) {
        let mut max = f32::NEG_INFINITY;
        for v in r.iter_mut() {
            *v /= temperature;
            max = max.max(*v);
        }
        let mut sum = 0.0f32;
        for v in r.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in r.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // 1×3 · 3×2
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0f32; 2];
        matmul(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force both paths with a matrix above the threshold.
        let m = 64;
        let k = 64;
        let n = 64;
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32) * 0.5).collect();
        let mut c1 = vec![0.0f32; m * n];
        matmul(&a, &b, &mut c1, m, k, n); // above threshold -> parallel
        // Reference: transpose trick through small sequential calls.
        let mut c2 = vec![0.0f32; m * n];
        for i in 0..m {
            let mut row = vec![0.0f32; n];
            matmul(&a[i * k..(i + 1) * k], &b, &mut row, 1, k, n);
            c2[i * n..(i + 1) * n].copy_from_slice(&row);
        }
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let k = 3;
        let m = 2;
        let n = 4;
        let a: Vec<f32> = (0..k * m).map(|i| i as f32).collect(); // k×m
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect(); // k×n
        let mut c = vec![0.0f32; m * n];
        matmul_at_b_accum(&a, &b, &mut c, k, m, n);
        let at = transpose(&a, k, m); // m×k
        let mut expect = vec![0.0f32; m * n];
        matmul(&at, &b, &mut expect, m, k, n);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let m = 2;
        let n = 3;
        let k = 4;
        let a: Vec<f32> = (0..m * n).map(|i| i as f32).collect(); // m×n
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) - 5.0).collect(); // k×n
        let mut c = vec![0.0f32; m * k];
        matmul_a_bt_accum(&a, &b, &mut c, m, n, k);
        let bt = transpose(&b, k, n); // n×k
        let mut expect = vec![0.0f32; m * k];
        matmul(&a, &bt, &mut expect, m, n, k);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulating_kernels_accumulate() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // 2×2 identity, k=m=2
        let b = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = vec![10.0f32; 4];
        matmul_at_b_accum(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let t = transpose(&a, 2, 3);
        assert_eq!(t, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert_eq!(transpose(&t, 3, 2), a);
    }

    #[test]
    fn softmax_rows_normalises() {
        let mut x = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3, 1.0);
        for r in x.chunks(3) {
            let s: f32 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(r[2] > r[1] && r[1] > r[0]);
        }
    }

    #[test]
    fn softmax_temperature_sharpens() {
        let mut hot = vec![1.0f32, 2.0];
        let mut cold = vec![1.0f32, 2.0];
        softmax_rows(&mut hot, 1, 2, 0.5);
        softmax_rows(&mut cold, 1, 2, 2.0);
        assert!(hot[1] > cold[1], "low temperature must sharpen the max");
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut x = vec![1000.0f32, 1001.0];
        softmax_rows(&mut x, 1, 2, 1.0);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-5);
    }
}
