//! Reusable buffer arena for allocation-free steady-state inference.
//!
//! A [`Workspace`] is a set of size-classed free lists (one per
//! power-of-two capacity class, one family per element type) that a
//! [`crate::tape::Tape`] draws its node-value, gradient and payload
//! buffers from. Releasing a buffer files it under
//! `floor(log2(capacity))`; acquiring length `n` pops from class
//! `ceil(log2(n))`, whose every resident has capacity ≥ `n` — so a
//! pooled acquire never reallocates. After one warm-up pass every
//! buffer the tape needs is resident and the forward pass allocates
//! nothing.
//!
//! Determinism: the pool changes only *where* a buffer's memory comes
//! from, never its contents — every acquire hands back a zero-filled
//! (`T::default()`) vector of exactly the requested length, identical
//! to a fresh `vec![T::default(); n]`. Outputs therefore stay
//! bit-identical with or without pooling, which `tests/batch_parity.rs`
//! and `tests/concurrent_parity.rs` pin.
//!
//! Workspaces are plain owned values: one per worker thread (the
//! inference engine parks one per worker and reuses it across chunks),
//! never shared, so there is no synchronisation and no allocator
//! cross-talk between threads.

use std::cell::RefCell;

/// Buffers retained per size class; anything beyond this is dropped on
/// release. A single packed forward pass holds well under this many
/// live buffers of any one class, so steady-state inference never hits
/// the cap — it only bounds pathological churn.
const MAX_PER_CLASS: usize = 512;

/// One element type's size-classed free lists.
#[derive(Debug, Default)]
struct Pool<T> {
    /// `classes[c]` holds buffers with `capacity ∈ [2^c, …)`.
    classes: Vec<Vec<Vec<T>>>,
    hits: u64,
    misses: u64,
}

/// Class that can satisfy a request of length `len`: smallest `c` with
/// `2^c ≥ len`.
fn class_for_len(len: usize) -> usize {
    (usize::BITS - (len - 1).leading_zeros()) as usize
}

/// Class a buffer of this capacity is filed under: largest `c` with
/// `2^c ≤ cap`. Every resident of class `c` can serve any request with
/// `len ≤ 2^c`.
fn class_for_cap(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

impl<T: Copy + Default> Pool<T> {
    /// A zero-filled (`T::default()`) vector of exactly `len` elements,
    /// reusing a pooled buffer when one is resident.
    fn acquire(&mut self, len: usize) -> Vec<T> {
        if len == 0 {
            return Vec::new();
        }
        let class = class_for_len(len);
        if let Some(mut buf) = self.classes.get_mut(class).and_then(Vec::pop) {
            self.hits += 1;
            buf.clear();
            buf.resize(len, T::default());
            return buf;
        }
        self.misses += 1;
        let mut buf = Vec::with_capacity(1usize << class);
        buf.resize(len, T::default());
        buf
    }

    /// Return a buffer to the pool. Zero-capacity vectors carry no
    /// memory and are simply dropped.
    fn release(&mut self, buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let class = class_for_cap(cap);
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let slot = &mut self.classes[class];
        if slot.len() < MAX_PER_CLASS {
            slot.push(buf);
        }
    }

    /// Buffers currently resident.
    fn resident(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

/// Acquire/release counters for one [`Workspace`] (summed over all
/// element types). `misses` stops growing once the pool is warm — the
/// alloc-count bench asserts exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Acquires served from the pool (no allocation).
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently parked in the free lists.
    pub resident: usize,
}

/// A reusable arena of `f32`/`u32`/`usize` buffers. See the module docs
/// for the pooling and determinism contract.
#[derive(Debug, Default)]
pub struct Workspace {
    f32s: Pool<f32>,
    u32s: Pool<u32>,
    usizes: Pool<usize>,
}

impl Workspace {
    /// An empty workspace; buffers accumulate as tapes recycle into it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero-filled `f32` buffer of exactly `len` elements.
    pub fn acquire_f32(&mut self, len: usize) -> Vec<f32> {
        self.f32s.acquire(len)
    }

    /// Return an `f32` buffer to the pool.
    pub fn release_f32(&mut self, buf: Vec<f32>) {
        self.f32s.release(buf);
    }

    /// Zero-filled `u32` buffer of exactly `len` elements.
    pub fn acquire_u32(&mut self, len: usize) -> Vec<u32> {
        self.u32s.acquire(len)
    }

    /// Return a `u32` buffer to the pool.
    pub fn release_u32(&mut self, buf: Vec<u32>) {
        self.u32s.release(buf);
    }

    /// Zero-filled `usize` buffer of exactly `len` elements.
    pub fn acquire_usize(&mut self, len: usize) -> Vec<usize> {
        self.usizes.acquire(len)
    }

    /// Return a `usize` buffer to the pool.
    pub fn release_usize(&mut self, buf: Vec<usize>) {
        self.usizes.release(buf);
    }

    /// Acquire/release counters across all element types.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.f32s.hits + self.u32s.hits + self.usizes.hits,
            misses: self.f32s.misses + self.u32s.misses + self.usizes.misses,
            resident: self.f32s.resident() + self.u32s.resident() + self.usizes.resident(),
        }
    }
}

thread_local! {
    /// Per-thread scratch stack for kernel-interior temporaries (the
    /// blocked-im2col buffer of `conv1d_rows_seg`). These live inside
    /// rayon closures where no `&mut Workspace` can reach, so they pool
    /// per OS thread instead; under the sequential rayon stand-in that
    /// is simply the calling thread.
    static SCRATCH: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zero-filled `f32` scratch buffer of exactly `len`
/// elements, drawn from (and returned to) a per-thread stack. Nested
/// calls each get their own buffer. Contents match a fresh
/// `vec![0.0; len]` exactly.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = SCRATCH.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let out = f(&mut buf);
    SCRATCH.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.len() < 64 {
            stack.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_and_sized() {
        let mut ws = Workspace::new();
        let mut a = ws.acquire_f32(10);
        assert_eq!(a, vec![0.0; 10]);
        a.iter_mut().for_each(|x| *x = 7.0);
        ws.release_f32(a);
        // Reused buffer must come back zeroed despite the dirty release.
        let b = ws.acquire_f32(10);
        assert_eq!(b, vec![0.0; 10]);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(ws.stats().misses, 1);
    }

    #[test]
    fn warm_pool_stops_missing() {
        let mut ws = Workspace::new();
        for _ in 0..5 {
            let a = ws.acquire_f32(100);
            let b = ws.acquire_f32(33);
            ws.release_f32(a);
            ws.release_f32(b);
        }
        let s = ws.stats();
        assert_eq!(s.misses, 2, "only the cold pass allocates");
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn requests_in_the_same_class_reuse_one_buffer() {
        let mut ws = Workspace::new();
        // acquire(100) allocates capacity 128 (class 7: 65..=128); any
        // later request in that class reuses it regardless of length.
        let a = ws.acquire_f32(100);
        ws.release_f32(a);
        let b = ws.acquire_f32(120);
        assert_eq!(b.len(), 120);
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn zero_len_is_free() {
        let mut ws = Workspace::new();
        let a = ws.acquire_f32(0);
        assert!(a.is_empty());
        ws.release_f32(a);
        ws.release_f32(Vec::new());
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.resident), (0, 0, 0));
    }

    #[test]
    fn typed_pools_are_independent() {
        let mut ws = Workspace::new();
        // Capacity 4 files under class 2, which serves len-3 requests;
        // a capacity-3 release would file under class 1 (only cap ≥ 2
        // guaranteed) and miss — the filing is conservative by design.
        ws.release_u32(vec![1, 2, 3, 4]);
        ws.release_usize(vec![4, 5]);
        assert_eq!(ws.acquire_u32(3), vec![0, 0, 0]);
        assert_eq!(ws.acquire_usize(2), vec![0, 0]);
        assert_eq!(ws.stats().hits, 2);
    }

    #[test]
    fn scratch_is_zeroed_and_nested_calls_are_distinct() {
        with_scratch(4, |a| {
            a.iter_mut().for_each(|x| *x = 1.0);
            with_scratch(4, |b| {
                assert_eq!(b, &[0.0; 4]);
                assert_eq!(a, &[1.0; 4]);
            });
        });
        // The dirtied buffer is re-zeroed on reuse.
        with_scratch(4, |a| assert_eq!(a, &[0.0; 4]));
    }

    #[test]
    fn class_maths_round_trip() {
        for len in [1usize, 2, 3, 4, 5, 63, 64, 65, 1000, 1 << 20] {
            let c = class_for_len(len);
            assert!(1usize << c >= len, "class cap must cover len {len}");
            assert!(c == 0 || (1usize << (c - 1)) < len, "class must be tight for {len}");
            // A buffer allocated at this class files back into the same
            // class, so acquire(len) finds it again.
            assert_eq!(class_for_cap(1usize << c), c);
        }
    }
}
