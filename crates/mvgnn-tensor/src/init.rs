//! Seeded weight initializers and dropout-mask generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation for a `rows×cols` weight matrix.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Vec<f32> {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    (0..rows * cols).map(|_| rng.random_range(-bound..bound)).collect()
}

/// Uniform initialisation in `[-bound, bound]`.
pub fn uniform(n: usize, bound: f32, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(-bound..bound)).collect()
}

/// All-zero initialisation (biases).
pub fn zeros(n: usize) -> Vec<f32> {
    vec![0.0; n]
}

/// Deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Inverted-dropout keep mask: entries are `1/keep_prob` with probability
/// `keep_prob` and `0` otherwise.
pub fn dropout_mask(n: usize, keep_prob: f32, rng: &mut StdRng) -> Vec<f32> {
    assert!((0.0..=1.0).contains(&keep_prob) && keep_prob > 0.0, "keep_prob in (0, 1]");
    let inv = 1.0 / keep_prob;
    (0..n)
        .map(|_| if rng.random::<f32>() < keep_prob { inv } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bounds_and_seeded() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let a = xavier_uniform(20, 30, &mut r1);
        let b = xavier_uniform(20, 30, &mut r2);
        assert_eq!(a, b, "same seed, same weights");
        let bound = (6.0 / 50.0f32).sqrt();
        assert!(a.iter().all(|&x| x.abs() <= bound));
        // Not all identical.
        assert!(a.iter().any(|&x| (x - a[0]).abs() > 1e-6));
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut r = rng(3);
        let mask = dropout_mask(10_000, 0.8, &mut r);
        let kept = mask.iter().filter(|&&m| m > 0.0).count();
        assert!((7_600..8_400).contains(&kept), "kept {kept}");
        for &m in &mask {
            assert!(m == 0.0 || (m - 1.25).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_keep_one_is_identity() {
        let mut r = rng(1);
        let mask = dropout_mask(100, 1.0, &mut r);
        assert!(mask.iter().all(|&m| (m - 1.0).abs() < 1e-6));
    }

    #[test]
    fn zeros_are_zero() {
        assert!(zeros(5).iter().all(|&x| x == 0.0));
    }
}
