//! Read-only memory mapping without a libc dependency.
//!
//! The workspace is hermetic — no `libc` crate — so the handful of
//! syscalls needed for zero-copy artifact loading are declared directly
//! as `extern "C"` bindings against the platform's C runtime (which the
//! Rust standard library already links). Only what the artifact layer
//! needs is exposed: map a whole file read-only, advise the kernel
//! about the access pattern, and unmap on drop.
//!
//! On non-Unix targets the same API is backed by an owned, 64-byte
//! aligned buffer read eagerly from the file, so callers never need a
//! `cfg` of their own; both backings guarantee [`Mmap::ALIGN`]-byte base
//! alignment, which is what lets [`crate::tape::Storage`] view `f32`
//! tensors straight out of the mapping.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MADV_RANDOM: i32 = 1;
    pub const MADV_SEQUENTIAL: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// Access-pattern hint forwarded to `madvise` (a no-op on the owned
/// fallback backing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential reads (aggressive readahead) — the streaming
    /// shard reader's pattern.
    Sequential,
    /// Expect random access (no readahead) — a weight registry serving
    /// scattered tensor reads.
    Random,
    /// Touch soon: prefault pages ahead of the first read.
    WillNeed,
}

enum Backing {
    /// A live kernel mapping (Unix). `ptr` is page-aligned, `len > 0`.
    #[cfg(unix)]
    Mapped { ptr: *mut core::ffi::c_void, len: usize },
    /// Eagerly-read, 64-byte-aligned owned bytes (non-Unix fallback and
    /// the shared empty-file representation).
    Owned(AlignedBytes),
}

/// A read-only byte view of a file, alignment-guaranteed.
///
/// The mapping is `MAP_PRIVATE`: writes to the file after the map is
/// established may or may not be observed (copy-on-write pages), and a
/// concurrent *truncation* of a mapped file turns later page faults into
/// `SIGBUS` at the OS level — callers defend against that by validating
/// every declared offset/length against [`Mmap::len`] (captured at map
/// time) before dereferencing, which converts the reachable failure
/// modes into typed errors.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// never remapped), so shared references across threads are sound; the
// owned fallback is a plain buffer.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).field("mapped", &self.is_mapped()).finish()
    }
}

impl Mmap {
    /// Base-address alignment guaranteed by every backing, in bytes.
    /// (Real mappings are page-aligned; the fallback allocates at 64.)
    pub const ALIGN: usize = 64;

    /// Map an entire file read-only. Empty files yield an empty view
    /// without touching `mmap` (a zero-length map is an error on Linux).
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { backing: Backing::Owned(AlignedBytes::empty()) });
        }
        Self::map_nonempty(file, len)
    }

    #[cfg(unix)]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { backing: Backing::Mapped { ptr, len } })
    }

    #[cfg(not(unix))]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = AlignedBytes::zeroed(len);
        let mut take = file;
        take.read_exact(buf.as_mut_slice())?;
        Ok(Mmap { backing: Backing::Owned(buf) })
    }

    /// Length of the view in bytes, captured at map time.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned(b) => b.len,
        }
    }

    /// True when the underlying file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a live kernel mapping (false for the owned
    /// fallback / empty files) — surfaced in the registry census.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr` points at a live PROT_READ mapping of
                // exactly `len` bytes, held for `self`'s lifetime.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Backing::Owned(b) => b.as_slice(),
        }
    }

    /// Base address of the view (always [`Mmap::ALIGN`]-aligned).
    pub fn base_addr(&self) -> usize {
        self.as_slice().as_ptr() as usize
    }

    /// Forward an access-pattern hint to the kernel. Best-effort: hint
    /// failures are ignored (they only affect readahead, not
    /// correctness), and the owned backing has nothing to advise.
    pub fn advise(&self, advice: Advice) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            let code = match advice {
                Advice::Sequential => sys::MADV_SEQUENTIAL,
                Advice::Random => sys::MADV_RANDOM,
                Advice::WillNeed => sys::MADV_WILLNEED,
            };
            unsafe {
                sys::madvise(*ptr, *len, code);
            }
        }
        #[cfg(not(unix))]
        let _ = advice;
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                sys::munmap(*ptr, *len);
            }
        }
    }
}

/// A heap buffer with a 64-byte-aligned base — the owned backing for
/// empty files and non-Unix targets, matching the alignment contract of
/// a real page-aligned mapping.
struct AlignedBytes {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBytes {
    fn empty() -> Self {
        AlignedBytes { ptr: std::ptr::null_mut(), len: 0 }
    }

    #[cfg(not(unix))]
    fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self::empty();
        }
        let layout = std::alloc::Layout::from_size_align(len, Mmap::ALIGN)
            .unwrap_or_else(|_| std::alloc::Layout::new::<u8>());
        // SAFETY: len > 0, layout is valid for the requested size.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        AlignedBytes { ptr, len }
    }

    fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` owns exactly `len` live bytes.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[cfg(not(unix))]
    fn as_mut_slice(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: `ptr` owns exactly `len` live bytes, borrowed uniquely.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        if self.len > 0 {
            if let Ok(layout) = std::alloc::Layout::from_size_align(self.len, Mmap::ALIGN) {
                // SAFETY: allocated with this exact layout in `zeroed`.
                unsafe { std::alloc::dealloc(self.ptr, layout) };
            }
        }
    }
}

// SAFETY: plain owned heap memory.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mvgnn_mmap_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("contents", b"hello mapping");
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_slice(), b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        assert!(map.base_addr().is_multiple_of(Mmap::ALIGN));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp_file("empty", b"");
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        assert!(!map.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advise_is_best_effort() {
        let path = tmp_file("advise", &[7u8; 4096]);
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        map.advise(Advice::Sequential);
        map.advise(Advice::Random);
        map.advise(Advice::WillNeed);
        assert_eq!(map.as_slice()[4095], 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn survives_threads() {
        let path = tmp_file("threads", &[42u8; 1024]);
        let map = std::sync::Arc::new(Mmap::map_file(&File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42 * 1024);
        }
        std::fs::remove_file(&path).ok();
    }
}
