//! Reverse-mode tape autograd.
//!
//! One [`Tape`] is built per forward pass against a persistent [`Params`]
//! store, which holds parameter *values* only and is read through a
//! shared borrow — any number of tapes (and threads) can run forward
//! passes against the same store concurrently. Gradients live in a
//! per-tape [`GradStore`] sidecar, allocated lazily by
//! [`Tape::backward`] and handed to an optimizer from [`crate::optim`]
//! via [`Tape::into_grads`].
//!
//! All tensors are 2-D row-major `f32` matrices.

use crate::dense;
use crate::mmap::Mmap;
use crate::sparse::SparseMatrix;
use crate::workspace::{self, Workspace};
use rayon::prelude::*;
use std::sync::Arc;

/// Flop threshold above which row-independent ops fan out across rayon
/// workers (matches `dense::matmul`'s threshold); below it the fork-join
/// overhead outweighs the work.
const PAR_THRESHOLD: usize = 1 << 16;

/// Persistent parameter store: values only, no gradient state.
///
/// Immutable during execution — forward and backward passes need only
/// `&Params`, so a trained store can sit behind an `Arc` and serve many
/// threads at once. Mutation happens between passes: the optimizer
/// steps values via [`Params::iter_mut`], and persistence loads values
/// via [`Params::data_mut`]. Gradients accumulate in a separate
/// [`GradStore`] owned by each [`Tape`].
#[derive(Debug, Clone, Default)]
pub struct Params {
    names: Vec<String>,
    data: Vec<Storage>,
    shapes: Vec<(usize, usize)>,
}

/// Handle to one parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Backing storage for one parameter tensor: either an owned buffer
/// (the training / eager-load representation) or an aligned `f32` view
/// borrowed straight out of a shared memory-mapped artifact (zero-copy
/// load). Reads go through [`Storage::as_slice`] either way; the first
/// mutable access to a mapped tensor materialises it into an owned
/// buffer (copy-on-write), so the optimizer and persistence surfaces
/// keep working unchanged.
#[derive(Debug, Clone)]
pub enum Storage {
    /// Heap-owned values.
    Owned(Vec<f32>),
    /// `len` f32 values viewed at byte `offset` into `map`. Constructed
    /// only through [`Storage::mapped`], which proves alignment and
    /// bounds once; reads afterwards are a pointer cast.
    Mapped { map: Arc<Mmap>, offset: usize, len: usize },
}

/// Why a requested mapped view cannot be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The view's base address is not `f32`-aligned.
    Misaligned { offset: usize },
    /// `offset + 4·len` runs past the end of the mapping.
    OutOfBounds { offset: usize, len: usize, map_len: usize },
    /// The storage's element count doesn't match the tensor's shape.
    ShapeMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Misaligned { offset } => {
                write!(f, "mapped tensor at byte offset {offset} is not f32-aligned")
            }
            ViewError::OutOfBounds { offset, len, map_len } => write!(
                f,
                "mapped tensor [{offset}, {offset}+{len}·4) exceeds the {map_len}-byte mapping"
            ),
            ViewError::ShapeMismatch { expected, got } => {
                write!(f, "storage holds {got} elements, tensor shape needs {expected}")
            }
        }
    }
}

impl std::error::Error for ViewError {}

impl Storage {
    /// Borrow `len` f32s at byte `offset` of `map`, validating bounds
    /// and alignment up front so every later read is a safe cast.
    pub fn mapped(map: Arc<Mmap>, offset: usize, len: usize) -> Result<Storage, ViewError> {
        let bytes = len
            .checked_mul(4)
            .and_then(|b| b.checked_add(offset))
            .ok_or(ViewError::OutOfBounds { offset, len, map_len: map.len() })?;
        if bytes > map.len() {
            return Err(ViewError::OutOfBounds { offset, len, map_len: map.len() });
        }
        if !(map.base_addr() + offset).is_multiple_of(std::mem::align_of::<f32>()) {
            return Err(ViewError::Misaligned { offset });
        }
        Ok(Storage::Mapped { map, offset, len })
    }

    /// The values, whichever backing holds them.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped { map, offset, len } => {
                // SAFETY: `Storage::mapped` proved at construction that
                // `[offset, offset + 4·len)` lies inside the mapping and
                // that the base is f32-aligned; the Arc keeps the
                // mapping alive for the borrow. f32 has no invalid bit
                // patterns, so any file contents are a valid value.
                unsafe {
                    let base = map.as_slice().as_ptr().add(*offset) as *const f32;
                    std::slice::from_raw_parts(base, *len)
                }
            }
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Storage::Owned(v) => v.len(),
            Storage::Mapped { len, .. } => *len,
        }
    }

    /// True for a zero-element tensor.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the values are viewed out of a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped { .. })
    }

    /// Mutable access, materialising a mapped view into an owned buffer
    /// on first touch (copy-on-write).
    fn make_mut(&mut self) -> &mut Vec<f32> {
        if let Storage::Mapped { .. } = self {
            *self = Storage::Owned(self.as_slice().to_vec());
        }
        let Storage::Owned(v) = self else {
            // Dead arm: the mapped case was rewritten to Owned above.
            // A leaked empty Vec satisfies the type without a panic site.
            return Box::leak(Box::default());
        };
        v
    }
}

impl Params {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with initial values.
    pub fn add(&mut self, name: impl Into<String>, rows: usize, cols: usize, init: Vec<f32>) -> ParamId {
        assert_eq!(init.len(), rows * cols, "init size mismatch");
        let id = ParamId(self.data.len());
        self.names.push(name.into());
        self.data.push(Storage::Owned(init));
        self.shapes.push((rows, cols));
        id
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total scalar count.
    pub fn scalar_count(&self) -> usize {
        self.data.iter().map(Storage::len).sum()
    }

    /// Parameter values.
    pub fn data(&self, id: ParamId) -> &[f32] {
        self.data[id.0].as_slice()
    }

    /// Mutable parameter values. A mapped tensor materialises into an
    /// owned buffer on the way through (copy-on-write), so training on
    /// top of a zero-copy load works transparently.
    pub fn data_mut(&mut self, id: ParamId) -> &mut [f32] {
        self.data[id.0].make_mut()
    }

    /// Replace a tensor's backing storage. The replacement must carry
    /// exactly `rows·cols` elements for the tensor's registered shape;
    /// this is the installation point for mapped checkpoint views.
    pub fn set_storage(&mut self, id: ParamId, storage: Storage) -> Result<(), ViewError> {
        let (rows, cols) = self.shapes[id.0];
        if storage.len() != rows * cols {
            return Err(ViewError::ShapeMismatch { expected: rows * cols, got: storage.len() });
        }
        self.data[id.0] = storage;
        Ok(())
    }

    /// Number of tensors currently viewed out of a mapped artifact
    /// (zero after any eager load or optimizer step) — the registry
    /// census reads this to report the effective load mode.
    pub fn mapped_tensor_count(&self) -> usize {
        self.data.iter().filter(|s| s.is_mapped()).count()
    }

    /// Shape of a parameter.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        self.shapes[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterate `(id, data)` mutably — the optimizer/persistence surface.
    /// Mapped tensors materialise into owned buffers as they are
    /// yielded (copy-on-write), same as [`Params::data_mut`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Vec<f32>)> {
        self.data.iter_mut().enumerate().map(|(i, d)| (ParamId(i), d.make_mut()))
    }
}

/// Per-tape gradient sidecar: one accumulator buffer per parameter
/// tensor, aligned index-for-index with the [`Params`] it was built
/// from. Each [`Tape`] owns its own `GradStore` (allocated lazily by
/// [`Tape::backward`]), so backward passes never contend on shared
/// state; data-parallel workers reduce their sidecars into a master
/// store with [`GradStore::absorb`] before the optimizer steps.
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    grads: Vec<Vec<f32>>,
}

impl GradStore {
    /// Zeroed accumulators matching `params` tensor-for-tensor.
    pub fn zeros_like(params: &Params) -> Self {
        Self { grads: params.data.iter().map(|d| vec![0.0; d.len()]).collect() }
    }

    /// Number of gradient buffers (tensors).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when no buffers are held.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Accumulated gradient of one parameter.
    pub fn get(&self, id: ParamId) -> &[f32] {
        &self.grads[id.0]
    }

    /// Mutable gradient of one parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.grads[id.0]
    }

    /// Zero every accumulator.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Add another sidecar's gradients into this one (data-parallel
    /// gradient reduction). Panics when layouts differ.
    pub fn absorb(&mut self, other: &GradStore) {
        assert_eq!(self.grads.len(), other.grads.len(), "grad store tensor count mismatch");
        for (g, og) in self.grads.iter_mut().zip(&other.grads) {
            assert_eq!(g.len(), og.len(), "grad store shape mismatch");
            for (x, &y) in g.iter_mut().zip(og) {
                *x += y;
            }
        }
    }

    /// Scale every gradient uniformly (the clipping primitive).
    pub fn scale(&mut self, factor: f32) {
        for g in &mut self.grads {
            for x in g.iter_mut() {
                *x *= factor;
            }
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .flat_map(|g| g.iter())
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }
}

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Handle to a sparse operator registered with [`Tape::sparse_const`].
/// Lets a stack of layers share one stored copy of the matrix instead of
/// cloning it per [`Tape::spmm`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseId(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    Param(ParamId),
    MatMul(Var, Var),
    SpMM(usize, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    Scale(Var, f32),
    Tanh(Var),
    Relu(Var),
    Sigmoid(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    GatherRowsPad(Var, Vec<usize>),
    /// `(dst, src)` row pairs flattened as `[dst0, src0, dst1, src1, …]`
    /// so the payload can live in the pooled `u32` free list.
    GatherRowsAt(Var, Vec<u32>),
    MeanRows(Var),
    SumAll(Var),
    SegmentSum(Var, Vec<usize>),
    SegmentSoftmax(Var, Vec<usize>),
    Dropout(Var),
    Conv1dRows { x: Var, w: Var, bias: Option<Var>, ksize: usize, stride: usize, seg_len: usize },
    MaxPoolRows { x: Var, size: usize, seg_len: usize },
    Reshape(Var),
    SoftmaxCe { logits: Var, targets: Vec<usize>, temperature: f32 },
}

/// A sparse operator slot on the tape: either tape-owned (the legacy
/// [`Tape::sparse_const`] clone) or borrowed from caller-owned storage
/// that outlives the tape — e.g. a `GraphBatch`'s block-diagonal
/// adjacency — via [`Tape::sparse_ref`], which skips the clone
/// entirely.
enum SparseSlot<'p> {
    Owned(SparseMatrix),
    Borrowed(&'p SparseMatrix),
}

impl SparseSlot<'_> {
    fn get(&self) -> &SparseMatrix {
        match self {
            SparseSlot::Owned(m) => m,
            SparseSlot::Borrowed(m) => m,
        }
    }
}

struct Node {
    op: Op,
    data: Vec<f32>,
    grad: Vec<f32>,
    shape: (usize, usize),
    /// Op-specific float payload (softmax probs, dropout mask).
    aux_f: Vec<f32>,
}

/// The autograd tape. Reads the parameter store through a shared borrow
/// for its whole life; parameter gradients accumulate in the tape's own
/// [`GradStore`] sidecar on [`Tape::backward`], retrieved with
/// [`Tape::into_grads`].
///
/// ```
/// use mvgnn_tensor::{Params, Tape};
/// let mut params = Params::new();
/// let w = params.add("w", 2, 1, vec![1.0, 2.0]);
/// let mut tape = Tape::new(&params);
/// let x = tape.input(vec![3.0, 4.0], 1, 2);
/// let wv = tape.param(w);
/// let y = tape.matmul(x, wv);          // 3·1 + 4·2 = 11
/// assert_eq!(tape.data(y), &[11.0]);
/// let loss = tape.sum_all(y);
/// tape.backward(loss);
/// let grads = tape.into_grads();
/// assert_eq!(grads.get(w), &[3.0, 4.0]);
/// ```
pub struct Tape<'p> {
    params: &'p Params,
    grads: Option<GradStore>,
    nodes: Vec<Node>,
    sparse: Vec<SparseSlot<'p>>,
    ws: Workspace,
}

impl<'p> Tape<'p> {
    /// Start a fresh tape over `params` with an empty (cold) workspace.
    pub fn new(params: &'p Params) -> Self {
        Self::with_workspace(params, Workspace::new())
    }

    /// Start a tape over `params` drawing every node-value, gradient and
    /// payload buffer from `ws`. Recover the (now warmer) workspace with
    /// [`Tape::finish`] when the pass is done; after one warm-up pass a
    /// rebuilt tape allocates nothing.
    pub fn with_workspace(params: &'p Params, ws: Workspace) -> Self {
        Self { params, grads: None, nodes: Vec::new(), sparse: Vec::new(), ws }
    }

    /// Tear the computation graph down in place, releasing every buffer
    /// back into the tape's workspace: node values, gradients, op
    /// payloads and the gradient sidecar. The tape is ready for another
    /// forward pass — same `Params`, warm pool, node storage retained.
    pub fn reset(&mut self) {
        let mut nodes = std::mem::take(&mut self.nodes);
        for node in nodes.drain(..) {
            self.ws.release_f32(node.data);
            self.ws.release_f32(node.grad);
            self.ws.release_f32(node.aux_f);
            match node.op {
                Op::GatherRowsPad(_, idx) => self.ws.release_usize(idx),
                Op::GatherRowsAt(_, pairs) => self.ws.release_u32(pairs),
                Op::SegmentSum(_, offsets) | Op::SegmentSoftmax(_, offsets) => {
                    self.ws.release_usize(offsets)
                }
                Op::SoftmaxCe { targets, .. } => self.ws.release_usize(targets),
                _ => {}
            }
        }
        self.nodes = nodes;
        self.sparse.clear();
        self.grads = None;
    }

    /// Consume the tape and hand back its workspace with every buffer
    /// released into the pool — the partner of [`Tape::with_workspace`].
    pub fn finish(mut self) -> Workspace {
        self.reset();
        std::mem::take(&mut self.ws)
    }

    /// Direct access to the tape's buffer pool, for callers that need
    /// pooled scratch around tape ops (e.g. SortPooling key extraction).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// The parameter gradients accumulated so far (`None` until
    /// [`Tape::backward`] has run).
    pub fn grads(&self) -> Option<&GradStore> {
        self.grads.as_ref()
    }

    /// Consume the tape, returning its gradient sidecar. A forward-only
    /// tape yields a zeroed store, so callers can absorb unconditionally.
    pub fn into_grads(self) -> GradStore {
        match self.grads {
            Some(g) => g,
            None => GradStore::zeros_like(self.params),
        }
    }

    fn push(&mut self, op: Op, data: Vec<f32>, shape: (usize, usize)) -> Var {
        self.push_aux(op, data, shape, Vec::new())
    }

    fn push_aux(&mut self, op: Op, data: Vec<f32>, shape: (usize, usize), aux_f: Vec<f32>) -> Var {
        debug_assert_eq!(data.len(), shape.0 * shape.1);
        // Gradient buffers are allocated lazily at the start of
        // [`Tape::backward`]: a forward-only tape (inference) never pays
        // for them, which at batch scale is hundreds of kilobytes of
        // zeroed allocations per call.
        self.nodes.push(Node { op, data, grad: Vec::new(), shape, aux_f });
        Var(self.nodes.len() - 1)
    }

    /// Shape of a var.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].shape
    }

    /// Forward value of a var.
    pub fn data(&self, v: Var) -> &[f32] {
        &self.nodes[v.0].data
    }

    /// Gradient of a var (valid after [`Tape::backward`]).
    pub fn grad(&self, v: Var) -> &[f32] {
        &self.nodes[v.0].grad
    }

    /// Constant input tensor.
    pub fn input(&mut self, data: Vec<f32>, rows: usize, cols: usize) -> Var {
        assert_eq!(data.len(), rows * cols, "input shape mismatch");
        self.push(Op::Input, data, (rows, cols))
    }

    /// Constant input copied from a slice into a pooled buffer — the
    /// allocation-free sibling of [`Tape::input`].
    pub fn input_slice(&mut self, data: &[f32], rows: usize, cols: usize) -> Var {
        assert_eq!(data.len(), rows * cols, "input shape mismatch");
        let mut buf = self.ws.acquire_f32(data.len());
        buf.copy_from_slice(data);
        self.push(Op::Input, buf, (rows, cols))
    }

    /// Load a parameter onto the tape.
    pub fn param(&mut self, id: ParamId) -> Var {
        let shape = self.params.shape(id);
        let src = self.params.data(id);
        let mut data = self.ws.acquire_f32(src.len());
        data.copy_from_slice(src);
        self.push(Op::Param(id), data, shape)
    }

    /// `a[m×k] · b[k×n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.shape(a);
        let (k2, n) = self.shape(b);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = self.ws.acquire_f32(m * n);
        dense::matmul(self.data(a), self.data(b), &mut out, m, k, n);
        self.push(Op::MatMul(a, b), out, (m, n))
    }

    /// Register a constant sparse operator on the tape (one clone). The
    /// handle can back any number of [`Tape::spmm_at`] calls.
    pub fn sparse_const(&mut self, a: &SparseMatrix) -> SparseId {
        self.sparse.push(SparseSlot::Owned(a.clone()));
        SparseId(self.sparse.len() - 1)
    }

    /// Register a caller-owned sparse operator without cloning it; the
    /// borrow must outlive the tape (same `'p` as the parameter store).
    /// This is how batched encoders share the `GraphBatch`'s cached
    /// block-diagonal adjacency across a whole GCN stack, clone-free.
    pub fn sparse_ref(&mut self, a: &'p SparseMatrix) -> SparseId {
        self.sparse.push(SparseSlot::Borrowed(a));
        SparseId(self.sparse.len() - 1)
    }

    /// Sparse `A · x` where `A` is a constant propagation operator.
    pub fn spmm(&mut self, a: &SparseMatrix, x: Var) -> Var {
        let a = self.sparse_const(a);
        self.spmm_at(a, x)
    }

    /// [`Tape::spmm`] against an operator already registered with
    /// [`Tape::sparse_const`] / [`Tape::sparse_ref`].
    pub fn spmm_at(&mut self, a: SparseId, x: Var) -> Var {
        let (r, n) = self.nodes[x.0].shape;
        let (rows, cols) = {
            let sp = self.sparse[a.0].get();
            (sp.rows(), sp.cols())
        };
        assert_eq!(cols, r, "spmm operand rows");
        let mut out = self.ws.acquire_f32(rows * n);
        self.sparse[a.0].get().spmm(&self.nodes[x.0].data, &mut out, n);
        self.push(Op::SpMM(a.0, x), out, (rows, n))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let shape = self.shape(a);
        assert_eq!(shape, self.shape(b), "add shape mismatch");
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for ((o, &x), &y) in out.iter_mut().zip(self.data(a)).zip(self.data(b)) {
            *o = x + y;
        }
        self.push(Op::Add(a, b), out, shape)
    }

    /// `a[m×n] + row[1×n]` broadcast (bias add).
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (m, n) = self.shape(a);
        assert_eq!(self.shape(row), (1, n), "bias must be 1×{n}");
        let mut out = self.ws.acquire_f32(m * n);
        {
            let adat = self.data(a);
            let rdat = self.data(row);
            for (orow, arow) in out.chunks_exact_mut(n).zip(adat.chunks_exact(n)) {
                for ((o, &x), &y) in orow.iter_mut().zip(arow).zip(rdat) {
                    *o = x + y;
                }
            }
        }
        self.push(Op::AddRow(a, row), out, (m, n))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let shape = self.shape(a);
        assert_eq!(shape, self.shape(b), "sub shape mismatch");
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for ((o, &x), &y) in out.iter_mut().zip(self.data(a)).zip(self.data(b)) {
            *o = x - y;
        }
        self.push(Op::Sub(a, b), out, shape)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let shape = self.shape(a);
        assert_eq!(shape, self.shape(b), "mul shape mismatch");
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for ((o, &x), &y) in out.iter_mut().zip(self.data(a)).zip(self.data(b)) {
            *o = x * y;
        }
        self.push(Op::MulElem(a, b), out, shape)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let shape = self.shape(a);
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for (o, &x) in out.iter_mut().zip(self.data(a)) {
            *o = x * c;
        }
        self.push(Op::Scale(a, c), out, shape)
    }

    /// Hyperbolic tangent (vectorised; see [`dense::tanh_vec`] for the
    /// numerics — within ~2e-7 of libm, exact ±1 saturation, NaN
    /// propagation). The backward pass uses the stored output, so
    /// gradients are consistent with what was computed.
    pub fn tanh(&mut self, a: Var) -> Var {
        let shape = self.shape(a);
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        dense::tanh_into(self.data(a), &mut out);
        self.push(Op::Tanh(a), out, shape)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let shape = self.shape(a);
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for (o, &x) in out.iter_mut().zip(self.data(a)) {
            *o = x.max(0.0);
        }
        self.push(Op::Relu(a), out, shape)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let shape = self.shape(a);
        let mut out = self.ws.acquire_f32(shape.0 * shape.1);
        for (o, &x) in out.iter_mut().zip(self.data(a)) {
            *o = 1.0 / (1.0 + (-x).exp());
        }
        self.push(Op::Sigmoid(a), out, shape)
    }

    /// Horizontal concatenation `[a | b]` (same row count).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (m, n1) = self.shape(a);
        let (m2, n2) = self.shape(b);
        assert_eq!(m, m2, "concat_cols row mismatch");
        let mut out = self.ws.acquire_f32(m * (n1 + n2));
        for (i, orow) in out.chunks_exact_mut(n1 + n2).enumerate() {
            orow[..n1].copy_from_slice(&self.data(a)[i * n1..(i + 1) * n1]);
            orow[n1..].copy_from_slice(&self.data(b)[i * n2..(i + 1) * n2]);
        }
        self.push(Op::ConcatCols(a, b), out, (m, n1 + n2))
    }

    /// Vertical concatenation (same column count).
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (m1, n) = self.shape(a);
        let (m2, n2) = self.shape(b);
        assert_eq!(n, n2, "concat_rows col mismatch");
        let la = m1 * n;
        let mut out = self.ws.acquire_f32((m1 + m2) * n);
        out[..la].copy_from_slice(self.data(a));
        out[la..].copy_from_slice(self.data(b));
        self.push(Op::ConcatRows(a, b), out, (m1 + m2, n))
    }

    /// Gather rows by index into a `k`-row output; missing rows (when
    /// `indices.len() < k`) are zero-padded. This is SortPooling's data
    /// movement: the caller supplies the sorted row order.
    pub fn gather_rows_pad(&mut self, a: Var, indices: &[usize], k: usize) -> Var {
        let (m, n) = self.shape(a);
        assert!(indices.len() <= k, "more indices than output rows");
        for &i in indices {
            assert!(i < m, "gather index {i} out of bounds ({m} rows)");
        }
        let mut out = self.ws.acquire_f32(k * n);
        for (o, &i) in indices.iter().enumerate() {
            out[o * n..(o + 1) * n].copy_from_slice(&self.data(a)[i * n..(i + 1) * n]);
        }
        let mut idx = self.ws.acquire_usize(indices.len());
        idx.copy_from_slice(indices);
        self.push(Op::GatherRowsPad(a, idx), out, (k, n))
    }

    /// Scatter-gather rows by explicit `(dst, src)` pairs into an
    /// `out_rows`-row output; rows no pair targets stay zero. This is the
    /// batched SortPooling data movement: each graph's sorted rows land in
    /// its own `k`-row slot of the packed output, with per-graph zero
    /// padding interleaved (which [`Tape::gather_rows_pad`], padding only
    /// at the tail, cannot express).
    pub fn gather_rows_at(&mut self, a: Var, pairs: &[(usize, usize)], out_rows: usize) -> Var {
        let (m, n) = self.shape(a);
        let mut out = self.ws.acquire_f32(out_rows * n);
        let mut compact = self.ws.acquire_u32(2 * pairs.len());
        for (&(dst, src), slot) in pairs.iter().zip(compact.chunks_exact_mut(2)) {
            assert!(dst < out_rows, "gather dst {dst} out of bounds ({out_rows} rows)");
            assert!(src < m, "gather src {src} out of bounds ({m} rows)");
            out[dst * n..(dst + 1) * n].copy_from_slice(&self.data(a)[src * n..(src + 1) * n]);
            slot[0] = dst as u32;
            slot[1] = src as u32;
        }
        self.push(Op::GatherRowsAt(a, compact), out, (out_rows, n))
    }

    /// Per-segment column-wise row sum: rows `offsets[g]..offsets[g+1]`
    /// collapse to output row `g`, giving a `(offsets.len()−1) × d`
    /// result. `offsets` must be non-decreasing, start at 0 and end at the
    /// row count; empty segments yield zero rows.
    pub fn segment_sum(&mut self, a: Var, offsets: &[usize]) -> Var {
        let (m, n) = self.shape(a);
        check_offsets(offsets, m);
        let segs = offsets.len() - 1;
        let mut out = self.ws.acquire_f32(segs * n);
        for g in 0..segs {
            let orow = &mut out[g * n..(g + 1) * n];
            for r in offsets[g]..offsets[g + 1] {
                for (o, &x) in orow.iter_mut().zip(&self.data(a)[r * n..(r + 1) * n]) {
                    *o += x;
                }
            }
        }
        let mut offs = self.ws.acquire_usize(offsets.len());
        offs.copy_from_slice(offsets);
        self.push(Op::SegmentSum(a, offs), out, (segs, n))
    }

    /// Column-wise softmax within each row segment: for every column `c`
    /// and segment `g`, `out[r][c] = exp(x[r][c]) / Σ_{r'∈g} exp(x[r'][c])`
    /// (max-subtracted for stability). The shape is unchanged; empty
    /// segments contribute nothing.
    pub fn segment_softmax(&mut self, a: Var, offsets: &[usize]) -> Var {
        let (m, n) = self.shape(a);
        check_offsets(offsets, m);
        let mut out = self.ws.acquire_f32(m * n);
        out.copy_from_slice(self.data(a));
        for g in 0..offsets.len() - 1 {
            let (lo, hi) = (offsets[g], offsets[g + 1]);
            if lo == hi {
                continue;
            }
            for c in 0..n {
                let mut mx = f32::NEG_INFINITY;
                for r in lo..hi {
                    mx = mx.max(out[r * n + c]);
                }
                let mut denom = 0.0f32;
                for r in lo..hi {
                    let e = (out[r * n + c] - mx).exp();
                    out[r * n + c] = e;
                    denom += e;
                }
                for r in lo..hi {
                    out[r * n + c] /= denom;
                }
            }
        }
        let mut probs = self.ws.acquire_f32(out.len());
        probs.copy_from_slice(&out);
        let mut offs = self.ws.acquire_usize(offsets.len());
        offs.copy_from_slice(offsets);
        self.push_aux(Op::SegmentSoftmax(a, offs), out, (m, n), probs)
    }

    /// Column-wise mean over rows: `n×d → 1×d`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let (m, n) = self.shape(a);
        assert!(m > 0, "mean over zero rows");
        let mut out = self.ws.acquire_f32(n);
        for r in self.data(a).chunks(n) {
            for (o, &x) in out.iter_mut().zip(r) {
                *o += x;
            }
        }
        let inv = 1.0 / m as f32;
        for o in &mut out {
            *o *= inv;
        }
        self.push(Op::MeanRows(a), out, (1, n))
    }

    /// Sum of every element: `→ 1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s: f32 = self.data(a).iter().sum();
        let mut out = self.ws.acquire_f32(1);
        out[0] = s;
        self.push(Op::SumAll(a), out, (1, 1))
    }

    /// Inverted dropout with the given keep mask (entries are `0` or
    /// `1/keep_prob`); build the mask with [`crate::init::dropout_mask`].
    pub fn dropout(&mut self, a: Var, mask: Vec<f32>) -> Var {
        let shape = self.shape(a);
        assert_eq!(mask.len(), shape.0 * shape.1, "mask shape mismatch");
        let mut out = self.ws.acquire_f32(mask.len());
        for ((o, &x), &m) in out.iter_mut().zip(self.data(a)).zip(&mask) {
            *o = x * m;
        }
        self.push_aux(Op::Dropout(a), out, shape, mask)
    }

    /// 1-D convolution over rows: input `len×in_ch`, weight
    /// `(ksize·in_ch)×out_ch`, optional bias `1×out_ch`; output
    /// `((len−ksize)/stride + 1)×out_ch`.
    pub fn conv1d_rows(
        &mut self,
        x: Var,
        w: Var,
        bias: Option<Var>,
        ksize: usize,
        stride: usize,
    ) -> Var {
        let (len, _) = self.shape(x);
        self.conv1d_rows_seg(x, w, bias, ksize, stride, len)
    }

    /// Segment-batched 1-D convolution: the input's rows form
    /// `len/seg_len` equal segments (packed graphs) and the convolution
    /// runs independently inside each, so windows never straddle a
    /// segment boundary. Output: `segs·((seg_len−ksize)/stride + 1)`
    /// rows. With `seg_len == len` this is the plain [`Tape::conv1d_rows`].
    pub fn conv1d_rows_seg(
        &mut self,
        x: Var,
        w: Var,
        bias: Option<Var>,
        ksize: usize,
        stride: usize,
        seg_len: usize,
    ) -> Var {
        let (len, in_ch) = self.shape(x);
        let (wr, out_ch) = self.shape(w);
        assert_eq!(wr, ksize * in_ch, "conv weight rows must be ksize·in_ch");
        assert!(
            stride >= 1 && ksize >= 1 && seg_len >= ksize,
            "conv1d geometry (seg_len {seg_len}, k {ksize})"
        );
        assert!(seg_len > 0 && len % seg_len == 0, "rows {len} not a multiple of segment {seg_len}");
        let segs = len / seg_len;
        let seg_out = (seg_len - ksize) / stride + 1;
        let out_len = segs * seg_out;
        if let Some(b) = bias {
            assert_eq!(self.shape(b), (1, out_ch), "conv bias shape");
        }
        let mut out = self.ws.acquire_f32(out_len * out_ch);
        let xd = self.data(x);
        let wd = self.data(w);
        let bd = bias.map(|b| self.data(b));
        let window_of = |i: usize| {
            let (g, t) = (i / seg_out, i % seg_out);
            let start = g * seg_len + t * stride;
            &xd[start * in_ch..(start + ksize) * in_ch]
        };
        // The convolution is a matmul over gathered windows: gather
        // BLOCK windows at a time into a small contiguous im2col buffer
        // (kept under the allocator's mmap threshold, and reused across
        // the block's tiles) and run the register-tiled `dense::matmul`
        // on it. Each output element accumulates its ksize·in_ch
        // products in ascending window order with the same kernels
        // whatever the batch around it looks like, so packed batches
        // stay bit-identical to per-graph runs; blocks are independent,
        // so large batches fan out across threads without changing a
        // single bit.
        const BLOCK: usize = 64;
        let run_block = |i0: usize, orows: &mut [f32]| {
            let nw = orows.len() / out_ch;
            // The im2col buffer comes from a per-thread scratch stack
            // (each rayon worker pools its own), so the steady state
            // allocates nothing here either.
            workspace::with_scratch(nw * wr, |xcol| {
                for (j, row) in xcol.chunks_exact_mut(wr).enumerate() {
                    row.copy_from_slice(window_of(i0 + j));
                }
                dense::matmul(xcol, wd, orows, nw, wr, out_ch);
            });
            if let Some(bd) = bd {
                for orow in orows.chunks_exact_mut(out_ch) {
                    for (o, &bv) in orow.iter_mut().zip(bd) {
                        *o += bv;
                    }
                }
            }
        };
        if out_len * out_ch * ksize * in_ch >= PAR_THRESHOLD {
            out.par_chunks_mut(BLOCK * out_ch)
                .enumerate()
                .for_each(|(bi, orows)| run_block(bi * BLOCK, orows));
        } else {
            for (bi, orows) in out.chunks_mut(BLOCK * out_ch).enumerate() {
                run_block(bi * BLOCK, orows);
            }
        }
        self.push(Op::Conv1dRows { x, w, bias, ksize, stride, seg_len }, out, (out_len, out_ch))
    }

    /// Reinterpret the data with a new shape (same element count).
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let (m, n) = self.shape(a);
        assert_eq!(m * n, rows * cols, "reshape element count mismatch");
        let mut data = self.ws.acquire_f32(m * n);
        data.copy_from_slice(self.data(a));
        self.push(Op::Reshape(a), data, (rows, cols))
    }

    /// Non-overlapping max pooling over rows (`len×ch → ⌈len/size⌉×ch`).
    pub fn maxpool_rows(&mut self, a: Var, size: usize) -> Var {
        let (len, _) = self.shape(a);
        self.maxpool_rows_seg(a, size, len.max(1))
    }

    /// Segment-batched max pooling: rows form `len/seg_len` equal segments
    /// pooled independently, so an odd `seg_len` pads its own tail window
    /// instead of leaking into the next segment. Output:
    /// `segs·⌈seg_len/size⌉` rows. With `seg_len == len` this is the plain
    /// [`Tape::maxpool_rows`].
    pub fn maxpool_rows_seg(&mut self, a: Var, size: usize, seg_len: usize) -> Var {
        let (len, ch) = self.shape(a);
        assert!(size >= 1);
        assert!(seg_len > 0 && len % seg_len == 0, "rows {len} not a multiple of segment {seg_len}");
        let segs = len / seg_len;
        let seg_out = seg_len.div_ceil(size);
        let out_len = segs * seg_out;
        // Values only; argmax routing is recomputed in `backward`, so a
        // forward-only tape never pays for the index bookkeeping.
        let mut out = self.ws.acquire_f32(out_len * ch);
        out.fill(f32::NEG_INFINITY);
        for (aseg, oseg) in
            self.data(a).chunks_exact(seg_len * ch).zip(out.chunks_exact_mut(seg_out * ch))
        {
            for (window, orow) in aseg.chunks(size * ch).zip(oseg.chunks_exact_mut(ch)) {
                for row in window.chunks_exact(ch) {
                    for (o, &v) in orow.iter_mut().zip(row) {
                        if v > *o {
                            *o = v;
                        }
                    }
                }
            }
        }
        self.push(Op::MaxPoolRows { x: a, size, seg_len }, out, (out_len, ch))
    }

    /// Mean softmax cross-entropy over rows with a temperature divisor;
    /// returns a `1×1` loss. Targets are class indices per row.
    pub fn softmax_ce(&mut self, logits: Var, targets: &[usize], temperature: f32) -> Var {
        let (m, c) = self.shape(logits);
        assert_eq!(targets.len(), m, "one target per row");
        for &t in targets {
            assert!(t < c, "target {t} out of range ({c} classes)");
        }
        let mut probs = self.ws.acquire_f32(m * c);
        probs.copy_from_slice(self.data(logits));
        dense::softmax_rows(&mut probs, m, c, temperature);
        let mut loss = 0.0f64;
        for (r, &t) in probs.chunks(c).zip(targets) {
            loss -= (r[t].max(1e-12) as f64).ln();
        }
        let loss = (loss / m as f64) as f32;
        let mut lbuf = self.ws.acquire_f32(1);
        lbuf[0] = loss;
        let mut tbuf = self.ws.acquire_usize(targets.len());
        tbuf.copy_from_slice(targets);
        self.push_aux(
            Op::SoftmaxCe { logits, targets: tbuf, temperature },
            lbuf,
            (1, 1),
            probs,
        )
    }

    /// Run reverse-mode accumulation from `loss` (must be `1×1`) and push
    /// parameter gradients into the tape's [`GradStore`] sidecar.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.shape(loss), (1, 1), "backward needs a scalar loss");
        if self.grads.is_none() {
            self.grads = Some(GradStore::zeros_like(self.params));
        }
        for i in 0..self.nodes.len() {
            if self.nodes[i].grad.is_empty() {
                let g = self.ws.acquire_f32(self.nodes[i].data.len());
                self.nodes[i].grad = g;
            }
        }
        self.nodes[loss.0].grad[0] = 1.0;
        for i in (0..self.nodes.len()).rev() {
            // Split borrows: take this node's grad out, restore after.
            let grad = std::mem::take(&mut self.nodes[i].grad);
            if grad.iter().all(|&g| g == 0.0) {
                self.nodes[i].grad = grad;
                continue;
            }
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::Param(id) => {
                    if let Some(gs) = self.grads.as_mut() {
                        for (p, &g) in gs.grads[id.0].iter_mut().zip(&grad) {
                            *p += g;
                        }
                    }
                }
                Op::MatMul(a, b) => {
                    let (m, k) = self.nodes[a.0].shape;
                    let (_, n) = self.nodes[b.0].shape;
                    // dA += dC · Bᵀ ; dB += Aᵀ · dC
                    let bdat = std::mem::take(&mut self.nodes[b.0].data);
                    {
                        let ga = &mut self.nodes[a.0].grad;
                        dense::matmul_a_bt_accum(&grad, &bdat, ga, m, n, k);
                    }
                    self.nodes[b.0].data = bdat;
                    let adat = std::mem::take(&mut self.nodes[a.0].data);
                    {
                        let gb = &mut self.nodes[b.0].grad;
                        dense::matmul_at_b_accum(&adat, &grad, gb, m, k, n);
                    }
                    self.nodes[a.0].data = adat;
                }
                Op::SpMM(s, x) => {
                    let n = self.nodes[x.0].shape.1;
                    let mut xg = std::mem::take(&mut self.nodes[x.0].grad);
                    self.sparse[s].get().spmm_transpose_accum(&grad, &mut xg, n);
                    self.nodes[x.0].grad = xg;
                }
                Op::Add(a, b) => {
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += u;
                    }
                    for (g, &u) in self.nodes[b.0].grad.iter_mut().zip(&grad) {
                        *g += u;
                    }
                }
                Op::AddRow(a, row) => {
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += u;
                    }
                    let n = self.nodes[row.0].shape.1;
                    for chunk in grad.chunks(n) {
                        for (g, &u) in self.nodes[row.0].grad.iter_mut().zip(chunk) {
                            *g += u;
                        }
                    }
                }
                Op::Sub(a, b) => {
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += u;
                    }
                    for (g, &u) in self.nodes[b.0].grad.iter_mut().zip(&grad) {
                        *g -= u;
                    }
                }
                Op::MulElem(a, b) => {
                    let bdat = std::mem::take(&mut self.nodes[b.0].data);
                    for ((g, &u), &bv) in
                        self.nodes[a.0].grad.iter_mut().zip(&grad).zip(&bdat)
                    {
                        *g += u * bv;
                    }
                    self.nodes[b.0].data = bdat;
                    let adat = std::mem::take(&mut self.nodes[a.0].data);
                    for ((g, &u), &av) in
                        self.nodes[b.0].grad.iter_mut().zip(&grad).zip(&adat)
                    {
                        *g += u * av;
                    }
                    self.nodes[a.0].data = adat;
                }
                Op::Scale(a, c) => {
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += u * c;
                    }
                }
                Op::Tanh(a) => {
                    let ydat = std::mem::take(&mut self.nodes[i].data);
                    for ((g, &u), &y) in self.nodes[a.0].grad.iter_mut().zip(&grad).zip(&ydat) {
                        *g += u * (1.0 - y * y);
                    }
                    self.nodes[i].data = ydat;
                }
                Op::Relu(a) => {
                    let ydat = std::mem::take(&mut self.nodes[i].data);
                    for ((g, &u), &y) in self.nodes[a.0].grad.iter_mut().zip(&grad).zip(&ydat) {
                        if y > 0.0 {
                            *g += u;
                        }
                    }
                    self.nodes[i].data = ydat;
                }
                Op::Sigmoid(a) => {
                    let ydat = std::mem::take(&mut self.nodes[i].data);
                    for ((g, &u), &y) in self.nodes[a.0].grad.iter_mut().zip(&grad).zip(&ydat) {
                        *g += u * y * (1.0 - y);
                    }
                    self.nodes[i].data = ydat;
                }
                Op::ConcatCols(a, b) => {
                    let (m, n1) = self.nodes[a.0].shape;
                    let n2 = self.nodes[b.0].shape.1;
                    for r in 0..m {
                        let urow = &grad[r * (n1 + n2)..(r + 1) * (n1 + n2)];
                        for (g, &u) in self.nodes[a.0].grad[r * n1..(r + 1) * n1]
                            .iter_mut()
                            .zip(&urow[..n1])
                        {
                            *g += u;
                        }
                        for (g, &u) in self.nodes[b.0].grad[r * n2..(r + 1) * n2]
                            .iter_mut()
                            .zip(&urow[n1..])
                        {
                            *g += u;
                        }
                    }
                }
                Op::ConcatRows(a, b) => {
                    let la = self.nodes[a.0].grad.len();
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad[..la]) {
                        *g += u;
                    }
                    for (g, &u) in self.nodes[b.0].grad.iter_mut().zip(&grad[la..]) {
                        *g += u;
                    }
                }
                Op::GatherRowsPad(a, indices) => {
                    let n = self.nodes[a.0].shape.1;
                    for (o, &idx) in indices.iter().enumerate() {
                        let urow = &grad[o * n..(o + 1) * n];
                        for (g, &u) in
                            self.nodes[a.0].grad[idx * n..(idx + 1) * n].iter_mut().zip(urow)
                        {
                            *g += u;
                        }
                    }
                }
                Op::GatherRowsAt(a, pairs) => {
                    let n = self.nodes[a.0].shape.1;
                    for pair in pairs.chunks_exact(2) {
                        let (dst, src) = (pair[0] as usize, pair[1] as usize);
                        let urow = &grad[dst * n..(dst + 1) * n];
                        let gr = &mut self.nodes[a.0].grad[src * n..(src + 1) * n];
                        for (g, &u) in gr.iter_mut().zip(urow) {
                            *g += u;
                        }
                    }
                }
                Op::MeanRows(a) => {
                    let (m, n) = self.nodes[a.0].shape;
                    let inv = 1.0 / m as f32;
                    for chunk in self.nodes[a.0].grad.chunks_mut(n) {
                        for (g, &u) in chunk.iter_mut().zip(&grad) {
                            *g += u * inv;
                        }
                    }
                }
                Op::SumAll(a) => {
                    let u = grad[0];
                    for g in self.nodes[a.0].grad.iter_mut() {
                        *g += u;
                    }
                }
                Op::SegmentSum(a, offsets) => {
                    let n = self.nodes[a.0].shape.1;
                    for g in 0..offsets.len() - 1 {
                        let urow = &grad[g * n..(g + 1) * n];
                        for r in offsets[g]..offsets[g + 1] {
                            for (gr, &u) in
                                self.nodes[a.0].grad[r * n..(r + 1) * n].iter_mut().zip(urow)
                            {
                                *gr += u;
                            }
                        }
                    }
                }
                Op::SegmentSoftmax(a, offsets) => {
                    // dX = Y ⊙ (U − 1·(Σ_seg U⊙Y)) column-wise per segment.
                    let n = self.nodes[a.0].shape.1;
                    let probs = std::mem::take(&mut self.nodes[i].aux_f);
                    for g in 0..offsets.len() - 1 {
                        let (lo, hi) = (offsets[g], offsets[g + 1]);
                        for c in 0..n {
                            let mut dot = 0.0f32;
                            for r in lo..hi {
                                dot += grad[r * n + c] * probs[r * n + c];
                            }
                            for r in lo..hi {
                                self.nodes[a.0].grad[r * n + c] +=
                                    probs[r * n + c] * (grad[r * n + c] - dot);
                            }
                        }
                    }
                    self.nodes[i].aux_f = probs;
                }
                Op::Dropout(a) => {
                    let mask = std::mem::take(&mut self.nodes[i].aux_f);
                    for ((g, &u), &mv) in self.nodes[a.0].grad.iter_mut().zip(&grad).zip(&mask) {
                        *g += u * mv;
                    }
                    self.nodes[i].aux_f = mask;
                }
                Op::Conv1dRows { x, w, bias, ksize, stride, seg_len } => {
                    let (len, in_ch) = self.nodes[x.0].shape;
                    let (_, out_ch) = self.nodes[i].shape;
                    let segs = len / seg_len;
                    let seg_out = (seg_len - ksize) / stride + 1;
                    let xdat = std::mem::take(&mut self.nodes[x.0].data);
                    let wdat = std::mem::take(&mut self.nodes[w.0].data);
                    for seg in 0..segs {
                        for t in 0..seg_out {
                            let start = seg * seg_len + t * stride;
                            let orow = seg * seg_out + t;
                            let urow = &grad[orow * out_ch..(orow + 1) * out_ch];
                            for p in 0..ksize * in_ch {
                                let xv = xdat[start * in_ch + p];
                                let wrow = &wdat[p * out_ch..(p + 1) * out_ch];
                                // dW[p][j] += x * u[j]; dX += w[p][j] * u[j]
                                let gw =
                                    &mut self.nodes[w.0].grad[p * out_ch..(p + 1) * out_ch];
                                let mut gx_acc = 0.0f32;
                                for ((gwj, &u), &wv) in gw.iter_mut().zip(urow).zip(wrow) {
                                    *gwj += xv * u;
                                    gx_acc += wv * u;
                                }
                                self.nodes[x.0].grad[start * in_ch + p] += gx_acc;
                            }
                            if let Some(b) = bias {
                                for (g, &u) in self.nodes[b.0].grad.iter_mut().zip(urow) {
                                    *g += u;
                                }
                            }
                        }
                    }
                    self.nodes[x.0].data = xdat;
                    self.nodes[w.0].data = wdat;
                }
                Op::Reshape(a) => {
                    for (g, &u) in self.nodes[a.0].grad.iter_mut().zip(&grad) {
                        *g += u;
                    }
                }
                Op::MaxPoolRows { x, size, seg_len } => {
                    // Recompute the argmax routing from the saved input;
                    // first strictly-greater row wins, matching forward.
                    let (len, ch) = self.nodes[x.0].shape;
                    let seg_out = seg_len.div_ceil(size);
                    let mut xg = std::mem::take(&mut self.nodes[x.0].grad);
                    let xd = &self.nodes[x.0].data;
                    for s in 0..len / seg_len {
                        for w in 0..seg_out {
                            let i0 = s * seg_len + w * size;
                            let i1 = (i0 + size).min((s + 1) * seg_len);
                            let ob = (s * seg_out + w) * ch;
                            for j in 0..ch {
                                let mut best = i0;
                                for r in i0 + 1..i1 {
                                    if xd[r * ch + j] > xd[best * ch + j] {
                                        best = r;
                                    }
                                }
                                xg[best * ch + j] += grad[ob + j];
                            }
                        }
                    }
                    self.nodes[x.0].grad = xg;
                }
                Op::SoftmaxCe { logits, targets, temperature } => {
                    let (m, c) = self.nodes[logits.0].shape;
                    let probs = std::mem::take(&mut self.nodes[i].aux_f);
                    let u = grad[0] / (m as f32 * temperature);
                    {
                        let gl = &mut self.nodes[logits.0].grad;
                        for (r, &t) in targets.iter().enumerate() {
                            for j in 0..c {
                                let p = probs[r * c + j];
                                let y = if j == t { 1.0 } else { 0.0 };
                                gl[r * c + j] += u * (p - y);
                            }
                        }
                    }
                    self.nodes[i].aux_f = probs;
                }
            }
            self.nodes[i].grad = grad;
        }
    }
}

/// Validate a segment-offset vector against a row count: non-decreasing,
/// starting at 0 and ending at `rows`.
fn check_offsets(offsets: &[usize], rows: usize) {
    assert!(offsets.len() >= 2, "offsets need at least [0, rows]");
    assert_eq!(offsets[0], 0, "offsets must start at 0");
    assert_eq!(offsets[offsets.len() - 1], rows, "offsets must end at the row count");
    assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be non-decreasing");
}

/// Row-wise argmax of a logits matrix. NaN logits (a diverged or damaged
/// model) are ordered by `total_cmp` instead of panicking — divergence is
/// detected and handled by the callers' finiteness checks. A zero-width
/// row (impossible for any real head) defaults to class 0.
pub fn argmax_rows(data: &[f32], rows: usize, cols: usize) -> Vec<usize> {
    assert_eq!(data.len(), rows * cols);
    data.chunks(cols)
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check: perturb each input scalar, compare the
    /// analytic gradient against (f(x+h) - f(x-h)) / 2h.
    fn grad_check(build: impl Fn(&mut Tape<'_>, Var) -> Var, x0: Vec<f32>, rows: usize, cols: usize) {
        let params = Params::new();
        // Analytic gradient.
        let analytic: Vec<f32> = {
            let mut tape = Tape::new(&params);
            let x = tape.input(x0.clone(), rows, cols);
            let loss = build(&mut tape, x);
            tape.backward(loss);
            tape.grad(x).to_vec()
        };
        let h = 1e-3f32;
        for i in 0..x0.len() {
            let eval = |delta: f32| -> f32 {
                let mut xs = x0.clone();
                xs[i] += delta;
                let p2 = Params::new();
                let mut tape = Tape::new(&p2);
                let x = tape.input(xs, rows, cols);
                let loss = build(&mut tape, x);
                tape.data(loss)[0]
            };
            let numeric = (eval(h) - eval(-h)) / (2.0 * h);
            let a = analytic[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_tanh() {
        grad_check(
            |t, x| {
                let w = t.input(vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4], 3, 2);
                let h = t.matmul(x, w);
                let a = t.tanh(h);
                t.sum_all(a)
            },
            vec![0.1, -0.2, 0.3, 0.5, 0.4, -0.6],
            2,
            3,
        );
    }

    #[test]
    fn grad_relu_sigmoid_scale() {
        grad_check(
            |t, x| {
                let r = t.relu(x);
                let s = t.sigmoid(r);
                let sc = t.scale(s, 2.5);
                t.sum_all(sc)
            },
            vec![0.3, -0.4, 1.2, -0.1],
            2,
            2,
        );
    }

    #[test]
    fn grad_mul_sub_add() {
        grad_check(
            |t, x| {
                let y = t.input(vec![1.0, -2.0, 0.5, 3.0], 2, 2);
                let m = t.mul(x, y);
                let s = t.sub(m, y);
                let a = t.add(s, x);
                t.sum_all(a)
            },
            vec![0.2, 0.7, -0.3, 0.9],
            2,
            2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        grad_check(
            |t, x| {
                let b = t.input(vec![0.1, -0.2], 1, 2);
                let y = t.add_row(x, b);
                let a = t.tanh(y);
                t.sum_all(a)
            },
            vec![0.5, 0.6, -0.7, 0.8, 0.9, -1.0],
            3,
            2,
        );
    }

    #[test]
    fn grad_concat_and_mean() {
        grad_check(
            |t, x| {
                let y = t.input(vec![0.4, 0.1, -0.9, 0.2], 2, 2);
                let cc = t.concat_cols(x, y);
                let cr = t.concat_rows(cc, cc);
                let m = t.mean_rows(cr);
                let a = t.tanh(m);
                t.sum_all(a)
            },
            vec![0.3, -0.5, 0.2, 0.8],
            2,
            2,
        );
    }

    #[test]
    fn grad_gather_rows_pad() {
        grad_check(
            |t, x| {
                let g = t.gather_rows_pad(x, &[2, 0], 4);
                let a = t.tanh(g);
                t.sum_all(a)
            },
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            3,
            2,
        );
    }

    #[test]
    fn grad_spmm() {
        let sp = SparseMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, -1.0), (2, 2, 0.5)]);
        grad_check(
            move |t, x| {
                let y = t.spmm(&sp, x);
                let a = t.tanh(y);
                t.sum_all(a)
            },
            vec![0.2, -0.1, 0.4, 0.3, 0.6, -0.5],
            3,
            2,
        );
    }

    #[test]
    fn grad_conv1d_and_maxpool() {
        grad_check(
            |t, x| {
                let w = t.input(vec![0.5, -0.2, 0.1, 0.3, -0.4, 0.6, 0.2, 0.7], 4, 2);
                let b = t.input(vec![0.05, -0.05], 1, 2);
                let c = t.conv1d_rows(x, w, Some(b), 2, 1);
                let p = t.maxpool_rows(c, 2);
                let a = t.tanh(p);
                t.sum_all(a)
            },
            vec![0.1, 0.9, -0.3, 0.4, 0.8, -0.2, 0.5, 0.6, -0.7, 0.2],
            5,
            2,
        );
    }

    #[test]
    fn grad_gather_rows_at() {
        grad_check(
            |t, x| {
                // Two "graphs" of 2+1 rows sorted into 2-row slots each;
                // slot 3 stays zero padding.
                let g = t.gather_rows_at(x, &[(0, 1), (1, 0), (2, 2)], 4);
                let a = t.tanh(g);
                t.sum_all(a)
            },
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            3,
            2,
        );
    }

    #[test]
    fn grad_segment_sum() {
        grad_check(
            |t, x| {
                let s = t.segment_sum(x, &[0, 2, 2, 3]);
                let a = t.tanh(s);
                t.sum_all(a)
            },
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            3,
            2,
        );
    }

    #[test]
    fn grad_segment_softmax() {
        grad_check(
            |t, x| {
                let s = t.segment_softmax(x, &[0, 2, 4]);
                let w = t.input(vec![0.3, -0.8, 0.5, 0.9, -0.2, 0.4, 0.1, 0.7], 4, 2);
                let m = t.mul(s, w);
                t.sum_all(m)
            },
            vec![0.1, 0.9, -0.3, 0.4, 0.8, -0.2, 0.5, 0.6],
            4,
            2,
        );
    }

    #[test]
    fn segment_sum_matches_manual() {
        let params = Params::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let s = tape.segment_sum(x, &[0, 1, 3]);
        assert_eq!(tape.shape(s), (2, 2));
        assert_eq!(tape.data(s), &[1.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn segment_softmax_rows_sum_to_one_per_segment_column() {
        let params = Params::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![0.5, 2.0, -1.0, 0.3, 4.0, 0.1, 2.5, -0.7], 4, 2);
        let s = tape.segment_softmax(x, &[0, 3, 4]);
        let d = tape.data(s);
        for c in 0..2 {
            let seg0: f32 = (0..3).map(|r| d[r * 2 + c]).sum();
            assert!((seg0 - 1.0).abs() < 1e-5, "segment 0 col {c} sums to {seg0}");
            assert!((d[6 + c] - 1.0).abs() < 1e-5, "singleton segment col {c}");
        }
    }

    #[test]
    fn seg_conv_matches_per_segment_plain_conv() {
        // Conv over two packed 4-row segments must equal two independent
        // 4-row convs.
        let xdat: Vec<f32> = (0..16).map(|i| (i as f32) * 0.1 - 0.8).collect(); // 8×2
        let wdat: Vec<f32> = (0..12).map(|i| ((i % 5) as f32) * 0.2 - 0.4).collect(); // (2·2)×3
        let bdat = vec![0.05, -0.1, 0.2];
        let params = Params::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(xdat.clone(), 8, 2);
        let w = tape.input(wdat.clone(), 4, 3);
        let b = tape.input(bdat.clone(), 1, 3);
        let packed = tape.conv1d_rows_seg(x, w, Some(b), 2, 1, 4);
        assert_eq!(tape.shape(packed), (6, 3));
        let packed_out = tape.data(packed).to_vec();
        for seg in 0..2 {
            let xs = tape.input(xdat[seg * 8..(seg + 1) * 8].to_vec(), 4, 2);
            let ws = tape.input(wdat.clone(), 4, 3);
            let bs = tape.input(bdat.clone(), 1, 3);
            let single = tape.conv1d_rows(xs, ws, Some(bs), 2, 1);
            assert_eq!(
                tape.data(single),
                &packed_out[seg * 9..(seg + 1) * 9],
                "segment {seg}"
            );
        }
    }

    #[test]
    fn seg_maxpool_respects_segment_boundaries() {
        // Odd segment length: the tail window must not leak into the next
        // segment.
        let params = Params::new();
        let mut tape = Tape::new(&params);
        let x = tape.input(vec![1.0, 5.0, 3.0, 9.0, 2.0, 4.0], 6, 1);
        let p = tape.maxpool_rows_seg(x, 2, 3);
        assert_eq!(tape.shape(p), (4, 1));
        // Segment 1 rows [1,5,3]: pools to [5, 3]; segment 2 rows
        // [9,2,4]: pools to [9, 4]. A straddling pool would give 9 for
        // the tail of segment 1.
        assert_eq!(tape.data(p), &[5.0, 3.0, 9.0, 4.0]);
    }

    #[test]
    fn grad_conv_seg_and_maxpool_seg() {
        grad_check(
            |t, x| {
                let w = t.input(vec![0.5, -0.2, 0.1, 0.3, -0.4, 0.6, 0.2, 0.7], 4, 2);
                let b = t.input(vec![0.05, -0.05], 1, 2);
                let c = t.conv1d_rows_seg(x, w, Some(b), 2, 1, 3);
                let p = t.maxpool_rows_seg(c, 2, 2);
                let a = t.tanh(p);
                t.sum_all(a)
            },
            vec![0.1, 0.9, -0.3, 0.4, 0.8, -0.2, 0.5, 0.6, -0.7, 0.2, 0.35, -0.15],
            6,
            2,
        );
    }

    #[test]
    fn grad_softmax_ce() {
        grad_check(
            |t, x| t.softmax_ce(x, &[1, 0], 0.5),
            vec![0.2, 0.8, 1.5, -0.4],
            2,
            2,
        );
    }

    #[test]
    fn grad_dropout_mask_scales() {
        grad_check(
            |t, x| {
                let d = t.dropout(x, vec![2.0, 0.0, 2.0, 2.0]);
                t.sum_all(d)
            },
            vec![0.4, 0.5, 0.6, 0.7],
            2,
            2,
        );
    }

    #[test]
    fn grad_sidecars_accumulate_across_tapes() {
        let mut params = Params::new();
        let w = params.add("w", 2, 1, vec![1.0, 2.0]);
        let mut master = GradStore::zeros_like(&params);
        {
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![3.0, 4.0], 1, 2);
            let wv = tape.param(w);
            let y = tape.matmul(x, wv); // 3·1 + 4·2 = 11
            assert_eq!(tape.data(y), &[11.0]);
            let loss = tape.sum_all(y);
            assert!(tape.grads().is_none(), "no sidecar before backward");
            tape.backward(loss);
            master.absorb(&tape.into_grads());
        }
        assert_eq!(master.get(w), &[3.0, 4.0]);
        // Second tape's sidecar reduces into the same master.
        {
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![1.0, 1.0], 1, 2);
            let wv = tape.param(w);
            let y = tape.matmul(x, wv);
            let loss = tape.sum_all(y);
            tape.backward(loss);
            master.absorb(&tape.into_grads());
        }
        assert_eq!(master.get(w), &[4.0, 5.0]);
        master.zero();
        assert_eq!(master.get(w), &[0.0, 0.0]);
    }

    #[test]
    fn forward_only_tape_yields_zeroed_sidecar() {
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![1.0, 2.0]);
        let mut tape = Tape::new(&params);
        let _ = tape.param(w);
        let grads = tape.into_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads.get(w), &[0.0, 0.0]);
    }

    #[test]
    fn params_are_shareable_across_threads_during_forward() {
        let mut params = Params::new();
        let w = params.add("w", 2, 1, vec![1.0, 2.0]);
        let params = std::sync::Arc::new(params);
        let mut outs = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let p = std::sync::Arc::clone(&params);
                    s.spawn(move || {
                        let mut tape = Tape::new(&p);
                        let x = tape.input(vec![t as f32, 1.0], 1, 2);
                        let wv = tape.param(w);
                        let y = tape.matmul(x, wv);
                        tape.data(y)[0]
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(v) => outs.push(v),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        assert_eq!(outs, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn training_reduces_loss_linear_classifier() {
        // 2-class linearly separable toy problem; a few SGD steps must
        // reduce the softmax-CE loss.
        let xs = vec![
            (vec![1.0f32, 0.2], 0usize),
            (vec![0.9, -0.1], 0),
            (vec![-0.8, 0.1], 1),
            (vec![-1.1, -0.3], 1),
        ];
        let mut params = Params::new();
        let w = params.add("w", 2, 2, vec![0.01, -0.02, 0.03, 0.01]);
        let b = params.add("b", 1, 2, vec![0.0, 0.0]);
        let loss_of = |params: &Params| -> (f32, GradStore) {
            let mut total = 0.0;
            let mut master = GradStore::zeros_like(params);
            for (x, y) in &xs {
                let mut tape = Tape::new(params);
                let xv = tape.input(x.clone(), 1, 2);
                let wv = tape.param(w);
                let bv = tape.param(b);
                let h = tape.matmul(xv, wv);
                let logits = tape.add_row(h, bv);
                let loss = tape.softmax_ce(logits, &[*y], 1.0);
                total += tape.data(loss)[0];
                tape.backward(loss);
                master.absorb(&tape.into_grads());
            }
            (total / xs.len() as f32, master)
        };
        let (initial, _) = loss_of(&params);
        for _ in 0..50 {
            let (_, grads) = loss_of(&params);
            for &id in &[w, b] {
                for (p, &gv) in params.data_mut(id).iter_mut().zip(grads.get(id)) {
                    *p -= 0.5 * gv;
                }
            }
        }
        let (trained, _) = loss_of(&params);
        assert!(
            trained < initial * 0.5,
            "loss should halve: {initial} -> {trained}"
        );
    }

    #[test]
    fn grad_reshape_passthrough() {
        grad_check(
            |t, x| {
                let r = t.reshape(x, 1, 6);
                let a = t.tanh(r);
                t.sum_all(a)
            },
            vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6],
            2,
            3,
        );
    }

    #[test]
    fn pooled_tape_is_bit_identical_and_stops_allocating() {
        // The same small network, three ways: a cold tape, a pooled tape,
        // and the pooled tape rebuilt in place after reset(). All three
        // must produce the same bits, and the rebuilt pass must run
        // entirely from the pool (zero misses).
        let mut params = Params::new();
        let w = params.add("w", 3, 2, vec![0.5, -0.3, 0.2, 0.8, -0.1, 0.4]);
        let xdat = vec![0.1, -0.2, 0.3, 0.5, 0.4, -0.6];
        let run = |tape: &mut Tape<'_>| -> Vec<u32> {
            let x = tape.input_slice(&xdat, 2, 3);
            let wv = tape.param(w);
            let h = tape.matmul(x, wv);
            let t = tape.tanh(h);
            let r = tape.relu(t);
            let s = tape.segment_softmax(r, &[0, 1, 2]);
            let g = tape.gather_rows_at(s, &[(0, 1), (1, 0)], 3);
            let m = tape.mean_rows(g);
            m_bits(tape, m)
        };
        fn m_bits(tape: &Tape<'_>, v: Var) -> Vec<u32> {
            tape.data(v).iter().map(|x| x.to_bits()).collect()
        }
        let cold = {
            let mut tape = Tape::new(&params);
            run(&mut tape)
        };
        let mut tape = Tape::with_workspace(&params, Workspace::new());
        let first = run(&mut tape);
        tape.reset();
        let warm_misses = tape.workspace_mut().stats().misses;
        let second = run(&mut tape);
        tape.reset();
        let final_stats = tape.workspace_mut().stats();
        assert_eq!(cold, first, "pooling changed the forward bits");
        assert_eq!(cold, second, "reset/rebuild changed the forward bits");
        assert_eq!(
            final_stats.misses, warm_misses,
            "a warm tape must not allocate fresh buffers"
        );
        let ws = tape.finish();
        assert!(ws.stats().resident > 0, "finish must return the warm pool");
    }

    #[test]
    fn sparse_ref_matches_sparse_const() {
        let sp = SparseMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, -1.0), (2, 2, 0.5)]);
        let params = Params::new();
        let xdat = vec![0.2, -0.1, 0.4, 0.3, 0.6, -0.5];
        let mut tape = Tape::new(&params);
        let x = tape.input(xdat.clone(), 3, 2);
        let owned = tape.sparse_const(&sp);
        let yo = tape.spmm_at(owned, x);
        let borrowed = tape.sparse_ref(&sp);
        let yb = tape.spmm_at(borrowed, x);
        assert_eq!(tape.data(yo), tape.data(yb));
        // Gradients flow through borrowed operators too.
        let loss = tape.sum_all(yb);
        tape.backward(loss);
        assert!(tape.grad(x).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn backward_after_reset_matches_fresh_tape() {
        let mut params = Params::new();
        let w = params.add("w", 2, 2, vec![0.3, -0.2, 0.5, 0.1]);
        let grads_of = |tape: &mut Tape<'_>| -> Vec<f32> {
            let x = tape.input_slice(&[1.0, 2.0, -0.5, 0.25], 2, 2);
            let wv = tape.param(w);
            let h = tape.matmul(x, wv);
            let loss = tape.softmax_ce(h, &[0, 1], 1.0);
            tape.backward(loss);
            tape.grads().map(|g| g.get(w).to_vec()).unwrap_or_default()
        };
        let fresh = {
            let mut tape = Tape::new(&params);
            grads_of(&mut tape)
        };
        let mut tape = Tape::new(&params);
        let _ = grads_of(&mut tape);
        tape.reset();
        let recycled = grads_of(&mut tape);
        assert_eq!(fresh, recycled, "recycled grad buffers must start zeroed");
    }

    #[test]
    fn argmax_rows_picks_max() {
        let d = vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1];
        assert_eq!(argmax_rows(&d, 2, 3), vec![1, 1]);
    }

    #[test]
    fn absorb_sums_sidecars() {
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![0.0, 0.0]);
        let run = || {
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![1.0, 2.0], 1, 2);
            let wv = tape.param(w);
            let m = tape.mul(x, wv);
            let loss = tape.sum_all(m);
            tape.backward(loss);
            tape.into_grads()
        };
        let mut a = run();
        a.absorb(&run());
        assert_eq!(a.get(w), &[2.0, 4.0]);
    }

    #[test]
    fn grad_norm_reports() {
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![0.0, 0.0]);
        let grads = {
            let mut tape = Tape::new(&params);
            let x = tape.input(vec![3.0, 4.0], 1, 2);
            let wv = tape.param(w);
            let m = tape.mul(x, wv);
            let loss = tape.sum_all(m);
            tape.backward(loss);
            tape.into_grads()
        };
        assert!((grads.grad_norm() - 5.0).abs() < 1e-5);
    }

    fn mapped_fixture(values: &[f32]) -> Arc<Mmap> {
        use std::io::Write;
        let path = std::env::temp_dir()
            .join(format!("mvgnn_storage_{}_{}.bin", std::process::id(), values.len()));
        let mut f = std::fs::File::create(&path).unwrap();
        for &x in values {
            f.write_all(&x.to_le_bytes()).unwrap();
        }
        f.sync_all().unwrap();
        let map = Arc::new(Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap());
        std::fs::remove_file(&path).ok();
        map
    }

    #[test]
    fn mapped_storage_reads_through_params_api() {
        let values = [1.5f32, -2.0, 0.25, 8.0];
        let map = mapped_fixture(&values);
        let mut params = Params::new();
        let w = params.add("w", 2, 2, vec![0.0; 4]);
        params.set_storage(w, Storage::mapped(Arc::clone(&map), 0, 4).unwrap()).unwrap();
        assert_eq!(params.data(w), &values);
        assert_eq!(params.mapped_tensor_count(), 1);

        // A tape forward pass reads the mapped values untouched.
        let mut tape = Tape::new(&params);
        let wv = tape.param(w);
        let s = tape.sum_all(wv);
        assert_eq!(tape.data(s)[0], values.iter().sum::<f32>());
    }

    #[test]
    fn mapped_storage_copies_on_write() {
        let map = mapped_fixture(&[1.0f32, 2.0]);
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![0.0; 2]);
        params.set_storage(w, Storage::mapped(map, 0, 2).unwrap()).unwrap();
        params.data_mut(w)[0] = 9.0;
        assert_eq!(params.mapped_tensor_count(), 0, "first write materialises");
        assert_eq!(params.data(w), &[9.0, 2.0]);
    }

    #[test]
    fn iter_mut_materialises_mapped_tensors() {
        let map = mapped_fixture(&[3.0f32, 4.0]);
        let mut params = Params::new();
        let w = params.add("w", 1, 2, vec![0.0; 2]);
        params.set_storage(w, Storage::mapped(map, 0, 2).unwrap()).unwrap();
        for (_, d) in params.iter_mut() {
            for x in d.iter_mut() {
                *x += 1.0;
            }
        }
        assert_eq!(params.data(w), &[4.0, 5.0]);
        assert_eq!(params.mapped_tensor_count(), 0);
    }

    #[test]
    fn mapped_view_validates_bounds_and_alignment() {
        let map = mapped_fixture(&[0.0f32; 4]);
        // Past the end of the 16-byte mapping.
        assert!(matches!(
            Storage::mapped(Arc::clone(&map), 8, 4),
            Err(ViewError::OutOfBounds { .. })
        ));
        // Offset 2 breaks f32 alignment (the map base is 64-aligned).
        assert!(matches!(
            Storage::mapped(Arc::clone(&map), 2, 1),
            Err(ViewError::Misaligned { offset: 2 })
        ));
        // Overflowing length.
        assert!(matches!(
            Storage::mapped(Arc::clone(&map), 0, usize::MAX / 2),
            Err(ViewError::OutOfBounds { .. })
        ));
        assert!(Storage::mapped(map, 4, 3).is_ok());
    }

    #[test]
    fn set_storage_rejects_shape_mismatch() {
        let mut params = Params::new();
        let w = params.add("w", 2, 3, vec![0.0; 6]);
        assert_eq!(
            params.set_storage(w, Storage::Owned(vec![0.0; 4])),
            Err(ViewError::ShapeMismatch { expected: 6, got: 4 })
        );
        assert!(params.set_storage(w, Storage::Owned(vec![1.0; 6])).is_ok());
    }
}

