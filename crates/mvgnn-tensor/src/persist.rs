//! Parameter-store persistence: a small, versioned binary format so
//! trained models can be saved and reloaded without retraining.
//!
//! Layout (little-endian):
//! `magic "MVGN" | version u32 | tensor count u32 |` then per tensor
//! `name len u32 | name bytes | rows u32 | cols u32 | f32 data`.

use crate::tape::Params;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MVGN";
const VERSION: u32 = 1;

/// Serialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The header is not a parameter file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended early or lengths are inconsistent.
    Truncated,
    /// Loaded tensors don't match the receiving store's layout.
    LayoutMismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a MVGN parameter file"),
            PersistError::BadVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::Truncated => write!(f, "truncated parameter file"),
            PersistError::LayoutMismatch(m) => write!(f, "layout mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialise every parameter tensor (values only; gradients are not
/// persisted).
pub fn save_params(params: &Params) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + params.scalar_count() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for i in 0..params.len() {
        let id = crate::tape::ParamId(i);
        let name = params.name(id);
        let (rows, cols) = params.shape(id);
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(rows as u32);
        buf.put_u32_le(cols as u32);
        for &x in params.data(id) {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Load values into an existing store with the identical layout (same
/// tensor names, order and shapes — i.e., the same model architecture).
pub fn load_params(params: &mut Params, mut bytes: &[u8]) -> Result<(), PersistError> {
    if bytes.remaining() < 12 {
        return Err(PersistError::Truncated);
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let count = bytes.get_u32_le() as usize;
    if count != params.len() {
        return Err(PersistError::LayoutMismatch(format!(
            "file has {count} tensors, store has {}",
            params.len()
        )));
    }
    for i in 0..count {
        let id = crate::tape::ParamId(i);
        if bytes.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let name_len = bytes.get_u32_le() as usize;
        if bytes.remaining() < name_len + 8 {
            return Err(PersistError::Truncated);
        }
        let mut name = vec![0u8; name_len];
        bytes.copy_to_slice(&mut name);
        let name = String::from_utf8(name)
            .map_err(|_| PersistError::LayoutMismatch("non-utf8 tensor name".into()))?;
        if name != params.name(id) {
            return Err(PersistError::LayoutMismatch(format!(
                "tensor {i}: file `{name}` vs store `{}`",
                params.name(id)
            )));
        }
        let rows = bytes.get_u32_le() as usize;
        let cols = bytes.get_u32_le() as usize;
        if (rows, cols) != params.shape(id) {
            return Err(PersistError::LayoutMismatch(format!(
                "tensor `{name}`: file {rows}×{cols} vs store {:?}",
                params.shape(id)
            )));
        }
        let n = rows * cols;
        if bytes.remaining() < n * 4 {
            return Err(PersistError::Truncated);
        }
        let dst = params.data_mut(id);
        for x in dst.iter_mut().take(n) {
            *x = bytes.get_f32_le();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn store() -> Params {
        let mut p = Params::new();
        let mut rng = init::rng(5);
        p.add("layer.w", 3, 4, init::xavier_uniform(3, 4, &mut rng));
        p.add("layer.b", 1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        p
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = store();
        let bytes = save_params(&src);
        let mut dst = store();
        // Perturb the destination first.
        for (_, d) in dst.iter_mut() {
            for x in d.iter_mut() {
                *x = -9.0;
            }
        }
        load_params(&mut dst, &bytes).unwrap();
        for i in 0..src.len() {
            let id = crate::tape::ParamId(i);
            assert_eq!(src.data(id), dst.data(id));
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut dst = store();
        assert_eq!(load_params(&mut dst, b"NOPE"), Err(PersistError::Truncated));
        assert_eq!(
            load_params(&mut dst, b"XXXXxxxxxxxxxxxx"),
            Err(PersistError::BadMagic)
        );
        let bytes = save_params(&store());
        let cut = &bytes[..bytes.len() - 3];
        assert_eq!(load_params(&mut dst, cut), Err(PersistError::Truncated));
    }

    #[test]
    fn rejects_layout_mismatch() {
        let bytes = save_params(&store());
        let mut other = Params::new();
        other.add("different", 3, 4, vec![0.0; 12]);
        other.add("layer.b", 1, 4, vec![0.0; 4]);
        match load_params(&mut other, &bytes) {
            Err(PersistError::LayoutMismatch(_)) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        let mut fewer = Params::new();
        fewer.add("layer.w", 3, 4, vec![0.0; 12]);
        assert!(matches!(
            load_params(&mut fewer, &bytes),
            Err(PersistError::LayoutMismatch(_))
        ));
    }

    #[test]
    fn version_checked() {
        let mut bytes = save_params(&store()).to_vec();
        bytes[4] = 99; // clobber version
        let mut dst = store();
        assert_eq!(load_params(&mut dst, &bytes), Err(PersistError::BadVersion(99)));
    }
}
