//! PEG construction from the CU partition and the dependence graph.

use mvgnn_graph::{DiGraph, NodeId};
use mvgnn_ir::module::{FuncId, LoopId, Module};
use mvgnn_profiler::{CuGraph, CuId, DepGraph, DepKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a PEG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PegNodeKind {
    /// A computational unit.
    Cu(CuId),
    /// A loop of a function.
    Loop(FuncId, LoopId),
    /// A function root.
    Func(FuncId),
}

/// Payload of a PEG node: the DiscoPoP `⟨ID, START, END⟩` triple plus the
/// normalised statement token used for embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PegNode {
    /// Node role.
    pub kind: PegNodeKind,
    /// Normalised display token (`load`, `bin.add`, `loop`, `func`, …).
    pub token: String,
    /// Every member statement's token (singletons repeat `token`); the
    /// embedding layer averages these so compound compute CUs keep all of
    /// their opcodes visible.
    pub tokens: Vec<String>,
    /// Synthetic source line span `(START, END)`.
    pub line_span: (u32, u32),
}

/// Edge roles in a PEG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PegEdgeKind {
    /// Register def-use between CUs.
    DefUse,
    /// Observed data dependence, with its kind.
    Dep(DepKind),
    /// Containment: function → loop/CU, loop → nested loop/CU.
    Hierarchy,
}

/// Payload of a PEG edge: the DiscoPoP `⟨SINK, TYPE, SOURCE⟩` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PegEdge {
    /// Edge role.
    pub kind: PegEdgeKind,
    /// True when the dependence was carried by some loop.
    pub carried: bool,
}

/// The full module-level PEG with lookup tables.
#[derive(Debug, Clone)]
pub struct Peg {
    /// Underlying directed multigraph.
    pub graph: DiGraph<PegNode, PegEdge>,
    /// CU → node.
    pub node_of_cu: HashMap<CuId, NodeId>,
    /// Loop → node.
    pub node_of_loop: HashMap<(FuncId, LoopId), NodeId>,
    /// Function → node.
    pub node_of_func: HashMap<FuncId, NodeId>,
}

/// The induced sub-PEG of one loop — a classification sample.
#[derive(Debug, Clone)]
pub struct SubPeg {
    /// Induced subgraph (loop node + member CUs + nested loops).
    pub graph: DiGraph<PegNode, PegEdge>,
    /// The loop's node inside `graph`.
    pub loop_node: NodeId,
    /// Owning function.
    pub func: FuncId,
    /// The loop.
    pub l: LoopId,
}

/// Build the module PEG.
pub fn build_peg(module: &Module, cus: &CuGraph, deps: &DepGraph) -> Peg {
    let mut graph: DiGraph<PegNode, PegEdge> = DiGraph::new();
    let mut node_of_cu = HashMap::new();
    let mut node_of_loop = HashMap::new();
    let mut node_of_func = HashMap::new();

    // Function roots.
    for (fi, f) in module.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        let span = f
            .insts_with_refs(func)
            .fold((u32::MAX, 0u32), |acc, (_, _, line)| (acc.0.min(line), acc.1.max(line)));
        let n = graph.add_node(PegNode {
            kind: PegNodeKind::Func(func),
            token: "func".to_string(),
            tokens: vec!["func".to_string()],
            line_span: if span.0 == u32::MAX { (0, 0) } else { span },
        });
        node_of_func.insert(func, n);
    }

    // Loop nodes.
    for (fi, f) in module.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        for info in &f.loops {
            let n = graph.add_node(PegNode {
                kind: PegNodeKind::Loop(func, info.id),
                token: "loop".to_string(),
                tokens: vec!["loop".to_string()],
                line_span: info.line_span,
            });
            node_of_loop.insert((func, info.id), n);
        }
    }

    // CU nodes (member statement tokens resolved from the module).
    for cu in &cus.cus {
        let f = &module.funcs[cu.func.index()];
        let tokens: Vec<String> = cu
            .members
            .iter()
            .map(|r| f.blocks[r.block.index()].insts[r.idx as usize].token())
            .collect();
        let n = graph.add_node(PegNode {
            kind: PegNodeKind::Cu(cu.id),
            token: cu.token.clone(),
            tokens,
            line_span: cu.line_span,
        });
        node_of_cu.insert(cu.id, n);
    }

    // Hierarchy edges: loop → parent (or function), CU → innermost loop
    // (or function). Direction is container → member.
    for (fi, f) in module.funcs.iter().enumerate() {
        let func = FuncId(fi as u32);
        for info in &f.loops {
            let child = node_of_loop[&(func, info.id)];
            let parent = match info.parent {
                Some(p) => node_of_loop[&(func, p)],
                None => node_of_func[&func],
            };
            graph.add_edge(parent, child, PegEdge { kind: PegEdgeKind::Hierarchy, carried: false });
        }
    }
    for cu in &cus.cus {
        let f = &module.funcs[cu.func.index()];
        let child = node_of_cu[&cu.id];
        // Innermost loop of the first member's block, if any.
        let container = cu
            .members
            .first()
            .and_then(|r| f.loop_of_block(r.block))
            .map(|l| node_of_loop[&(cu.func, l)])
            .unwrap_or(node_of_func[&cu.func]);
        graph.add_edge(container, child, PegEdge { kind: PegEdgeKind::Hierarchy, carried: false });
    }

    // Def-use edges between CUs.
    for &(a, b) in &cus.defuse_edges {
        graph.add_edge(
            node_of_cu[&a],
            node_of_cu[&b],
            PegEdge { kind: PegEdgeKind::DefUse, carried: false },
        );
    }

    // Dependence edges, lifted to CU level (deduplicated per kind+carried).
    let mut seen: std::collections::HashSet<(NodeId, NodeId, PegEdgeKind, bool)> =
        std::collections::HashSet::new();
    for d in deps.iter() {
        let (Some(sc), Some(tc)) = (cus.cu_of(d.src), cus.cu_of(d.dst)) else { continue };
        let (sn, tn) = (node_of_cu[&sc], node_of_cu[&tc]);
        let carried = !d.carried_by.is_empty();
        let kind = PegEdgeKind::Dep(d.kind);
        if seen.insert((sn, tn, kind, carried)) {
            graph.add_edge(sn, tn, PegEdge { kind, carried });
        }
    }

    Peg { graph, node_of_cu, node_of_loop, node_of_func }
}

/// Extract the induced sub-PEG of loop `l` in `func`: the loop node, every
/// CU whose members lie in the loop's blocks, and nested loop nodes.
pub fn loop_subpeg(
    peg: &Peg,
    module: &Module,
    cus: &CuGraph,
    func: FuncId,
    l: LoopId,
) -> SubPeg {
    let f = &module.funcs[func.index()];
    let blocks: std::collections::HashSet<_> = f.loop_blocks(l).into_iter().collect();
    let mut keep: Vec<NodeId> = vec![peg.node_of_loop[&(func, l)]];
    // Nested loops: parent chain contains l.
    for info in &f.loops {
        if info.id == l {
            continue;
        }
        let mut cur = info.parent;
        while let Some(p) = cur {
            if p == l {
                keep.push(peg.node_of_loop[&(func, info.id)]);
                break;
            }
            cur = f.loops[p.index()].parent;
        }
    }
    // Member CUs: any member instruction inside the loop's blocks.
    for cu in &cus.cus {
        if cu.func == func && cu.members.iter().any(|r| blocks.contains(&r.block)) {
            keep.push(peg.node_of_cu[&cu.id]);
        }
    }
    let (graph, remap) = peg.graph.induced_subgraph(&keep);
    let loop_node = remap[peg.node_of_loop[&(func, l)].index()].expect("loop node kept");
    SubPeg { graph, loop_node, func, l }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::FunctionBuilder;
    use mvgnn_profiler::{build_cus, profile_module};

    fn reduction_module() -> (Module, FuncId, LoopId) {
        let mut m = Module::new("red");
        let a = m.add_array("a", Ty::F64, 16);
        let s = m.add_array("s", Ty::F64, 1);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let zero = b.const_i64(0);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let cur = b.load(s, zero);
            let nxt = b.bin(BinOp::Add, cur, x);
            b.store(s, zero, nxt);
        });
        let f = b.finish();
        (m, f, l)
    }

    fn build_all(m: &Module, f: FuncId) -> (Peg, mvgnn_profiler::CuGraph) {
        let cus = build_cus(m);
        let res = profile_module(m, f, &[]).unwrap();
        let peg = build_peg(m, &cus, &res.deps);
        (peg, cus)
    }

    #[test]
    fn peg_contains_all_node_kinds() {
        let (m, f, _) = reduction_module();
        let (peg, _) = build_all(&m, f);
        let kinds: Vec<&PegNodeKind> = peg.graph.node_weights().map(|n| &n.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, PegNodeKind::Func(_))));
        assert!(kinds.iter().any(|k| matches!(k, PegNodeKind::Loop(_, _))));
        assert!(kinds.iter().any(|k| matches!(k, PegNodeKind::Cu(_))));
    }

    #[test]
    fn reduction_subpeg_has_carried_cycle() {
        let (m, f, l) = reduction_module();
        let (peg, cus) = build_all(&m, f);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        // The reduction load-s/add/store cycle: there must be a carried dep
        // edge and a def-use path back, i.e. at least one carried edge.
        let carried_edges = sub
            .graph
            .edge_ids()
            .filter(|&e| sub.graph.edge(e).carried)
            .count();
        assert!(carried_edges >= 1, "reduction sub-PEG must show a carried dep");
        // Nodes: loop + at least load, load, add-compute, store.
        assert!(sub.graph.node_count() >= 5, "{}", sub.graph.node_count());
    }

    #[test]
    fn subpeg_loop_node_is_container() {
        let (m, f, l) = reduction_module();
        let (peg, cus) = build_all(&m, f);
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        // Every hierarchy edge from the loop node points at a member.
        let out: Vec<_> = sub
            .graph
            .out_edges(sub.loop_node)
            .filter(|&e| sub.graph.edge(e).kind == PegEdgeKind::Hierarchy)
            .collect();
        assert!(!out.is_empty(), "loop node should contain members");
    }

    #[test]
    fn nested_loops_appear_in_outer_subpeg() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(4);
        let st = b.const_i64(1);
        let mut inner = None;
        let outer = b.for_loop(lo, hi, st, |b, i| {
            let lo2 = b.const_i64(0);
            let hi2 = b.const_i64(4);
            inner = Some(b.for_loop(lo2, hi2, st, |b, j| {
                let four = b.const_i64(4);
                let base = b.bin(BinOp::Mul, i, four);
                let ij = b.bin(BinOp::Add, base, j);
                let x = b.load(a, ij);
                b.store(a, ij, x);
            }));
        });
        let f = b.finish();
        let (peg, cus) = build_all(&m, f);
        let sub_outer = loop_subpeg(&peg, &m, &cus, f, outer);
        let inner_nodes = sub_outer
            .graph
            .node_weights()
            .filter(|n| matches!(n.kind, PegNodeKind::Loop(_, li) if li == inner.unwrap()))
            .count();
        assert_eq!(inner_nodes, 1, "outer sub-PEG must contain the inner loop node");
        // Inner sub-PEG must NOT contain the outer loop node.
        let sub_inner = loop_subpeg(&peg, &m, &cus, f, inner.unwrap());
        let outer_nodes = sub_inner
            .graph
            .node_weights()
            .filter(|n| matches!(n.kind, PegNodeKind::Loop(_, lo) if lo == outer))
            .count();
        assert_eq!(outer_nodes, 0);
    }

    #[test]
    fn doall_and_reduction_subpegs_differ_structurally() {
        // The premise of the structural view: the two patterns of Fig. 1
        // produce different graphs.
        let (mr, fr, lr) = reduction_module();
        let (peg_r, cus_r) = build_all(&mr, fr);
        let sub_r = loop_subpeg(&peg_r, &mr, &cus_r, fr, lr);

        let mut m = Module::new("doall");
        let a = m.add_array("a", Ty::F64, 16);
        let out = m.add_array("b", Ty::F64, 16);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(out, iv, y);
        });
        let f = b.finish();
        let (peg_d, cus_d) = build_all(&m, f);
        let sub_d = loop_subpeg(&peg_d, &m, &cus_d, f, l);

        let carried = |s: &SubPeg| s.graph.edge_ids().filter(|&e| s.graph.edge(e).carried).count();
        assert_eq!(carried(&sub_d), 0);
        assert!(carried(&sub_r) > 0);
    }

    #[test]
    fn dep_edges_are_deduplicated() {
        let (m, f, _) = reduction_module();
        let (peg, _) = build_all(&m, f);
        let mut seen = std::collections::HashSet::new();
        for e in peg.graph.edge_ids() {
            let (s, t) = peg.graph.endpoints(e);
            let w = peg.graph.edge(e);
            if let PegEdgeKind::Dep(k) = w.kind {
                assert!(
                    seen.insert((s, t, k, w.carried)),
                    "duplicate dep edge {s:?}->{t:?} {k:?}"
                );
            }
        }
    }
}
