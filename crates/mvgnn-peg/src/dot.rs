//! Graphviz DOT export for PEGs (paper Fig. 5 style).

use crate::build::{PegEdge, PegEdgeKind, PegNode, PegNodeKind};
use mvgnn_graph::DiGraph;
use mvgnn_profiler::DepKind;
use std::fmt::Write as _;

/// Render a PEG (or sub-PEG) as Graphviz DOT. Loop and function nodes are
/// boxes, CUs are ellipses; dependence edges are coloured by kind and
/// carried dependences are drawn bold.
pub fn to_dot(g: &DiGraph<PegNode, PegEdge>) -> String {
    let mut s = String::from("digraph peg {\n  rankdir=TB;\n  node [fontsize=10];\n");
    for n in g.node_ids() {
        let w = g.node(n);
        let (shape, label) = match w.kind {
            PegNodeKind::Func(f) => ("box", format!("func f{}", f.0)),
            PegNodeKind::Loop(f, l) => (
                "box",
                format!("loop f{}:l{} [{}..{}]", f.0, l.0, w.line_span.0, w.line_span.1),
            ),
            PegNodeKind::Cu(c) => (
                "ellipse",
                format!("cu{} {} [{}..{}]", c.0, w.token, w.line_span.0, w.line_span.1),
            ),
        };
        let _ = writeln!(s, "  n{} [shape={shape}, label=\"{label}\"];", n.0);
    }
    for e in g.edge_ids() {
        let (a, b) = g.endpoints(e);
        let w = g.edge(e);
        let (color, style, label) = match w.kind {
            PegEdgeKind::Hierarchy => ("gray", "dashed", String::new()),
            PegEdgeKind::DefUse => ("black", "solid", "du".to_string()),
            PegEdgeKind::Dep(k) => {
                let color = match k {
                    DepKind::Raw => "red",
                    DepKind::War => "blue",
                    DepKind::Waw => "purple",
                };
                (color, if w.carried { "bold" } else { "solid" }, k.to_string())
            }
        };
        let _ = writeln!(
            s,
            "  n{} -> n{} [color={color}, style={style}, label=\"{label}\"];",
            a.0, b.0
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_peg, loop_subpeg};
    use mvgnn_ir::inst::BinOp;
    use mvgnn_ir::types::Ty;
    use mvgnn_ir::{FunctionBuilder, Module};
    use mvgnn_profiler::{build_cus, profile_module};

    #[test]
    fn dot_output_is_well_formed() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let st = b.const_i64(1);
        let l = b.for_loop(lo, hi, st, |b, iv| {
            let x = b.load(a, iv);
            let y = b.bin(BinOp::Mul, x, x);
            b.store(a, iv, y);
        });
        let f = b.finish();
        let cus = build_cus(&m);
        let res = profile_module(&m, f, &[]).unwrap();
        let peg = build_peg(&m, &cus, &res.deps);
        let dot = to_dot(&peg.graph);
        assert!(dot.starts_with("digraph peg {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("loop f0:l0"));
        assert!(dot.contains("shape=ellipse"));
        // Sub-PEG renders too and is smaller.
        let sub = loop_subpeg(&peg, &m, &cus, f, l);
        let sub_dot = to_dot(&sub.graph);
        assert!(sub_dot.len() < dot.len());
        assert!(sub_dot.matches("->").count() >= 3);
    }
}
