//! # mvgnn-peg — Program Execution Graphs
//!
//! Assembles the paper's PEG (Fig. 2 / Fig. 5): computational units,
//! loops and functions become nodes; register def-use, dynamic data
//! dependences (RAW/WAR/WAW) and containment become edges. Each loop's
//! induced sub-PEG is one classification sample for the MV-GNN model.

pub mod build;
pub mod dot;

pub use build::{build_peg, loop_subpeg, Peg, PegEdge, PegEdgeKind, PegNode, PegNodeKind, SubPeg};
pub use dot::to_dot;
