//! Admission control: a token limiter that sheds load instead of
//! queueing it unboundedly.
//!
//! Every request holds one token from admission to completion (queued
//! *and* executing), so `capacity` bounds the total outstanding work of
//! the service. When the tokens run out, [`Limiter::try_acquire`]
//! returns a typed [`ServeError::Overloaded`] whose `retry_after` is an
//! honest estimate of the backlog drain time: current in-flight count ×
//! an EWMA of the recently observed per-request service time. The
//! batcher feeds that EWMA after every dispatched micro-batch, so the
//! hint tracks the actual serving rate, batched or not.

use crate::response::ServeError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fixed-point scale of the EWMA (µs × 1024), so sub-microsecond
/// per-request times survive integer storage.
const EWMA_SCALE: u64 = 1024;

/// EWMA smoothing: `new = old + (obs - old) / EWMA_DECAY`.
const EWMA_DECAY: u64 = 8;

/// Token-based admission limiter with shed accounting.
#[derive(Debug)]
pub struct Limiter {
    capacity: usize,
    inflight: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    /// EWMA of per-request service time, in µs × [`EWMA_SCALE`].
    ewma_service: AtomicU64,
}

/// Point-in-time counters of a [`Limiter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LimiterStats {
    /// Requests currently holding a token.
    pub inflight: usize,
    /// Tokens ever granted.
    pub admitted: u64,
    /// Requests shed for want of a token.
    pub shed: u64,
}

impl Limiter {
    /// A limiter with `capacity` tokens. Zero capacity admits nothing —
    /// [`crate::ServeConfig::validate`] rejects it upstream.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inflight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            // Seed the estimate at 100 µs so the very first shed still
            // carries a plausible, non-zero retry hint.
            ewma_service: AtomicU64::new(100 * EWMA_SCALE),
        }
    }

    /// Acquire a token or shed with a typed overload response.
    pub fn try_acquire(self: &Arc<Self>) -> Result<Permit, ServeError> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after: self.retry_after(cur),
                    inflight: cur,
                });
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Permit { limiter: Arc::clone(self) });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Estimated drain time of `backlog` outstanding requests at the
    /// observed service rate.
    pub fn retry_after(&self, backlog: usize) -> Duration {
        let per_req_us = self.ewma_service.load(Ordering::Relaxed) / EWMA_SCALE;
        Duration::from_micros(per_req_us.saturating_mul(backlog.max(1) as u64).max(1))
    }

    /// Feed the service-time estimate: `n` requests were served in
    /// `elapsed` (one micro-batch, or one frontend request with `n = 1`).
    pub fn observe(&self, n: usize, elapsed: Duration) {
        if n == 0 {
            return;
        }
        let obs = (elapsed.as_micros() as u64).saturating_mul(EWMA_SCALE) / n as u64;
        let mut cur = self.ewma_service.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                obs
            } else {
                // Signed update without casts going out of range.
                let step = (obs as i64 - cur as i64) / EWMA_DECAY as i64;
                (cur as i64 + step).max(1) as u64
            };
            match self.ewma_service.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> LimiterStats {
        LimiterStats {
            inflight: self.inflight.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// Total token capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An admission token; dropping it releases the slot.
#[derive(Debug)]
pub struct Permit {
    limiter: Arc<Limiter>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.limiter.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_past_capacity_and_releases_on_drop() {
        let lim = Arc::new(Limiter::new(2));
        let a = lim.try_acquire().unwrap();
        let b = lim.try_acquire().unwrap();
        match lim.try_acquire() {
            Err(ServeError::Overloaded { retry_after, inflight }) => {
                assert_eq!(inflight, 2);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected overload, got {other:?}"),
        }
        assert_eq!(lim.stats().shed, 1);
        drop(a);
        let c = lim.try_acquire().unwrap();
        drop(b);
        drop(c);
        assert_eq!(lim.stats().inflight, 0);
        assert_eq!(lim.stats().admitted, 3);
    }

    #[test]
    fn ewma_tracks_observed_service_time() {
        let lim = Arc::new(Limiter::new(4));
        for _ in 0..64 {
            lim.observe(32, Duration::from_micros(32_000)); // 1 ms per request
        }
        let hint = lim.retry_after(10);
        assert!(
            hint >= Duration::from_micros(5_000) && hint <= Duration::from_millis(50),
            "{hint:?}"
        );
    }
}
