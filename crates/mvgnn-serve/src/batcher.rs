//! Deadline-bounded micro-batching: the queue, the flush state machine,
//! and the completion slots.
//!
//! Concurrently-arriving single-loop requests land in one bounded
//! submission queue. A worker seeds a batch with the first arrival, then
//! holds the flush open while the batch fills — releasing it on
//! whichever comes first of `max_batch` requests, `max_delay` elapsed
//! since the seed, or shutdown. A burst of singles therefore gets
//! batch-width throughput, while an isolated request pays at most
//! `max_delay` of idle latency.
//!
//! Deadlines propagate: requests found expired when a batch is drained
//! are completed with [`ServeError::DeadlineExceeded`] *before* dispatch,
//! so dead work never occupies a batch slot. A dispatch panic is caught
//! at this boundary and fails only the requests of that batch — the
//! worker, the queue, and every other client stay live.

use crate::deadline::Deadline;
use crate::limiter::{Limiter, Permit};
use crate::response::{
    classification_from_checked, Classification, DeadlineStage, ServeError, ServeResult,
};
use mvgnn_core::{InferenceEngine, ModelGeneration};
use mvgnn_embed::GraphSample;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One-shot completion slot a client blocks on.
pub(crate) struct Slot {
    state: Mutex<Option<ServeResult<Classification>>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { state: Mutex::new(None), cv: Condvar::new() })
    }

    /// Deliver the result and wake the waiting client.
    pub(crate) fn fulfil(&self, result: ServeResult<Classification>) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *st = Some(result);
        self.cv.notify_all();
    }

    /// Block until the result arrives and take it. Liveness holds because
    /// every admitted request is completed by a worker — with an answer,
    /// a typed expiry, or a typed internal fault.
    pub(crate) fn wait(&self) -> ServeResult<Classification> {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// An admitted single-loop request travelling through the queue. The
/// admission [`Permit`] rides along and is released when the request is
/// completed (the whole struct drops after `fulfil`).
pub(crate) struct Request {
    pub(crate) sample: Arc<GraphSample>,
    pub(crate) deadline: Deadline,
    pub(crate) enqueued: Instant,
    pub(crate) slot: Arc<Slot>,
    /// Weight generation captured at admission: the request is answered
    /// by exactly these weights even if the registry swaps while it is
    /// queued.
    pub(crate) generation: Arc<ModelGeneration>,
    #[allow(dead_code)] // held for its Drop (token release at completion)
    pub(crate) permit: Permit,
}

/// Dispatch counters of the batching layer (all monotonic).
#[derive(Debug, Default)]
pub(crate) struct BatchCounters {
    /// Micro-batches dispatched.
    pub batches: AtomicU64,
    /// Requests served through dispatched batches.
    pub batched_requests: AtomicU64,
    /// Requests dropped at drain time because their deadline had passed.
    pub expired: AtomicU64,
    /// Dispatch panics caught and converted to typed internal faults.
    pub panics_caught: AtomicU64,
}

/// The shared micro-batching state: bounded queue + flush parameters.
pub(crate) struct Batcher {
    pub(crate) queue: Mutex<VecDeque<Request>>,
    pub(crate) arrived: Condvar,
    pub(crate) max_batch: usize,
    pub(crate) max_delay: std::time::Duration,
    pub(crate) max_queue: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) counters: BatchCounters,
}

impl Batcher {
    pub(crate) fn new(
        max_batch: usize,
        max_delay: std::time::Duration,
        max_queue: usize,
    ) -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(max_queue.min(4096))),
            arrived: Condvar::new(),
            max_batch,
            max_delay,
            max_queue,
            shutdown: AtomicBool::new(false),
            counters: BatchCounters::default(),
        }
    }

    /// Current submission-queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Begin draining: refuse new work and wake every parked worker.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.arrived.notify_all();
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Worker loop: seed → fill-until-flush → drain → dispatch → fulfil.
/// Runs until shutdown *and* an empty queue, so admitted requests are
/// answered even when they arrive just before the drain begins. Each
/// dispatched batch feeds the limiter's service-time EWMA, keeping the
/// shed response's `retry_after` hint tied to the observed rate.
pub(crate) fn worker_loop(batcher: &Batcher, engine: &InferenceEngine, limiter: &Limiter) {
    loop {
        let mut q = batcher.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Phase 1 — wait for a seed request (or a finished shutdown).
        while q.is_empty() {
            if batcher.shutting_down() {
                return;
            }
            q = batcher.arrived.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Phase 2 — hold the flush open while the batch fills. The delay
        // clock starts at the seed, not per arrival, so a trickle cannot
        // hold a batch open indefinitely. Shutdown flushes immediately.
        let flush_at = Instant::now() + batcher.max_delay;
        while q.len() < batcher.max_batch && !batcher.shutting_down() {
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            let (nq, _) = batcher
                .arrived
                .wait_timeout(q, flush_at - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = nq;
        }
        // Phase 3 — drain up to `max_batch` live requests; expired ones
        // are pulled aside so they never occupy a batch slot.
        let mut batch: Vec<Request> = Vec::with_capacity(batcher.max_batch);
        let mut expired: Vec<Request> = Vec::new();
        while batch.len() < batcher.max_batch {
            match q.pop_front() {
                Some(r) if r.deadline.expired() => expired.push(r),
                Some(r) => batch.push(r),
                None => break,
            }
        }
        drop(q);
        if !expired.is_empty() {
            batcher.counters.expired.fetch_add(expired.len() as u64, Ordering::Relaxed);
            for r in expired {
                r.slot.fulfil(Err(ServeError::DeadlineExceeded {
                    stage: DeadlineStage::Queued,
                }));
            }
        }
        if batch.is_empty() {
            continue;
        }
        dispatch(batcher, engine, limiter, batch);
    }
}

/// Run one drained micro-batch and fulfil its slots. Panics from the
/// execution stack are converted into per-request
/// [`ServeError::Internal`] responses.
///
/// A drain that straddles a hot-swap can contain requests pinned to
/// different weight generations; they are split into consecutive
/// same-generation groups and each group runs on the weights it was
/// admitted under. In steady state the whole drain is one group, so the
/// split costs one `Arc::ptr_eq` per request.
fn dispatch(
    batcher: &Batcher,
    engine: &InferenceEngine,
    limiter: &Limiter,
    mut batch: Vec<Request>,
) {
    let dispatched = Instant::now();
    let fill = batch.len();
    batcher.counters.batches.fetch_add(1, Ordering::Relaxed);
    batcher.counters.batched_requests.fetch_add(fill as u64, Ordering::Relaxed);
    while !batch.is_empty() {
        let split = batch
            .iter()
            .position(|r| !Arc::ptr_eq(&r.generation, &batch[0].generation))
            .unwrap_or(batch.len());
        let rest = batch.split_off(split);
        run_group(engine, batcher, dispatched, batch);
        batch = rest;
    }
    limiter.observe(fill, dispatched.elapsed());
}

/// Execute one same-generation group of a drained batch.
fn run_group(
    engine: &InferenceEngine,
    batcher: &Batcher,
    dispatched: Instant,
    group: Vec<Request>,
) {
    let fill = group.len();
    let generation = Arc::clone(&group[0].generation);
    let refs: Vec<&GraphSample> = group.iter().map(|r| &*r.sample).collect();
    let outcome =
        catch_unwind(AssertUnwindSafe(|| engine.classify_batch_on(&generation.model, &refs)));
    drop(refs);
    match outcome {
        Ok(rows) => {
            for (row, req) in rows.into_iter().zip(group) {
                let queued = dispatched.saturating_duration_since(req.enqueued);
                req.slot.fulfil(Ok(classification_from_checked(
                    row,
                    fill,
                    queued,
                    generation.census.clone(),
                )));
            }
        }
        Err(payload) => {
            batcher.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
            let msg = panic_message(&payload);
            for req in group {
                req.slot.fulfil(Err(ServeError::Internal(msg.clone())));
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
