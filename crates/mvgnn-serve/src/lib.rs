//! # mvgnn-serve — overload-safe inference service
//!
//! The long-running front door over the in-process classifier (see
//! DESIGN.md §12): concurrently-arriving single-loop requests are
//! coalesced into packed [`GraphBatch`](mvgnn_embed::GraphBatch)es by a
//! **deadline-bounded micro-batcher** (flush on `max_batch` requests or
//! `max_delay` elapsed, whichever first), so a burst of singles gets
//! batch-width throughput without an idle-latency penalty. Overload is
//! handled by **admission control** — a token limiter plus a bounded
//! submission queue that shed with a typed
//! [`ServeError::Overloaded`] (carrying a rate-derived `retry_after`
//! hint) instead of queueing unboundedly — and **deadline propagation**:
//! requests found expired when a batch is drained are dropped before
//! they can waste a batch slot.
//!
//! Faults surface as values, never as panics: malformed sources are
//! [`ServeError::Compile`], shape mismatches are
//! [`ServeError::Rejected`], a damaged model degrades per-request
//! through the same view ladder as [`mvgnn_core::classify_module`], and
//! a dispatch panic is caught at the service boundary and returned as
//! [`ServeError::Internal`] to that batch alone. The [`chaos`] module
//! turns the seed-keyed [`FaultPlan`](mvgnn_core::FaultPlan) injectors
//! into whole-service storms (Poisson/bursty arrivals × malformed
//! sources × starved budgets × poisoned weights) whose census the tests
//! and the `mvgnn-bench serve` gate assert liveness, bounded p99, and
//! zero panics over.

mod batcher;
pub mod chaos;
pub mod deadline;
pub mod limiter;
pub mod response;
pub mod server;

pub use chaos::{run_chaos, ChaosConfig, ChaosInputs, ChaosReport};
pub use deadline::Deadline;
pub use limiter::{Limiter, LimiterStats, Permit};
pub use response::{
    classification_from_checked, Classification, DeadlineStage, ModuleClassification,
    ServeError, ServeResult,
};
pub use server::{Frontend, ServeConfig, ServeStats, Server, Ticket};

// Re-exported so clients can read a response's census without a direct
// mvgnn-core dependency.
pub use mvgnn_core::{LoadMode, ModelRegistry, RegistryCensus};
