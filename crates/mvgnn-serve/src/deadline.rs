//! Per-request deadlines, propagated from admission to dispatch.
//!
//! A [`Deadline`] is an absolute wall-clock point (or "none"): it is
//! fixed when the client builds the request, travels with the request
//! through the submission queue, and is re-checked at every stage that
//! could otherwise spend work on an answer nobody is waiting for —
//! admission, the in-queue expiry sweep when a micro-batch is drained,
//! and the frontend path's inter-stage checks.

use std::time::{Duration, Instant};

/// An absolute per-request deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: the request waits as long as it takes.
    pub fn none() -> Self {
        Self { at: None }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self { at: Instant::now().checked_add(budget) }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Self { at: Some(at) }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left before expiry: `None` means unbounded, `Some(0)` means
    /// already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_live() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }
}
