//! Typed responses of the serving layer.
//!
//! Everything the service can do to a request is a value in this module:
//! overload is [`ServeError::Overloaded`] with a retry hint, a missed
//! deadline is [`ServeError::DeadlineExceeded`] tagged with the stage
//! that noticed it, malformed input is [`ServeError::Compile`] /
//! [`ServeError::Rejected`], and a degraded-but-answered request is a
//! healthy [`Classification`] whose [`PredictionSource`] says which view
//! the verdict came from. Panics are not part of the vocabulary: a
//! dispatch panic is caught at the service boundary and surfaced as
//! [`ServeError::Internal`].

use mvgnn_analyze::{Fact, LoopPlan, OracleReport, Verdict};
use mvgnn_core::infer::LoopReport;
use mvgnn_core::model::CheckedPrediction;
use mvgnn_core::{DecidedBy, PredictionSource, RegistryCensus};
use std::time::Duration;

/// Result alias for every service entry point.
pub type ServeResult<T> = Result<T, ServeError>;

/// Stage at which a request's deadline was found expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// Expired before the request was admitted.
    Admission,
    /// Expired while waiting in the submission queue; dropped at drain
    /// time, before it could waste a batch slot.
    Queued,
    /// Expired between frontend stages (compile / profile / classify).
    Frontend,
}

/// Everything that can go wrong with a request, as a value.
#[derive(Debug)]
pub enum ServeError {
    /// The service is saturated; the request was shed without queueing.
    /// `retry_after` estimates when the backlog will have drained.
    Overloaded {
        /// Estimated drain time of the current backlog.
        retry_after: Duration,
        /// Requests queued or executing at shed time.
        inflight: usize,
    },
    /// The request's deadline passed before an answer was produced.
    DeadlineExceeded {
        /// Which stage noticed the expiry.
        stage: DeadlineStage,
    },
    /// The request was structurally unusable (dimension mismatch, no
    /// entry function, frontend not configured, …).
    Rejected(String),
    /// Source-path request failed to compile — the malformed-input
    /// degradation of the frontend, typed instead of panicking.
    Compile(mvgnn_lang::CompileError),
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// A dispatch panic was caught at the service boundary; the payload
    /// is its message. Request paths are designed to never produce this.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after, inflight } => write!(
                f,
                "overloaded ({inflight} in flight); retry after {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded ({stage:?})")
            }
            ServeError::Rejected(why) => write!(f, "rejected: {why}"),
            ServeError::Compile(e) => write!(f, "compile error: {e}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal fault: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

/// A classified single-loop request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Predicted class (1 = parallelisable; 0 under conservative
    /// degradation).
    pub prediction: usize,
    /// Which view produced the verdict — [`PredictionSource::Multi`] on
    /// the healthy path, a single view or conservative serial when the
    /// model is damaged.
    pub source: PredictionSource,
    /// Why the request was degraded, when it was.
    pub diagnostic: Option<String>,
    /// Requests coalesced into the micro-batch that served this one
    /// (1 = it ran alone).
    pub batched_with: usize,
    /// Time spent in the submission queue before dispatch.
    pub queued: Duration,
    /// Which cascade tier was final: the tier-0 oracle answers at submit
    /// time without touching the micro-batcher, everything else is the
    /// GNN tier.
    pub decided_by: DecidedBy,
    /// The oracle's dependence facts when tier 0 decided this request
    /// (`None` when the GNN answered).
    pub oracle_facts: Option<Vec<Fact>>,
    /// The rendered OpenMP-style pragma of the parallelization plan,
    /// when the request came with a proved [`LoopPlan`]
    /// ([`Server::submit_planned`](crate::Server::submit_planned)).
    /// `None` on the GNN path (learned verdicts carry no proof) and on
    /// the report-only oracle path (a bare report has no rendered plan).
    pub pragma: Option<String>,
    /// Which model generation answered: the registry census captured at
    /// admission time, so a hot-swap mid-flight is visible per response.
    pub census: RegistryCensus,
}

impl Classification {
    /// Build the tier-0 answer for an oracle-decided request.
    ///
    /// The verdict must be definite — call [`mvgnn_core::oracle_decision`]
    /// first; passing an `Unknown` report here is a logic error and is
    /// answered conservatively serial with a diagnostic rather than a
    /// panic.
    pub fn from_oracle(report: &OracleReport, census: RegistryCensus) -> Classification {
        Self::tier0(report.verdict, report.facts.clone(), None, census)
    }

    /// Build the tier-0 answer for a request carrying a parallelization
    /// plan. A [`LoopPlan`] embeds its backing verdict and fact list, so
    /// this is [`Self::from_oracle`] plus the rendered pragma; the same
    /// definiteness contract applies ([`LoopPlan::proved`] must hold).
    pub fn from_plan(plan: &LoopPlan, census: RegistryCensus) -> Classification {
        Self::tier0(plan.verdict, plan.facts.clone(), Some(plan.pragma.clone()), census)
    }

    fn tier0(
        verdict: Verdict,
        facts: Vec<Fact>,
        pragma: Option<String>,
        census: RegistryCensus,
    ) -> Classification {
        let (prediction, diagnostic) = match verdict {
            Verdict::ProvablyParallel => (1, None),
            Verdict::ProvablyDependent => (0, None),
            Verdict::Unknown => {
                (0, Some("oracle verdict was Unknown; answering conservatively".to_string()))
            }
        };
        Classification {
            prediction,
            source: PredictionSource::Oracle,
            diagnostic,
            batched_with: 0,
            queued: Duration::ZERO,
            decided_by: DecidedBy::Oracle,
            oracle_facts: Some(facts),
            pragma,
            census,
        }
    }
}

/// A classified source-program (module) request.
#[derive(Debug, Clone)]
pub struct ModuleClassification {
    /// Per-loop reports, with the per-loop degradation of
    /// [`mvgnn_core::classify_module`].
    pub reports: Vec<LoopReport>,
}

/// Map one checked micro-batch row onto the response vocabulary with the
/// same preference ladder as [`mvgnn_core::classify_module`]: fused →
/// node → structural → conservative serial, each step annotated with why
/// the preferred view was refused.
pub fn classification_from_checked(
    checked: CheckedPrediction,
    batched_with: usize,
    queued: Duration,
    census: RegistryCensus,
) -> Classification {
    let candidates = [
        (checked.fused, PredictionSource::Multi),
        (checked.node, PredictionSource::NodeOnly),
        (checked.structural, PredictionSource::StructOnly),
    ];
    match candidates.iter().find_map(|(p, s)| p.map(|p| (p, *s))) {
        Some((prediction, source)) => Classification {
            prediction,
            source,
            diagnostic: (source != PredictionSource::Multi)
                .then(|| "non-finite logits in the preferred view".to_string()),
            batched_with,
            queued,
            decided_by: DecidedBy::Gnn,
            oracle_facts: None,
            pragma: None,
            census,
        },
        None => Classification {
            prediction: 0,
            source: PredictionSource::ConservativeSerial,
            diagnostic: Some("non-finite logits in every view".into()),
            batched_with,
            queued,
            decided_by: DecidedBy::Gnn,
            oracle_facts: None,
            pragma: None,
            census,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (
                ServeError::Overloaded {
                    retry_after: Duration::from_millis(5),
                    inflight: 12,
                },
                "overloaded",
            ),
            (
                ServeError::DeadlineExceeded { stage: DeadlineStage::Queued },
                "deadline",
            ),
            (ServeError::Rejected("dimension mismatch".into()), "rejected"),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::Internal("panic".into()), "internal"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e:?}");
        }
    }

    fn test_census() -> RegistryCensus {
        RegistryCensus {
            generation: 0,
            source: "test".to_string(),
            load_mode: mvgnn_core::LoadMode::Eager,
        }
    }

    #[test]
    fn degradation_ladder_prefers_fused_then_views() {
        let q = Duration::ZERO;
        let all = CheckedPrediction { fused: Some(1), node: Some(0), structural: Some(0) };
        let c = classification_from_checked(all, 4, q, test_census());
        assert_eq!((c.prediction, c.source), (1, PredictionSource::Multi));
        assert!(c.diagnostic.is_none());

        let node_only =
            CheckedPrediction { fused: None, node: Some(1), structural: Some(0) };
        let c = classification_from_checked(node_only, 4, q, test_census());
        assert_eq!((c.prediction, c.source), (1, PredictionSource::NodeOnly));
        assert!(c.diagnostic.is_some());

        let nothing = CheckedPrediction { fused: None, node: None, structural: None };
        let c = classification_from_checked(nothing, 4, q, test_census());
        assert_eq!(
            (c.prediction, c.source),
            (0, PredictionSource::ConservativeSerial)
        );
        assert!(c.diagnostic.is_some());
        assert_eq!(c.census, test_census());
    }

    #[test]
    fn planned_tier0_answers_carry_the_pragma() {
        let plan = LoopPlan {
            plan: mvgnn_analyze::Plan::DoAll { private: Vec::new() },
            verdict: Verdict::ProvablyParallel,
            facts: Vec::new(),
            pragma: "#pragma omp parallel for".to_string(),
        };
        let c = Classification::from_plan(&plan, test_census());
        assert_eq!(c.prediction, 1);
        assert_eq!(c.decided_by, DecidedBy::Oracle);
        assert_eq!(c.pragma.as_deref(), Some("#pragma omp parallel for"));
        assert!(c.oracle_facts.is_some());

        // The GNN path never invents a pragma.
        let gnn = classification_from_checked(
            CheckedPrediction { fused: Some(1), node: Some(1), structural: Some(1) },
            1,
            Duration::ZERO,
            test_census(),
        );
        assert!(gnn.pragma.is_none());
    }
}
