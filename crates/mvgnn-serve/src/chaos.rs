//! Chaos harness: seed-keyed fault + load storms against a live
//! [`Server`].
//!
//! The harness extends the deterministic [`FaultPlan`] injectors of
//! `mvgnn-core` to the service boundary: Poisson/bursty arrival storms
//! ([`FaultPlan::poisson_interarrival_micros`] /
//! [`FaultPlan::bursty_interarrival_micros`]), malformed sources
//! (truncation and mangling), and starved interpreter budgets, optionally
//! against a weight-poisoned model. Every client decision — gap lengths,
//! which requests go through the source path, which of those are
//! malformed — derives from `(seed, client, request index)` alone, so a
//! failing storm replays bit-for-bit.
//!
//! The harness asserts nothing itself; it returns a [`ChaosReport`]
//! census (typed outcome counts + completion-latency percentiles) for
//! the caller to judge. The invariants the repo's tests and the
//! `mvgnn-bench serve --smoke` gate check on top: every submission is
//! accounted for by a typed outcome (liveness), `panics == 0`, overload
//! sheds rather than queueing unboundedly, and p99 of answered requests
//! stays bounded.

use crate::deadline::Deadline;
use crate::response::ServeError;
use crate::server::{Server, Ticket};
use mvgnn_analyze::OracleReport;
use mvgnn_core::{DecidedBy, FaultPlan};
use mvgnn_embed::GraphSample;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the storm throws at the service.
pub struct ChaosInputs {
    /// Featurised loop samples for the micro-batched path.
    pub samples: Vec<Arc<GraphSample>>,
    /// Source programs for the frontend path (possibly mutated per
    /// request).
    pub sources: Vec<String>,
    /// Tier-0 oracle reports aligned index-for-index with `samples`
    /// (`None` entries and a short/empty vector mean "no report": the
    /// request rides the micro-batcher). Reports with a definite verdict
    /// are answered at submit time and tallied as `oracle_decided`.
    pub oracles: Vec<Option<Arc<OracleReport>>>,
}

/// Storm shape and fault mix.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; every client derives its own plan from it.
    pub seed: u64,
    /// Concurrent open-loop clients.
    pub clients: usize,
    /// Requests each client fires.
    pub requests_per_client: usize,
    /// Mean arrival rate per client (requests/sec).
    pub rate_per_client: f64,
    /// Arrivals per volley: 1 = pure Poisson, >1 = bursty storm.
    pub burst: usize,
    /// Per-request deadline budget.
    pub deadline: Duration,
    /// Fraction of requests routed through the source frontend
    /// (requires a frontend-enabled server and non-empty `sources`).
    pub source_frac: f64,
    /// Fraction of source-path requests whose program is truncated or
    /// mangled before submission.
    pub malformed_frac: f64,
    /// Starve the interpreter budget of source-path requests.
    pub starved_budget: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xc4a05,
            clients: 4,
            requests_per_client: 64,
            rate_per_client: 2_000.0,
            burst: 1,
            deadline: Duration::from_millis(250),
            source_frac: 0.0,
            malformed_frac: 0.0,
            starved_budget: false,
        }
    }
}

/// Typed-outcome census of one storm. `submitted` equals the sum of all
/// outcome buckets — a request the census cannot account for would mean
/// a hung client, i.e. a liveness violation.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Requests fired (both paths).
    pub submitted: u64,
    /// Sample-path answers served by the healthy fused head.
    pub ok: u64,
    /// Sample-path answers served by a degraded view (typed, not
    /// panicked).
    pub degraded: u64,
    /// Sample-path answers decided by the tier-0 oracle at submit time
    /// (never occupied a batch slot).
    pub oracle_decided: u64,
    /// Source-path requests that came back with per-loop reports.
    pub module_ok: u64,
    /// Degraded per-loop reports inside those answers.
    pub module_degraded_loops: u64,
    /// Requests shed with a typed overload response.
    pub shed: u64,
    /// Requests that ran out of deadline (admission or in-queue).
    pub expired: u64,
    /// Malformed sources refused with a typed compile error.
    pub compile_errors: u64,
    /// Structurally unusable requests refused.
    pub rejected: u64,
    /// Requests refused because the server was draining.
    pub shutdown: u64,
    /// Caught-panic internal faults observed by clients. Zero-panic
    /// storms require this to be 0 (and [`Server::stats`]'s
    /// `panics_caught` agrees).
    pub internal: u64,
    /// Wall-clock duration of the storm.
    pub wall: Duration,
    /// Completion-latency percentiles of answered sample-path requests.
    pub p50: Duration,
    /// 99th percentile of the same.
    pub p99: Duration,
    /// Worst observed completion latency.
    pub max_latency: Duration,
    /// Answered sample-path requests per wall-clock second.
    pub answered_qps: f64,
}

impl ChaosReport {
    /// Requests accounted for by some typed outcome.
    pub fn accounted(&self) -> u64 {
        self.ok
            + self.degraded
            + self.oracle_decided
            + self.module_ok
            + self.shed
            + self.expired
            + self.compile_errors
            + self.rejected
            + self.shutdown
            + self.internal
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    degraded: u64,
    oracle_decided: u64,
    module_ok: u64,
    module_degraded_loops: u64,
    shed: u64,
    expired: u64,
    compile_errors: u64,
    rejected: u64,
    shutdown: u64,
    internal: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn count_error(&mut self, e: &ServeError) {
        match e {
            ServeError::Overloaded { .. } => self.shed += 1,
            ServeError::DeadlineExceeded { .. } => self.expired += 1,
            ServeError::Compile(_) => self.compile_errors += 1,
            ServeError::Rejected(_) => self.rejected += 1,
            ServeError::ShuttingDown => self.shutdown += 1,
            ServeError::Internal(_) => self.internal += 1,
        }
    }

    fn merge(&mut self, other: Tally) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.oracle_decided += other.oracle_decided;
        self.module_ok += other.module_ok;
        self.module_degraded_loops += other.module_degraded_loops;
        self.shed += other.shed;
        self.expired += other.expired;
        self.compile_errors += other.compile_errors;
        self.rejected += other.rejected;
        self.shutdown += other.shutdown;
        self.internal += other.internal;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Mutate a source program per the plan: even selections truncate it
/// mid-token, odd ones delete a span and swap characters.
fn malform(plan: &FaultPlan, src: &str, i: u64) -> String {
    if i.is_multiple_of(2) {
        plan.truncate_source(src, 0.25 + (i % 5) as f64 * 0.15)
    } else {
        plan.mangle_source(src)
    }
}

/// Drive one deterministic storm against `server` and return the census.
///
/// Each client is open-loop on the sample path (submission decoupled
/// from completion through a per-client collector thread, so arrivals
/// keep their Poisson shape under backpressure) and closed-loop on the
/// heavyweight source path. Completion latency is measured by the
/// collector at answer time, in submission order.
pub fn run_chaos(server: &Server, inputs: &ChaosInputs, cfg: &ChaosConfig) -> ChaosReport {
    let started = Instant::now();
    let mut total = Tally::default();
    let mut submitted = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..cfg.clients {
            handles.push(scope.spawn(move || client_loop(server, inputs, cfg, client)));
        }
        for h in handles {
            match h.join() {
                Ok((fired, tally)) => {
                    submitted += fired;
                    total.merge(tally);
                }
                Err(payload) => {
                    // A dead client is a harness fault, not a service
                    // fault; surface it as an internal outcome so the
                    // census (and the zero-panic assertion) catches it.
                    total.internal += 1;
                    let _ = payload;
                }
            }
        }
    });
    let wall = started.elapsed();
    total.latencies_us.sort_unstable();
    let pct = |p: f64| -> Duration {
        if total.latencies_us.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((total.latencies_us.len() as f64 - 1.0) * p).round() as usize;
        Duration::from_micros(total.latencies_us[idx])
    };
    let answered = total.latencies_us.len() as u64;
    ChaosReport {
        submitted,
        ok: total.ok,
        degraded: total.degraded,
        oracle_decided: total.oracle_decided,
        module_ok: total.module_ok,
        module_degraded_loops: total.module_degraded_loops,
        shed: total.shed,
        expired: total.expired,
        compile_errors: total.compile_errors,
        rejected: total.rejected,
        shutdown: total.shutdown,
        internal: total.internal,
        wall,
        p50: pct(0.50),
        p99: pct(0.99),
        max_latency: pct(1.0),
        answered_qps: answered as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// One client: fire `requests_per_client` arrivals with plan-derived
/// gaps, stream sample-path tickets to a collector, tally everything.
fn client_loop(
    server: &Server,
    inputs: &ChaosInputs,
    cfg: &ChaosConfig,
    client: usize,
) -> (u64, Tally) {
    let plan = FaultPlan::new(cfg.seed.wrapping_add(0x9e37 * (client as u64 + 1)));
    let gaps = plan.bursty_interarrival_micros(
        cfg.rate_per_client,
        cfg.burst,
        cfg.requests_per_client,
    );
    let (tx, rx) = mpsc::channel::<Ticket>();
    let mut tally = Tally::default();
    let mut fired = 0u64;
    std::thread::scope(|scope| {
        // Collector: redeem tickets in submission order, stamping
        // latency at answer time.
        let collector = scope.spawn(move || {
            let mut t = Tally::default();
            for ticket in rx {
                let at = ticket.submitted_at();
                match ticket.wait() {
                    Ok(c) => {
                        t.latencies_us.push(at.elapsed().as_micros() as u64);
                        if c.decided_by == DecidedBy::Oracle {
                            t.oracle_decided += 1;
                        } else if c.source == mvgnn_core::PredictionSource::Multi {
                            t.ok += 1;
                        } else {
                            t.degraded += 1;
                        }
                    }
                    Err(e) => t.count_error(&e),
                }
            }
            t
        });
        for (i, gap) in gaps.iter().enumerate() {
            if *gap > 0 {
                std::thread::sleep(Duration::from_micros(*gap));
            }
            fired += 1;
            let want_source = !inputs.sources.is_empty()
                && (inputs.samples.is_empty() || plan.selects(i as u64, cfg.source_frac));
            if want_source {
                let base = &inputs.sources[i % inputs.sources.len()];
                let src = if plan.selects(i as u64 ^ 0xbad, cfg.malformed_frac) {
                    malform(&plan, base, i as u64)
                } else {
                    base.clone()
                };
                let budget = cfg.starved_budget.then(|| plan.starved_step_budget());
                match server.classify_source(&src, Deadline::within(cfg.deadline), budget) {
                    Ok(mc) => {
                        tally.module_ok += 1;
                        tally.module_degraded_loops += mc
                            .reports
                            .iter()
                            .filter(|r| {
                                r.decided_by == DecidedBy::Gnn
                                    && r.source != mvgnn_core::PredictionSource::Multi
                            })
                            .count() as u64;
                    }
                    Err(e) => tally.count_error(&e),
                }
            } else if !inputs.samples.is_empty() {
                let at = i % inputs.samples.len();
                let sample = Arc::clone(&inputs.samples[at]);
                let oracle = inputs.oracles.get(at).and_then(|o| o.as_deref());
                match server.submit_analyzed(sample, oracle, Deadline::within(cfg.deadline)) {
                    Ok(ticket) => {
                        // Collector owns redemption; a send can only fail
                        // if the collector died, which the census counts.
                        if tx.send(ticket).is_err() {
                            tally.internal += 1;
                        }
                    }
                    Err(e) => tally.count_error(&e),
                }
            } else {
                fired -= 1; // nothing to send — storm over empty inputs
            }
        }
        drop(tx);
        match collector.join() {
            Ok(t) => tally.merge(t),
            Err(_) => tally.internal += 1,
        }
    });
    (fired, tally)
}
