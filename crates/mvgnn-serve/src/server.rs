//! The request front door: admission, submission, and lifecycle.
//!
//! A [`Server`] owns a [`mvgnn_core::InferenceEngine`] (and with it the
//! pooled workspaces), a token [`Limiter`], a
//! bounded submission queue, and one or more micro-batching workers.
//! Two request paths exist:
//!
//! - **Sample path** ([`Server::classify`] / [`Server::submit`]): a
//!   pre-featurised loop sample rides the micro-batcher, so bursts of
//!   concurrent singles are served at packed-batch throughput. When the
//!   caller also carries a tier-0 oracle report
//!   ([`Server::submit_analyzed`]) or a full parallelization plan
//!   ([`Server::submit_planned`]), a definite static verdict is
//!   answered at submit time — before the shape gate, the limiter, and
//!   the queue — so oracle-decidable requests never occupy a micro-batch
//!   slot or an admission token; the planned path additionally surfaces
//!   the rendered pragma in the [`Classification`].
//! - **Source path** ([`Server::classify_source`]): a source program is
//!   compiled, profiled, and classified per-loop on the caller's thread
//!   under the same admission token, with the per-loop degradation of
//!   [`mvgnn_core::classify_module`] and a shared
//!   [`FeatureCache`] hit-through.
//!
//! Overload is never unbounded queueing: a request either gets a token
//! and a queue slot, or a typed [`ServeError::Overloaded`] with a
//! retry-after hint derived from the observed service rate.

use crate::batcher::{panic_message, worker_loop, Batcher, Request, Slot};
use crate::deadline::Deadline;
use crate::limiter::{Limiter, LimiterStats};
use crate::response::{
    Classification, DeadlineStage, ModuleClassification, ServeError, ServeResult,
};
use mvgnn_analyze::{LoopPlan, OracleReport};
use mvgnn_core::{
    oracle_decision, Cascade, CascadeConfig, EngineConfig, InferenceEngine, ModelRegistry, MvGnn,
    MvGnnError, RegistryCensus,
};
use mvgnn_embed::{FeatureCache, GraphSample, Inst2Vec, SampleConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Micro-batch flush size: a filling batch is dispatched as soon as
    /// this many requests have coalesced.
    pub max_batch: usize,
    /// Micro-batch flush deadline: a batch seeded by one arrival waits
    /// at most this long for company before dispatching anyway.
    pub max_delay: Duration,
    /// Bound of the submission queue; arrivals past it are shed.
    pub max_queue: usize,
    /// Token capacity of the admission limiter — total outstanding
    /// requests (queued + executing) across both request paths.
    pub max_inflight: usize,
    /// Micro-batching worker threads.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_micros(500),
            max_queue: 256,
            max_inflight: 512,
            workers: 1,
        }
    }
}

impl ServeConfig {
    /// Reject degenerate configurations with a typed
    /// [`MvGnnError::Config`] before any thread is spawned.
    pub fn validate(&self) -> Result<(), MvGnnError> {
        if self.max_batch == 0 {
            return Err(MvGnnError::Config("serve max_batch must be >= 1 (got 0)".into()));
        }
        if self.max_queue == 0 {
            return Err(MvGnnError::Config("serve max_queue must be >= 1 (got 0)".into()));
        }
        if self.workers == 0 {
            return Err(MvGnnError::Config("serve workers must be >= 1 (got 0)".into()));
        }
        if self.max_inflight < self.max_batch {
            return Err(MvGnnError::Config(format!(
                "serve max_inflight ({}) must cover at least one full batch ({})",
                self.max_inflight, self.max_batch
            )));
        }
        Ok(())
    }
}

/// Frontend configuration for the source-program path.
pub struct Frontend {
    /// Token embedding used for featurisation (must match the model's
    /// training embedding).
    pub inst2vec: Inst2Vec,
    /// Walk/assembly configuration of the featuriser.
    pub sample_cfg: SampleConfig,
    /// Capacity of the shared [`FeatureCache`] (entries).
    pub cache_capacity: usize,
    /// Default interpreter step budget (None = interpreter default).
    pub max_steps: Option<u64>,
    /// Default interpreter call-depth budget.
    pub max_call_depth: Option<u32>,
    /// Tier routing of the source path — [`CascadeConfig::default`] for
    /// the full oracle → GNN → profiler cascade,
    /// [`CascadeConfig::gnn_only`] to reproduce the pure-GNN service
    /// bit-for-bit.
    pub cascade: CascadeConfig,
}

struct FrontendState {
    inst2vec: Inst2Vec,
    sample_cfg: SampleConfig,
    cache: Mutex<FeatureCache>,
    max_steps: Option<u64>,
    max_call_depth: Option<u32>,
    cascade: CascadeConfig,
}

/// Monotonic counters merged across the server's layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests presented to either path (before any gate).
    pub submitted: u64,
    /// Requests granted an admission token.
    pub admitted: u64,
    /// Requests shed by the limiter or the queue bound.
    pub shed: u64,
    /// Requests dropped in-queue at drain time for an expired deadline.
    pub expired: u64,
    /// Requests refused as structurally unusable.
    pub rejected: u64,
    /// Source-path requests refused with a typed compile error.
    pub compile_errors: u64,
    /// Dispatch panics caught and converted to typed internal faults.
    pub panics_caught: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Requests served through micro-batches.
    pub batched_requests: u64,
    /// Sample-path requests answered by the tier-0 oracle at submit
    /// time, without an admission token or a batch slot.
    pub oracle_decided: u64,
    /// Tokens currently held.
    pub inflight: usize,
    /// Submission-queue depth right now.
    pub queue_depth: usize,
}

impl ServeStats {
    /// Mean requests per dispatched micro-batch.
    pub fn mean_fill(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }
}

struct Shared {
    engine: InferenceEngine,
    registry: Arc<ModelRegistry>,
    batcher: Batcher,
    limiter: Arc<Limiter>,
    frontend: Option<FrontendState>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    queue_shed: AtomicU64,
    compile_errors: AtomicU64,
    frontend_panics: AtomicU64,
    oracle_decided: AtomicU64,
}

/// A long-running, overload-safe classification service over a shared
/// model. Dropping the server drains and joins its workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Handle for one in-flight sample-path request; redeem with
/// [`Ticket::wait`]. Open-loop clients hold a batch of tickets and
/// collect them later — arrivals are then decoupled from completions.
pub struct Ticket {
    slot: Arc<Slot>,
    submitted_at: Instant,
}

impl Ticket {
    /// Block until the service answers. Every admitted request is
    /// answered — with a classification, a typed expiry, or a typed
    /// internal fault — so this cannot hang on a live server.
    pub fn wait(self) -> ServeResult<Classification> {
        self.slot.wait()
    }

    /// When the request was admitted.
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }
}

impl Server {
    /// Start a sample-path-only server.
    pub fn start(model: Arc<MvGnn>, cfg: ServeConfig) -> Result<Self, MvGnnError> {
        Self::start_inner(Arc::new(ModelRegistry::new(model, "in-memory")), cfg, None)
    }

    /// Start a sample-path-only server over a caller-built
    /// [`ModelRegistry`] — e.g. one seeded from a mapped MVCK-v2
    /// artifact, whose census then carries the artifact path and load
    /// mode into every response.
    pub fn start_with_registry(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
    ) -> Result<Self, MvGnnError> {
        Self::start_inner(registry, cfg, None)
    }

    /// Start a server with the source-program frontend enabled.
    pub fn start_with_frontend(
        model: Arc<MvGnn>,
        frontend: Frontend,
        cfg: ServeConfig,
    ) -> Result<Self, MvGnnError> {
        let state = FrontendState {
            inst2vec: frontend.inst2vec,
            sample_cfg: frontend.sample_cfg,
            cache: Mutex::new(FeatureCache::new(frontend.cache_capacity.max(1))),
            max_steps: frontend.max_steps,
            max_call_depth: frontend.max_call_depth,
            cascade: frontend.cascade,
        };
        Self::start_inner(
            Arc::new(ModelRegistry::new(model, "in-memory")),
            cfg,
            Some(state),
        )
    }

    fn start_inner(
        registry: Arc<ModelRegistry>,
        cfg: ServeConfig,
        frontend: Option<FrontendState>,
    ) -> Result<Self, MvGnnError> {
        cfg.validate()?;
        // The engine is kept for its pooled workspaces; batches run on
        // whatever generation each request captured at admission.
        let engine = InferenceEngine::try_new(
            Arc::clone(&registry.current().model),
            EngineConfig { threads: 1, batch_size: cfg.max_batch },
        )?;
        let shared = Arc::new(Shared {
            engine,
            registry,
            batcher: Batcher::new(cfg.max_batch, cfg.max_delay, cfg.max_queue),
            limiter: Arc::new(Limiter::new(cfg.max_inflight)),
            frontend,
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_shed: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
            frontend_panics: AtomicU64::new(0),
            oracle_decided: AtomicU64::new(0),
        });
        let workers: Vec<_> = (0..cfg.workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mvgnn-serve-{i}"))
                    .spawn(move || worker_loop(&sh.batcher, &sh.engine, &sh.limiter))
                    .map_err(MvGnnError::Io)
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { shared, workers: Mutex::new(workers) })
    }

    /// Submit one featurised loop for classification; returns a
    /// [`Ticket`] immediately (open-loop submission).
    pub fn submit(
        &self,
        sample: Arc<GraphSample>,
        deadline: Deadline,
    ) -> ServeResult<Ticket> {
        self.submit_analyzed(sample, None, deadline)
    }

    /// [`Self::submit`] with an optional tier-0 oracle report for the
    /// loop the sample was featurised from.
    ///
    /// A definite verdict ([`oracle_decision`] is `Some`) is answered at
    /// submit time: the returned [`Ticket`] is already fulfilled, and the
    /// request never reaches the shape gate, the admission limiter, or
    /// the micro-batch queue — oracle-decidable traffic sheds *before*
    /// the batcher and costs the GNN path nothing. An `Unknown` verdict
    /// (or `None`) rides the micro-batcher exactly like [`Self::submit`].
    pub fn submit_analyzed(
        &self,
        sample: Arc<GraphSample>,
        oracle: Option<&OracleReport>,
        deadline: Deadline,
    ) -> ServeResult<Ticket> {
        let decided = oracle.filter(|r| oracle_decision(r).is_some());
        self.submit_tier0(
            sample,
            decided.map(|r| |census| Classification::from_oracle(r, census)),
            deadline,
        )
    }

    /// [`Self::submit_analyzed`] for a caller that ran the full
    /// parallelization planner ([`mvgnn_analyze::plan_from_report`]):
    /// a *proved* plan ([`LoopPlan::proved`]) is answered at submit
    /// time with the rendered pragma attached
    /// ([`Classification::pragma`]); an unproved plan rides the
    /// micro-batcher like any unanalyzed sample.
    pub fn submit_planned(
        &self,
        sample: Arc<GraphSample>,
        plan: Option<&LoopPlan>,
        deadline: Deadline,
    ) -> ServeResult<Ticket> {
        let proved = plan.filter(|p| p.proved());
        self.submit_tier0(
            sample,
            proved.map(|p| |census| Classification::from_plan(p, census)),
            deadline,
        )
    }

    /// Shared tier-0 front: admission gates, then either fulfil at
    /// submit time with the caller's static answer or fall through to
    /// the micro-batched tier-1 queue.
    fn submit_tier0(
        &self,
        sample: Arc<GraphSample>,
        answer: Option<impl FnOnce(RegistryCensus) -> Classification>,
        deadline: Deadline,
    ) -> ServeResult<Ticket> {
        let sh = &self.shared;
        sh.submitted.fetch_add(1, Ordering::Relaxed);
        if sh.batcher.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        if deadline.expired() {
            return Err(ServeError::DeadlineExceeded { stage: DeadlineStage::Admission });
        }
        if let Some(make) = answer {
            sh.oracle_decided.fetch_add(1, Ordering::Relaxed);
            let slot = Slot::new();
            let census = sh.registry.current().census.clone();
            slot.fulfil(Ok(make(census)));
            return Ok(Ticket { slot, submitted_at: Instant::now() });
        }
        self.enqueue(sample, deadline)
    }

    /// Tier-1 enqueue: shape gate, token, queue slot. Admission counters
    /// and the shutdown/deadline gates have already run.
    fn enqueue(&self, sample: Arc<GraphSample>, deadline: Deadline) -> ServeResult<Ticket> {
        let sh = &self.shared;
        // Pin the live weight generation at admission: everything after
        // this line — the shape gate and, later, dispatch — sees exactly
        // these weights even if the registry swaps underneath.
        let generation = sh.registry.current();
        // Shape gate before spending a token: a sample the model cannot
        // consume is rejected typed, not panicked on mid-batch.
        let mcfg = &generation.model.cfg;
        if sample.node_dim != mcfg.node_dim || sample.aw_vocab != mcfg.aw_vocab {
            sh.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(format!(
                "sample/model dimension mismatch (node {} vs {}, vocab {} vs {})",
                sample.node_dim, mcfg.node_dim, sample.aw_vocab, mcfg.aw_vocab
            )));
        }
        let permit = sh.limiter.try_acquire()?;
        let mut q = sh
            .batcher
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if sh.batcher.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        if q.len() >= sh.batcher.max_queue {
            drop(q);
            sh.queue_shed.fetch_add(1, Ordering::Relaxed);
            let inflight = sh.limiter.stats().inflight;
            return Err(ServeError::Overloaded {
                retry_after: sh.limiter.retry_after(inflight),
                inflight,
            });
        }
        let slot = Slot::new();
        let now = Instant::now();
        q.push_back(Request {
            sample,
            deadline,
            enqueued: now,
            slot: Arc::clone(&slot),
            generation,
            permit,
        });
        sh.batcher.arrived.notify_one();
        drop(q);
        Ok(Ticket { slot, submitted_at: now })
    }

    /// Classify one featurised loop, blocking until the answer (closed-
    /// loop convenience over [`Self::submit`] + [`Ticket::wait`]).
    pub fn classify(
        &self,
        sample: Arc<GraphSample>,
        deadline: Deadline,
    ) -> ServeResult<Classification> {
        self.submit(sample, deadline)?.wait()
    }

    /// Closed-loop convenience over [`Self::submit_analyzed`] +
    /// [`Ticket::wait`].
    pub fn classify_analyzed(
        &self,
        sample: Arc<GraphSample>,
        oracle: Option<&OracleReport>,
        deadline: Deadline,
    ) -> ServeResult<Classification> {
        self.submit_analyzed(sample, oracle, deadline)?.wait()
    }

    /// Closed-loop convenience over [`Self::submit_planned`] +
    /// [`Ticket::wait`].
    pub fn classify_planned(
        &self,
        sample: Arc<GraphSample>,
        plan: Option<&LoopPlan>,
        deadline: Deadline,
    ) -> ServeResult<Classification> {
        self.submit_planned(sample, plan, deadline)?.wait()
    }

    /// Compile `src` and classify every loop of its `main` function.
    /// `max_steps` overrides the frontend's default interpreter budget
    /// (e.g. to propagate a per-request time envelope); `None` keeps it.
    ///
    /// Runs on the caller's thread under an admission token — the heavy
    /// frontend work competes for the same capacity the micro-batcher
    /// sees, so a flood of source requests sheds instead of starving the
    /// sample path.
    pub fn classify_source(
        &self,
        src: &str,
        deadline: Deadline,
        max_steps: Option<u64>,
    ) -> ServeResult<ModuleClassification> {
        let sh = &self.shared;
        sh.submitted.fetch_add(1, Ordering::Relaxed);
        if sh.batcher.shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        if deadline.expired() {
            return Err(ServeError::DeadlineExceeded { stage: DeadlineStage::Admission });
        }
        let Some(fe) = sh.frontend.as_ref() else {
            sh.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected("source frontend not configured".into()));
        };
        let _permit = sh.limiter.try_acquire()?;
        // Same admission-time pinning as the sample path: the whole
        // module is classified by one generation.
        let generation = sh.registry.current();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let module = mvgnn_lang::compile(src).map_err(ServeError::Compile)?;
            if deadline.expired() {
                return Err(ServeError::DeadlineExceeded { stage: DeadlineStage::Frontend });
            }
            let Some(entry) = module.func_by_name("main") else {
                return Err(ServeError::Rejected("program has no `main` function".into()));
            };
            let mut cache =
                fe.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let reports = Cascade::new(fe.cascade).classify_module_cached(
                &generation.model,
                &module,
                entry,
                &fe.inst2vec,
                &fe.sample_cfg,
                max_steps.or(fe.max_steps),
                fe.max_call_depth,
                Some(&mut cache),
            );
            Ok(ModuleClassification { reports })
        }));
        match outcome {
            Ok(Ok(mc)) => {
                sh.limiter.observe(mc.reports.len().max(1), t0.elapsed());
                Ok(mc)
            }
            Ok(Err(e)) => {
                match &e {
                    ServeError::Compile(_) => {
                        sh.compile_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    ServeError::Rejected(_) => {
                        sh.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                Err(e)
            }
            Err(payload) => {
                sh.frontend_panics.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Internal(panic_message(&payload)))
            }
        }
    }

    /// Featurisation-cache counters of the source path (zeros without a
    /// frontend).
    pub fn feature_cache_stats(&self) -> mvgnn_embed::CacheStats {
        match &self.shared.frontend {
            Some(fe) => fe
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .stats(),
            None => mvgnn_embed::CacheStats::default(),
        }
    }

    /// Merged counters across admission, queueing, and dispatch.
    pub fn stats(&self) -> ServeStats {
        let sh = &self.shared;
        let LimiterStats { inflight, admitted, shed } = sh.limiter.stats();
        let c = &sh.batcher.counters;
        ServeStats {
            submitted: sh.submitted.load(Ordering::Relaxed),
            admitted,
            shed: shed + sh.queue_shed.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            rejected: sh.rejected.load(Ordering::Relaxed),
            compile_errors: sh.compile_errors.load(Ordering::Relaxed),
            panics_caught: c.panics_caught.load(Ordering::Relaxed)
                + sh.frontend_panics.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            oracle_decided: sh.oracle_decided.load(Ordering::Relaxed),
            inflight,
            queue_depth: sh.batcher.depth(),
        }
    }

    /// The engine's clamped configuration (for introspection).
    pub fn engine_config(&self) -> EngineConfig {
        self.shared.engine.config()
    }

    /// The weight registry behind this server.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Census of the generation new admissions will be pinned to.
    pub fn census(&self) -> RegistryCensus {
        self.shared.registry.current().census.clone()
    }

    /// Hot-swap the serving weights between requests: in-flight requests
    /// finish on the generation they were admitted under, admissions
    /// after this call are pinned to the new one. Returns the new
    /// generation id; refuses architecture mismatches with a typed
    /// [`MvGnnError::Config`] and leaves the live generation untouched.
    pub fn swap_model(
        &self,
        model: Arc<MvGnn>,
        source: impl Into<String>,
    ) -> Result<u64, MvGnnError> {
        self.shared.registry.swap(model, source)
    }

    /// Drain and stop: already-admitted requests are answered, new ones
    /// get [`ServeError::ShuttingDown`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.batcher.begin_shutdown();
        let mut ws = self.workers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for h in ws.drain(..) {
            // A worker that somehow died is already accounted for by the
            // typed Internal responses it produced; nothing to propagate.
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
