//! End-to-end service tests: coalescing, admission control, deadline
//! propagation, graceful degradation, shutdown, and a small deterministic
//! chaos storm. Every scenario must complete with typed outcomes only —
//! a panic anywhere on a request path fails the suite.

use mvgnn_core::model::{MvGnn, MvGnnConfig};
use mvgnn_core::{CascadeConfig, FaultPlan, MvGnnError, PredictionSource};
use mvgnn_dataset::{build_corpus, CorpusConfig, Suite};
use mvgnn_embed::{Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn_ir::transform::OptLevel;
use mvgnn_serve::{
    run_chaos, ChaosConfig, ChaosInputs, Deadline, Frontend, ServeConfig, ServeError,
    Server,
};
use std::sync::Arc;
use std::time::Duration;

fn tiny_dataset() -> mvgnn_dataset::Dataset {
    build_corpus(&CorpusConfig {
        seeds: vec![4],
        opt_levels: vec![OptLevel::O0],
        per_class: Some(16),
        test_fraction: 0.5,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 4 },
        sample: Default::default(),
        seed: 6,
        label_noise: 0.0,
        static_features: false,
    })
}

fn tiny_model(ds: &mvgnn_dataset::Dataset) -> MvGnn {
    let s0 = &ds.train[0].sample;
    MvGnn::new(MvGnnConfig::small(s0.node_dim, s0.aw_vocab))
}

fn samples_of(ds: &mvgnn_dataset::Dataset) -> Vec<Arc<mvgnn_embed::GraphSample>> {
    ds.test.iter().map(|s| Arc::new(s.sample.clone())).collect()
}

const PROGRAM: &str = r#"
array a[32]: f64;
array b[32]: f64;

fn main() {
    for i in 0..32 {
        b[i] = a[i] * a[i] + 1.0;
    }
    for i in 1..32 {
        a[i] = a[i - 1] * 0.5;
    }
}
"#;

#[test]
fn burst_of_singles_is_micro_batched_and_matches_the_engine() {
    let ds = tiny_dataset();
    let model = Arc::new(tiny_model(&ds));
    let samples = samples_of(&ds);
    let server = Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .expect("valid config");

    // Open-loop burst: submit everything, then collect. The micro-batcher
    // must coalesce (mean fill > 1) and every verdict must match the
    // engine's checked path bit-for-bit.
    let tickets: Vec<_> = samples
        .iter()
        .map(|s| server.submit(Arc::clone(s), Deadline::none()).expect("admitted"))
        .collect();
    let answers: Vec<_> = tickets.into_iter().map(|t| t.wait().expect("answered")).collect();

    let refs: Vec<&mvgnn_embed::GraphSample> = samples.iter().map(|s| &**s).collect();
    let engine = mvgnn_core::InferenceEngine::new(
        Arc::clone(&model),
        mvgnn_core::EngineConfig { threads: 1, batch_size: 8 },
    );
    for (a, row) in answers.iter().zip(engine.predict_checked_stream(&refs)) {
        assert_eq!(a.source, PredictionSource::Multi, "{a:?}");
        assert_eq!(Some(a.prediction), row.fused);
    }
    let stats = server.stats();
    assert_eq!(stats.batched_requests, samples.len() as u64);
    assert!(
        stats.mean_fill() > 1.5,
        "burst must coalesce, got mean fill {:.2}",
        stats.mean_fill()
    );
    assert_eq!(stats.panics_caught, 0);
    server.shutdown();
}

#[test]
fn lone_request_flushes_on_max_delay() {
    let ds = tiny_dataset();
    let server = Server::start(
        Arc::new(tiny_model(&ds)),
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .expect("valid config");
    let sample = Arc::new(ds.test[0].sample.clone());
    let t = std::time::Instant::now();
    let c = server.classify(sample, Deadline::none()).expect("answered");
    // One lone request must not wait for a full batch — the delay bound
    // flushes it. Allow generous scheduler slack.
    assert!(t.elapsed() < Duration::from_secs(2), "flush took {:?}", t.elapsed());
    assert_eq!(c.batched_with, 1);
}

#[test]
fn overload_sheds_typed_and_recovers() {
    let ds = tiny_dataset();
    let server = Server::start(
        Arc::new(tiny_model(&ds)),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            max_queue: 4,
            max_inflight: 4,
            workers: 1,
        },
    )
    .expect("valid config");
    let samples = samples_of(&ds);

    // Saturate: with capacity 4 tokens, a burst of submissions must shed
    // at least once and every shed must carry a usable retry hint.
    let mut tickets = Vec::new();
    let mut sheds = 0;
    for _ in 0..4 {
        for s in &samples {
            match server.submit(Arc::clone(s), Deadline::none()) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { retry_after, .. }) => {
                    sheds += 1;
                    assert!(retry_after > Duration::ZERO);
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    }
    assert!(sheds > 0, "a 4-token service must shed a {}-request burst", 4 * samples.len());
    for t in tickets {
        t.wait().expect("admitted requests are answered");
    }
    assert_eq!(server.stats().shed, sheds);
    // Liveness after the storm: a fresh request is served normally.
    let c = server
        .classify(Arc::clone(&samples[0]), Deadline::within(Duration::from_secs(10)))
        .expect("service recovered");
    assert_eq!(c.source, PredictionSource::Multi);
}

#[test]
fn expired_deadlines_are_dropped_before_dispatch() {
    let ds = tiny_dataset();
    let server = Server::start(
        Arc::new(tiny_model(&ds)),
        ServeConfig {
            max_batch: 16,
            // Long flush window: requests sit queued long enough for a
            // zero-budget deadline to expire before the drain.
            max_delay: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("valid config");
    let sample = Arc::new(ds.test[0].sample.clone());

    // Already-expired at admission.
    match server.classify(Arc::clone(&sample), Deadline::within(Duration::ZERO)) {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected admission expiry, got {other:?}"),
    }

    // Expires in-queue: a tiny budget lapses during the flush window;
    // the batcher must answer with a typed queued-expiry, and the expiry
    // must be visible in the shed accounting.
    let t = server
        .submit(Arc::clone(&sample), Deadline::within(Duration::from_micros(200)))
        .expect("admitted");
    match t.wait() {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        Ok(c) => {
            // Raced the flush and won — legal, but then it really was
            // served within its budget as part of a batch.
            assert!(c.batched_with >= 1);
        }
        other => panic!("expected queued expiry or answer, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(server.stats().panics_caught, 0);
}

#[test]
fn poisoned_model_degrades_every_answer_typed() {
    let ds = tiny_dataset();
    let mut model = tiny_model(&ds);
    FaultPlan::new(11).poison_params(&mut model.params, 64);
    let server = Server::start(
        Arc::new(model),
        ServeConfig { max_batch: 4, ..Default::default() },
    )
    .expect("valid config");
    for s in samples_of(&ds) {
        let c = server.classify(s, Deadline::none()).expect("typed answer, not panic");
        assert_ne!(c.source, PredictionSource::Multi, "poisoned weights trusted: {c:?}");
        assert!(c.diagnostic.is_some());
        if c.source == PredictionSource::ConservativeSerial {
            assert_eq!(c.prediction, 0);
        }
    }
    assert_eq!(server.stats().panics_caught, 0);
}

#[test]
fn shape_mismatch_is_rejected_not_panicked() {
    let ds = tiny_dataset();
    let server = Server::start(
        Arc::new(tiny_model(&ds)),
        ServeConfig::default(),
    )
    .expect("valid config");
    let mut wrong = ds.test[0].sample.clone();
    wrong.node_dim += 3;
    match server.classify(Arc::new(wrong), Deadline::none()) {
        Err(ServeError::Rejected(msg)) => assert!(msg.contains("mismatch"), "{msg}"),
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(server.stats().rejected, 1);
}

#[test]
fn shutdown_drains_admitted_work_and_refuses_new() {
    let ds = tiny_dataset();
    let server = Server::start(
        Arc::new(tiny_model(&ds)),
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .expect("valid config");
    let samples = samples_of(&ds);
    let tickets: Vec<_> = samples
        .iter()
        .take(5)
        .map(|s| server.submit(Arc::clone(s), Deadline::none()).expect("admitted"))
        .collect();
    server.shutdown();
    for t in tickets {
        t.wait().expect("admitted before shutdown ⇒ still answered");
    }
    match server.classify(Arc::clone(&samples[0]), Deadline::none()) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn degenerate_serve_config_is_a_typed_error() {
    let ds = tiny_dataset();
    let model = Arc::new(tiny_model(&ds));
    for cfg in [
        ServeConfig { max_batch: 0, ..Default::default() },
        ServeConfig { max_queue: 0, ..Default::default() },
        ServeConfig { workers: 0, ..Default::default() },
        ServeConfig { max_inflight: 1, max_batch: 32, ..Default::default() },
    ] {
        match Server::start(Arc::clone(&model), cfg) {
            Err(MvGnnError::Config(_)) => {}
            Ok(_) => panic!("degenerate config accepted: {cfg:?}"),
            Err(other) => panic!("wrong error class: {other}"),
        }
    }
}

fn frontend_for(program: &str) -> (Arc<MvGnn>, Frontend) {
    let module = mvgnn_lang::compile(program).expect("reference program compiles");
    let i2v = Inst2Vec::train(
        &[&module],
        &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
    );
    let sample_cfg = SampleConfig::default();
    let node_dim = i2v.dim()
        + mvgnn_embed::sample::KIND_DIM
        + mvgnn_embed::sample::EDGE_DIM
        + mvgnn_profiler::DynamicFeatures::DIM;
    let aw_vocab = mvgnn_graph::AwVocab::new(sample_cfg.walk_len).size();
    let model = Arc::new(MvGnn::new(MvGnnConfig::small(node_dim, aw_vocab)));
    let frontend = Frontend {
        inst2vec: i2v,
        sample_cfg,
        cache_capacity: 64,
        max_steps: None,
        max_call_depth: None,
        cascade: CascadeConfig::gnn_only(),
    };
    (model, frontend)
}

#[test]
fn source_path_classifies_and_hits_the_cache_on_replay() {
    let (model, frontend) = frontend_for(PROGRAM);
    let server = Server::start_with_frontend(model, frontend, ServeConfig::default())
        .expect("valid config");
    let first = server
        .classify_source(PROGRAM, Deadline::none(), None)
        .expect("healthy program classifies");
    assert_eq!(first.reports.len(), 2);
    let second = server.classify_source(PROGRAM, Deadline::none(), None).expect("replay");
    for (a, b) in first.reports.iter().zip(&second.reports) {
        assert_eq!((a.prediction, a.source), (b.prediction, b.source));
    }
    let cache = server.feature_cache_stats();
    assert!(cache.hits >= 2, "replay must hit the feature cache: {cache:?}");
}

#[test]
fn source_path_without_frontend_is_rejected() {
    let ds = tiny_dataset();
    let server = Server::start(Arc::new(tiny_model(&ds)), ServeConfig::default())
        .expect("valid config");
    match server.classify_source(PROGRAM, Deadline::none(), None) {
        Err(ServeError::Rejected(msg)) => assert!(msg.contains("frontend"), "{msg}"),
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn starved_budget_degrades_source_answers_typed() {
    let (model, frontend) = frontend_for(PROGRAM);
    let server = Server::start_with_frontend(model, frontend, ServeConfig::default())
        .expect("valid config");
    let budget = FaultPlan::new(21).starved_step_budget();
    let mc = server
        .classify_source(PROGRAM, Deadline::none(), Some(budget))
        .expect("starved budget degrades, it does not fail");
    assert_eq!(mc.reports.len(), 2);
    for r in &mc.reports {
        assert_ne!(r.source, PredictionSource::Multi, "{r:?}");
        assert!(r.diagnostic.is_some());
    }
}

#[test]
fn chaos_storm_is_fully_accounted_and_panic_free() {
    let ds = tiny_dataset();
    let (model, frontend) = {
        // Chaos mixes both paths; the sample path needs the corpus
        // model, so run the frontend against the same dimensions by
        // rejecting mismatched programs typed (still panic-free).
        let model = Arc::new(tiny_model(&ds));
        let module = mvgnn_lang::compile(PROGRAM).expect("compiles");
        let i2v = Inst2Vec::train(
            &[&module],
            &Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 1 },
        );
        let frontend = Frontend {
            inst2vec: i2v,
            sample_cfg: SampleConfig::default(),
            cache_capacity: 64,
            max_steps: None,
            max_call_depth: None,
            cascade: CascadeConfig::default(),
        };
        (model, frontend)
    };
    let server = Server::start_with_frontend(
        model,
        frontend,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            max_queue: 16,
            max_inflight: 32,
            workers: 1,
        },
    )
    .expect("valid config");
    let inputs = ChaosInputs {
        samples: samples_of(&ds),
        sources: vec![PROGRAM.to_string()],
        oracles: Vec::new(),
    };
    let cfg = ChaosConfig {
        seed: 0xfeed,
        clients: 4,
        requests_per_client: 64,
        rate_per_client: 50_000.0, // far past capacity: must shed, not hang
        burst: 8,
        deadline: Duration::from_secs(5),
        source_frac: 0.15,
        malformed_frac: 0.5,
        starved_budget: true,
    };
    let report = run_chaos(&server, &inputs, &cfg);
    assert_eq!(report.submitted, 4 * 64);
    assert_eq!(
        report.accounted(),
        report.submitted,
        "every request needs a typed outcome: {report:?}"
    );
    assert_eq!(report.internal, 0, "zero panics required: {report:?}");
    assert_eq!(server.stats().panics_caught, 0);
    assert!(report.ok + report.degraded + report.module_ok > 0, "{report:?}");
    // Liveness after the storm.
    let c = server
        .classify(Arc::clone(&inputs.samples[0]), Deadline::within(Duration::from_secs(10)))
        .expect("post-storm liveness");
    assert!(c.prediction <= 1);
    server.shutdown();
}

#[test]
fn oracle_storm_never_occupies_a_micro_batch_slot() {
    // Every request in this storm carries a decisive oracle report, so
    // tier 0 must answer all of them at submit time: no admission
    // token, no queue slot, no micro-batch dispatch.
    let ds = tiny_dataset();
    let model = Arc::new(tiny_model(&ds));
    let server = Server::start(
        model,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            max_queue: 4, // tiny on purpose: queued requests would shed
            max_inflight: 8,
            workers: 1,
        },
    )
    .expect("valid config");

    let module = mvgnn_lang::compile(PROGRAM).expect("compiles");
    let entry = module.func_by_name("main").expect("has main");
    let reports: Vec<Arc<mvgnn_analyze::OracleReport>> = module.funcs[entry.index()]
        .loops
        .iter()
        .map(|info| Arc::new(mvgnn_analyze::analyze_loop(&module, entry, info.id)))
        .collect();
    assert_eq!(reports.len(), 2, "DOALL + recurrence");
    for r in &reports {
        assert!(
            mvgnn_core::oracle_decision(r).is_some(),
            "storm requires decisive verdicts: {r:?}"
        );
    }

    let samples = samples_of(&ds);
    let oracles = (0..samples.len())
        .map(|i| Some(Arc::clone(&reports[i % reports.len()])))
        .collect();
    let inputs = ChaosInputs { samples, sources: Vec::new(), oracles };
    let cfg = ChaosConfig {
        seed: 0xacce,
        clients: 4,
        requests_per_client: 64,
        rate_per_client: 100_000.0, // would melt the tiny queue if batched
        burst: 16,
        deadline: Duration::from_secs(5),
        source_frac: 0.0,
        malformed_frac: 0.0,
        starved_budget: false,
    };
    let report = run_chaos(&server, &inputs, &cfg);
    assert_eq!(report.submitted, 4 * 64);
    assert_eq!(report.accounted(), report.submitted, "{report:?}");
    assert_eq!(
        report.oracle_decided, report.submitted,
        "every answer must come from tier 0: {report:?}"
    );
    assert_eq!(report.internal, 0, "{report:?}");

    // The micro-batcher census: the whole storm cost it nothing.
    let stats = server.stats();
    assert_eq!(stats.oracle_decided, report.submitted);
    assert_eq!(stats.batched_requests, 0, "oracle-decided work took a batch slot: {stats:?}");
    assert_eq!(stats.batches, 0, "{stats:?}");
    assert_eq!(stats.admitted, 0, "tier 0 must not consume admission tokens: {stats:?}");
    assert_eq!(stats.shed + stats.expired + stats.rejected, 0, "{stats:?}");
    assert_eq!(stats.panics_caught, 0);

    // A single closed-loop request surfaces the provenance and facts.
    let c = server
        .classify_analyzed(
            Arc::clone(&inputs.samples[0]),
            Some(&reports[0]),
            Deadline::within(Duration::from_secs(5)),
        )
        .expect("oracle-decided request");
    assert_eq!(c.decided_by, mvgnn_core::DecidedBy::Oracle);
    assert_eq!(c.source, PredictionSource::Oracle);
    assert!(c.oracle_facts.is_some(), "tier-0 answers carry the facts: {c:?}");
    assert_eq!(c.batched_with, 0);
    assert!(c.pragma.is_none(), "a bare report has no rendered plan: {c:?}");

    // The planned path answers at submit time too, with the pragma.
    for (i, info) in module.funcs[entry.index()].loops.iter().enumerate() {
        let plan = mvgnn_analyze::plan_from_report(&module, entry, info.id, &reports[i]);
        assert!(plan.proved(), "{plan:?}");
        let c = server
            .classify_planned(
                Arc::clone(&inputs.samples[0]),
                Some(&plan),
                Deadline::within(Duration::from_secs(5)),
            )
            .expect("plan-decided request");
        assert_eq!(c.decided_by, mvgnn_core::DecidedBy::Oracle);
        assert_eq!(c.pragma.as_deref(), Some(plan.pragma.as_str()), "{c:?}");
        assert_eq!(
            Some(c.prediction),
            plan.proved_binary(),
            "the answer must restate the proof: {c:?}"
        );
    }

    // The GNN path still works after the storm (nothing was wedged).
    let gnn = server
        .classify(Arc::clone(&inputs.samples[0]), Deadline::within(Duration::from_secs(10)))
        .expect("post-storm liveness");
    assert!(gnn.prediction <= 1);
    assert_eq!(gnn.decided_by, mvgnn_core::DecidedBy::Gnn);
    server.shutdown();
}

#[test]
fn hot_swap_pins_inflight_requests_and_routes_new_admissions() {
    let ds = tiny_dataset();
    let model_a = Arc::new(tiny_model(&ds));
    let model_b = {
        let s0 = &ds.train[0].sample;
        let mut cfg = MvGnnConfig::small(s0.node_dim, s0.aw_vocab);
        cfg.seed = cfg.seed.wrapping_add(101);
        Arc::new(MvGnn::new(cfg))
    };
    let samples = samples_of(&ds);
    let n = samples.len().min(8);

    // One worker, a batch wide enough for both waves, and a long flush
    // delay: the pre-swap wave sits in the fill window while we swap, so
    // one drain straddles the generation boundary and dispatch must
    // split it.
    let server = Server::start(
        Arc::clone(&model_a),
        ServeConfig {
            max_batch: 2 * n,
            max_delay: Duration::from_millis(400),
            workers: 1,
            ..Default::default()
        },
    )
    .expect("valid config");
    assert_eq!(server.census().generation, 0);
    assert_eq!(server.census().load_mode, mvgnn_serve::LoadMode::Eager);

    let pre: Vec<_> = samples[..n]
        .iter()
        .map(|s| server.submit(Arc::clone(s), Deadline::none()).expect("admitted"))
        .collect();

    let gen = server
        .swap_model(Arc::clone(&model_b), "artifact-v2")
        .expect("same architecture swaps");
    assert_eq!(gen, 1);
    assert_eq!(server.registry().generation(), 1);

    let post: Vec<_> = samples[..n]
        .iter()
        .map(|s| server.submit(Arc::clone(s), Deadline::none()).expect("admitted"))
        .collect();

    let pre_answers: Vec<_> =
        pre.into_iter().map(|t| t.wait().expect("answered")).collect();
    let post_answers: Vec<_> =
        post.into_iter().map(|t| t.wait().expect("answered")).collect();

    // Bit-match each wave against a dedicated engine on its generation's
    // weights: in-flight requests finished on the old weights, new
    // admissions ran on the new ones.
    let refs: Vec<&mvgnn_embed::GraphSample> =
        samples[..n].iter().map(|s| &**s).collect();
    let ecfg = mvgnn_core::EngineConfig { threads: 1, batch_size: 2 * n };
    let engine_a = mvgnn_core::InferenceEngine::new(Arc::clone(&model_a), ecfg);
    let engine_b = mvgnn_core::InferenceEngine::new(Arc::clone(&model_b), ecfg);
    for (a, row) in pre_answers.iter().zip(engine_a.predict_checked_stream(&refs)) {
        assert_eq!(a.census.generation, 0, "{a:?}");
        assert_eq!(a.census.source, "in-memory");
        assert_eq!(Some(a.prediction), row.fused);
    }
    for (b, row) in post_answers.iter().zip(engine_b.predict_checked_stream(&refs)) {
        assert_eq!(b.census.generation, 1, "{b:?}");
        assert_eq!(b.census.source, "artifact-v2");
        assert_eq!(Some(b.prediction), row.fused);
    }

    // Zero downtime: nothing was shed, expired, rejected, or panicked
    // across the swap.
    let stats = server.stats();
    assert_eq!(stats.shed, 0, "{stats:?}");
    assert_eq!(stats.expired, 0, "{stats:?}");
    assert_eq!(stats.rejected, 0, "{stats:?}");
    assert_eq!(stats.panics_caught, 0, "{stats:?}");
    assert_eq!(stats.batched_requests, 2 * n as u64, "{stats:?}");
    server.shutdown();
}

#[test]
fn swap_to_an_incompatible_architecture_is_refused_and_service_stays_live() {
    let ds = tiny_dataset();
    let model = Arc::new(tiny_model(&ds));
    let server = Server::start(Arc::clone(&model), ServeConfig::default())
        .expect("valid config");
    let bad = {
        let s0 = &ds.train[0].sample;
        Arc::new(MvGnn::new(MvGnnConfig::small(s0.node_dim + 3, s0.aw_vocab)))
    };
    let err = server.swap_model(bad, "bad").expect_err("must refuse");
    assert!(matches!(err, MvGnnError::Config(_)), "{err:?}");
    assert_eq!(server.census().generation, 0, "failed swap must not publish");

    let c = server
        .classify(Arc::new(ds.test[0].sample.clone()), Deadline::none())
        .expect("still serving");
    assert_eq!(c.census.generation, 0);
}
