//! Blocks, loop metadata, functions and modules.

use crate::inst::{Inst, InstRef};
use crate::types::{ArrayId, Ty};
use serde::{Deserialize, Serialize};

/// Basic block index, local to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Function index, module-global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Loop index, local to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Block {
    /// Instructions; the last one must be a terminator in a finished
    /// function (checked by [`crate::verify::verify_function`]).
    pub insts: Vec<Inst>,
    /// Synthetic source line of each instruction (parallel to `insts`).
    pub lines: Vec<u32>,
}

impl Block {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The terminator, if the block is finished.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

/// Structured metadata describing one natural loop created by the builder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopInfo {
    /// This loop's id.
    pub id: LoopId,
    /// Block evaluating the loop condition; executing it marks an
    /// iteration boundary for the profiler.
    pub header: BlockId,
    /// Blocks belonging to the loop body (header and latch excluded).
    pub body: Vec<BlockId>,
    /// Block that increments the induction register and jumps back.
    pub latch: BlockId,
    /// Block control reaches after the loop.
    pub exit: BlockId,
    /// Induction variable register, if the loop is a counted `for`.
    pub induction: Option<crate::types::VReg>,
    /// Enclosing loop, if nested.
    pub parent: Option<LoopId>,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Synthetic source line span `[start, end]`.
    pub line_span: (u32, u32),
    /// Parallelization annotation attached by the planner
    /// (`mvgnn_analyze::planner::annotate_loops`): the OpenMP-style
    /// pragma string for this loop, when a pass has rendered one.
    #[serde(default)]
    pub annotation: Option<String>,
}

/// A memory object: a 1-D array of a fixed element type and length.
/// Multi-dimensional kernels linearise their indices explicitly, exactly as
/// LLVM GEPs flatten into byte offsets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Debug name (unique per module).
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Number of elements.
    pub len: usize,
}

/// A function: registers are dynamically typed; the first `arity` registers
/// receive the call arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Function {
    /// Debug name (unique per module).
    pub name: String,
    /// Number of parameters.
    pub arity: u32,
    /// Total virtual registers used.
    pub num_regs: u32,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Loops created by the builder, indexed by `LoopId`.
    pub loops: Vec<LoopInfo>,
    /// Which loop each block belongs to (innermost), parallel to `blocks`.
    pub block_loop: Vec<Option<LoopId>>,
}

impl Function {
    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Iterate `(InstRef, &Inst, line)` in block order. `func` is the id of
    /// this function within its module.
    pub fn insts_with_refs<'a>(
        &'a self,
        func: FuncId,
    ) -> impl Iterator<Item = (InstRef, &'a Inst, u32)> + 'a {
        self.blocks.iter().enumerate().flat_map(move |(b, blk)| {
            blk.insts.iter().zip(&blk.lines).enumerate().map(move |(i, (inst, &line))| {
                (InstRef { func, block: BlockId(b as u32), idx: i as u32 }, inst, line)
            })
        })
    }

    /// The innermost loop containing `block`, if any.
    pub fn loop_of_block(&self, block: BlockId) -> Option<LoopId> {
        self.block_loop.get(block.index()).copied().flatten()
    }

    /// All loops (ids) from the innermost loop of `block` up to the root.
    pub fn loop_chain(&self, block: BlockId) -> Vec<LoopId> {
        let mut chain = Vec::new();
        let mut cur = self.loop_of_block(block);
        while let Some(l) = cur {
            chain.push(l);
            cur = self.loops[l.index()].parent;
        }
        chain
    }

    /// Blocks belonging to loop `l` including header, body and latch.
    pub fn loop_blocks(&self, l: LoopId) -> Vec<BlockId> {
        let info = &self.loops[l.index()];
        let mut blocks = vec![info.header];
        blocks.extend(info.body.iter().copied());
        blocks.push(info.latch);
        // Nested loops' blocks are already in `body` transitively if the
        // builder recorded them; keep order deterministic and unique.
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

/// A module: arrays (global memory objects) plus functions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Module {
    /// Debug name.
    pub name: String,
    /// Memory objects.
    pub arrays: Vec<ArrayDecl>,
    /// Functions; `FuncId` indexes this.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), arrays: Vec::new(), funcs: Vec::new() }
    }

    /// Declare an array and return its id.
    pub fn add_array(&mut self, name: impl Into<String>, ty: Ty, len: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl { name: name.into(), ty, len });
        id
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Look up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(|i| ArrayId(i as u32))
    }

    /// Total loop count across functions.
    pub fn loop_count(&self) -> usize {
        self.funcs.iter().map(|f| f.loops.len()).sum()
    }

    /// Total instruction count across functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// Iterate all `(FuncId, LoopId)` pairs.
    pub fn all_loops(&self) -> impl Iterator<Item = (FuncId, LoopId)> + '_ {
        self.funcs.iter().enumerate().flat_map(|(f, fun)| {
            (0..fun.loops.len()).map(move |l| (FuncId(f as u32), LoopId(l as u32)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::types::VReg;

    #[test]
    fn module_lookup() {
        let mut m = Module::new("t");
        let a = m.add_array("x", Ty::F64, 16);
        assert_eq!(m.array_by_name("x"), Some(a));
        assert_eq!(m.array_by_name("y"), None);
        assert_eq!(m.arrays[a.index()].len, 16);
    }

    #[test]
    fn block_terminator_detection() {
        let mut b = Block::default();
        assert!(b.is_empty());
        b.insts.push(Inst::Copy { dst: VReg(0), src: VReg(1) });
        b.lines.push(1);
        assert!(b.terminator().is_none());
        b.insts.push(Inst::Ret { val: None });
        b.lines.push(2);
        assert!(b.terminator().is_some());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn function_iteration_yields_refs_in_order() {
        let f = Function {
            name: "f".into(),
            arity: 0,
            num_regs: 2,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Copy { dst: VReg(0), src: VReg(1) },
                        Inst::Br { target: BlockId(1) },
                    ],
                    lines: vec![1, 1],
                },
                Block { insts: vec![Inst::Ret { val: None }], lines: vec![2] },
            ],
            loops: vec![],
            block_loop: vec![None, None],
        };
        let refs: Vec<_> = f.insts_with_refs(FuncId(0)).collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].0.block, BlockId(0));
        assert_eq!(refs[2].0.block, BlockId(1));
        assert_eq!(refs[2].2, 2);
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn loop_chain_walks_parents() {
        let outer = LoopInfo {
            id: LoopId(0),
            header: BlockId(1),
            body: vec![BlockId(2)],
            latch: BlockId(3),
            exit: BlockId(4),
            induction: None,
            parent: None,
            depth: 0,
            line_span: (1, 9),
            annotation: None,
        };
        let inner = LoopInfo {
            id: LoopId(1),
            header: BlockId(2),
            body: vec![],
            latch: BlockId(2),
            exit: BlockId(3),
            induction: None,
            parent: Some(LoopId(0)),
            depth: 1,
            line_span: (3, 6),
            annotation: None,
        };
        let f = Function {
            name: "f".into(),
            arity: 0,
            num_regs: 0,
            blocks: vec![Block::default(); 5],
            loops: vec![outer, inner],
            block_loop: vec![None, Some(LoopId(0)), Some(LoopId(1)), Some(LoopId(0)), None],
        };
        assert_eq!(f.loop_chain(BlockId(2)), vec![LoopId(1), LoopId(0)]);
        assert_eq!(f.loop_chain(BlockId(0)), Vec::<LoopId>::new());
        assert_eq!(f.loop_blocks(LoopId(0)), vec![BlockId(1), BlockId(2), BlockId(3)]);
    }
}
