//! Core value types and id newtypes of the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Static value types. The IR is deliberately small: 64-bit integers for
/// induction/index arithmetic and 64-bit floats for numeric kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "f64"),
        }
    }
}

/// Runtime value held in a virtual register or array cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer payload.
    I64(i64),
    /// Float payload.
    F64(f64),
}

impl Value {
    /// The static type of this value.
    pub fn ty(self) -> Ty {
        match self {
            Value::I64(_) => Ty::I64,
            Value::F64(_) => Ty::F64,
        }
    }

    /// Zero of a given type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::I64 => Value::I64(0),
            Ty::F64 => Value::F64(0.0),
        }
    }

    /// Integer payload or `None`.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(v),
            Value::F64(_) => None,
        }
    }

    /// Float payload or `None`.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(v),
            Value::I64(_) => None,
        }
    }

    /// Numeric coercion to f64 (i64 widened); used by mixed-type folds.
    pub fn to_f64_lossy(self) -> f64 {
        match self {
            Value::F64(v) => v,
            Value::I64(v) => v as f64,
        }
    }

    /// Truthiness: non-zero is true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I64(v) => v != 0,
            Value::F64(v) => v != 0.0,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
        }
    }
}

/// Virtual register index, local to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl VReg {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Array (memory object) index, module-global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_and_zero() {
        assert_eq!(Value::I64(3).ty(), Ty::I64);
        assert_eq!(Value::F64(1.5).ty(), Ty::F64);
        assert_eq!(Value::zero(Ty::I64), Value::I64(0));
        assert_eq!(Value::zero(Ty::F64), Value::F64(0.0));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(7).as_i64(), Some(7));
        assert_eq!(Value::I64(7).as_f64(), None);
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::F64(2.5).to_f64_lossy(), 2.5);
        assert_eq!(Value::I64(4).to_f64_lossy(), 4.0);
    }

    #[test]
    fn truthiness() {
        assert!(Value::I64(1).is_truthy());
        assert!(!Value::I64(0).is_truthy());
        assert!(Value::F64(-0.1).is_truthy());
        assert!(!Value::F64(0.0).is_truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(VReg(3).to_string(), "%3");
        assert_eq!(ArrayId(2).to_string(), "@2");
        assert_eq!(Ty::F64.to_string(), "f64");
        assert_eq!(Value::I64(-4).to_string(), "-4");
    }
}
