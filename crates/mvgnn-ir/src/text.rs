//! Textual form of the IR: a line-oriented printer and parser.
//!
//! The format is stable enough to round-trip every module the builder can
//! produce, which the property tests in the dataset crate rely on. Example:
//!
//! ```text
//! module "kernel"
//! array @0 "a" f64 16
//! func f0 "main" arity 0 regs 6
//!   block b0
//!     %0 = const i64 0            ; line 1
//!     br b1                       ; line 1
//!   block b1
//!     ret                         ; line 2
//!   loop l0 header b1 latch b2 exit b3 body [b1 b2] iv %3 parent none depth 0 span 2 7
//! endfunc
//! ```

use crate::inst::{BinOp, Inst, UnOp};
use crate::module::{Block, BlockId, FuncId, Function, LoopId, LoopInfo, Module};
use crate::types::{ArrayId, Ty, VReg, Value};
use std::fmt::Write as _;

/// Render a module to its textual form.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {:?}", m.name);
    for (i, a) in m.arrays.iter().enumerate() {
        let _ = writeln!(s, "array @{} {:?} {} {}", i, a.name, a.ty, a.len);
    }
    for (fi, f) in m.funcs.iter().enumerate() {
        let _ = writeln!(s, "func f{} {:?} arity {} regs {}", fi, f.name, f.arity, f.num_regs);
        for (bi, blk) in f.blocks.iter().enumerate() {
            let _ = writeln!(s, "  block b{bi}");
            for (inst, &line) in blk.insts.iter().zip(&blk.lines) {
                let _ = writeln!(s, "    {} ; line {}", print_inst(inst), line);
            }
        }
        for info in &f.loops {
            let body: Vec<String> = info.body.iter().map(|b| format!("b{}", b.0)).collect();
            let iv = match info.induction {
                Some(r) => format!("%{}", r.0),
                None => "none".into(),
            };
            let parent = match info.parent {
                Some(p) => format!("l{}", p.0),
                None => "none".into(),
            };
            let _ = writeln!(
                s,
                "  loop l{} header b{} latch b{} exit b{} body [{}] iv {} parent {} depth {} span {} {}",
                info.id.0,
                info.header.0,
                info.latch.0,
                info.exit.0,
                body.join(" "),
                iv,
                parent,
                info.depth,
                info.line_span.0,
                info.line_span.1
            );
        }
        let _ = writeln!(s, "endfunc");
    }
    s
}

fn print_value(v: Value) -> String {
    match v {
        Value::I64(x) => format!("i64 {x}"),
        Value::F64(x) => format!("f64 {x:?}"),
    }
}

/// Render one instruction (without line comment).
pub fn print_inst(inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("%{} = const {}", dst.0, print_value(*value)),
        Inst::Copy { dst, src } => format!("%{} = copy %{}", dst.0, src.0),
        Inst::Bin { op, dst, lhs, rhs } => {
            format!("%{} = {} %{} %{}", dst.0, op.mnemonic(), lhs.0, rhs.0)
        }
        Inst::Un { op, dst, src } => format!("%{} = {} %{}", dst.0, op.mnemonic(), src.0),
        Inst::Load { dst, arr, idx } => format!("%{} = load @{}[%{}]", dst.0, arr.0, idx.0),
        Inst::Store { arr, idx, src } => format!("store @{}[%{}] %{}", arr.0, idx.0, src.0),
        Inst::Call { dst, func, args } => {
            let a: Vec<String> = args.iter().map(|r| format!("%{}", r.0)).collect();
            match dst {
                Some(d) => format!("%{} = call f{}({})", d.0, func.0, a.join(", ")),
                None => format!("call f{}({})", func.0, a.join(", ")),
            }
        }
        Inst::Br { target } => format!("br b{}", target.0),
        Inst::CondBr { cond, then_blk, else_blk } => {
            format!("condbr %{} b{} b{}", cond.0, then_blk.0, else_blk.0)
        }
        Inst::Ret { val } => match val {
            Some(v) => format!("ret %{}", v.0),
            None => "ret".to_string(),
        },
    }
}

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line in the textual form.
    pub line: usize,
    /// Description of the failure.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    toks: Vec<&'a str>,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        // Strip a trailing `; line N` comment into a pseudo-token stream.
        Self { toks: s.split_whitespace().collect(), pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line, msg: msg.into() }
    }

    fn next(&mut self) -> Result<&'a str, ParseError> {
        let t = self.toks.get(self.pos).copied().ok_or_else(|| self.err("unexpected end of line"))?;
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`, found `{t}`")))
        }
    }

    fn prefixed_u32(&mut self, prefix: char) -> Result<u32, ParseError> {
        let t = self.next()?;
        let body = t
            .strip_prefix(prefix)
            .ok_or_else(|| self.err(format!("expected `{prefix}…`, found `{t}`")))?;
        let clean = body.trim_end_matches([',', ')', ']']);
        clean.parse().map_err(|_| self.err(format!("bad index in `{t}`")))
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        let t = self.next()?;
        t.parse().map_err(|_| self.err(format!("expected integer, found `{t}`")))
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        let t = self.next()?;
        if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
            Ok(t[1..t.len() - 1].to_string())
        } else {
            Err(self.err(format!("expected quoted string, found `{t}`")))
        }
    }
}

fn parse_inst_line(line: &str, lineno: usize) -> Result<(Inst, u32), ParseError> {
    let (code, comment) = match line.split_once(';') {
        Some((c, rest)) => (c.trim(), rest.trim()),
        None => (line.trim(), ""),
    };
    let src_line: u32 = comment
        .strip_prefix("line")
        .map(|n| n.trim().parse().unwrap_or(0))
        .unwrap_or(0);
    let mut c = Cursor::new(code, lineno);
    let first = c.next()?;
    let inst = if let Some(dst) = first.strip_prefix('%') {
        let dst = VReg(dst.parse().map_err(|_| c.err("bad register"))?);
        c.expect("=")?;
        let op = c.next()?;
        match op {
            "const" => {
                let ty = c.next()?;
                let lit = c.next()?;
                let value = match ty {
                    "i64" => Value::I64(lit.parse().map_err(|_| c.err("bad i64"))?),
                    "f64" => Value::F64(lit.parse().map_err(|_| c.err("bad f64"))?),
                    other => return Err(c.err(format!("unknown type `{other}`"))),
                };
                Inst::Const { dst, value }
            }
            "copy" => Inst::Copy { dst, src: VReg(c.prefixed_u32('%')?) },
            "load" => {
                // load @A[%i]
                let t = c.next()?;
                let (arr, idx) = parse_mem_operand(t).ok_or_else(|| c.err("bad load operand"))?;
                Inst::Load { dst, arr, idx }
            }
            "call" => {
                let (func, args) = parse_call_tail(&mut c)?;
                Inst::Call { dst: Some(dst), func, args }
            }
            mn => {
                if let Some(b) = BinOp::from_mnemonic(mn) {
                    let lhs = VReg(c.prefixed_u32('%')?);
                    let rhs = VReg(c.prefixed_u32('%')?);
                    Inst::Bin { op: b, dst, lhs, rhs }
                } else if let Some(u) = UnOp::from_mnemonic(mn) {
                    Inst::Un { op: u, dst, src: VReg(c.prefixed_u32('%')?) }
                } else {
                    return Err(c.err(format!("unknown opcode `{mn}`")));
                }
            }
        }
    } else {
        match first {
            "store" => {
                let t = c.next()?;
                let (arr, idx) = parse_mem_operand(t).ok_or_else(|| c.err("bad store operand"))?;
                let src = VReg(c.prefixed_u32('%')?);
                Inst::Store { arr, idx, src }
            }
            "call" => {
                let (func, args) = parse_call_tail(&mut c)?;
                Inst::Call { dst: None, func, args }
            }
            "br" => Inst::Br { target: BlockId(c.prefixed_u32('b')?) },
            "condbr" => {
                let cond = VReg(c.prefixed_u32('%')?);
                let then_blk = BlockId(c.prefixed_u32('b')?);
                let else_blk = BlockId(c.prefixed_u32('b')?);
                Inst::CondBr { cond, then_blk, else_blk }
            }
            "ret" => {
                let val = match c.peek() {
                    Some(t) if t.starts_with('%') => Some(VReg(c.prefixed_u32('%')?)),
                    _ => None,
                };
                Inst::Ret { val }
            }
            other => return Err(c.err(format!("unknown statement `{other}`"))),
        }
    };
    Ok((inst, src_line))
}

/// `@A[%i]` -> (ArrayId, VReg)
fn parse_mem_operand(t: &str) -> Option<(ArrayId, VReg)> {
    let t = t.strip_prefix('@')?;
    let (arr, rest) = t.split_once("[%")?;
    let idx = rest.strip_suffix(']')?;
    Some((ArrayId(arr.parse().ok()?), VReg(idx.parse().ok()?)))
}

/// `f3(%0, %1)` — the cursor has tokens like `f3(%0,` `%1)` or `f3()`.
fn parse_call_tail(c: &mut Cursor<'_>) -> Result<(FuncId, Vec<VReg>), ParseError> {
    let t = c.next()?;
    let t = t.strip_prefix('f').ok_or_else(|| c.err("expected `f<id>(...)`"))?;
    let (fid, rest) = t.split_once('(').ok_or_else(|| c.err("expected `(` in call"))?;
    let func = FuncId(fid.parse().map_err(|_| c.err("bad function id"))?);
    let mut args = Vec::new();
    let mut buf = rest.to_string();
    loop {
        let done = buf.ends_with(')');
        let frag = buf.trim_end_matches(')');
        for piece in frag.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let r = piece
                .strip_prefix('%')
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| c.err(format!("bad call argument `{piece}`")))?;
            args.push(VReg(r));
        }
        if done {
            break;
        }
        buf = c.next()?.to_string();
    }
    Ok((func, args))
}

/// Parse a module from its textual form.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut m = Module::new("");
    let mut cur_fn: Option<Function> = None;
    let mut cur_blk: Option<Block> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let mut c = Cursor::new(line, lineno);
        let head = c.next()?;
        match head {
            "module" => m.name = c.quoted()?,
            "array" => {
                let _id = c.prefixed_u32('@')?;
                let name = c.quoted()?;
                let ty = match c.next()? {
                    "i64" => Ty::I64,
                    "f64" => Ty::F64,
                    t => return Err(c.err(format!("unknown type `{t}`"))),
                };
                let len = c.u32()? as usize;
                m.add_array(name, ty, len);
            }
            "func" => {
                let _id = c.prefixed_u32('f')?;
                let name = c.quoted()?;
                c.expect("arity")?;
                let arity = c.u32()?;
                c.expect("regs")?;
                let num_regs = c.u32()?;
                cur_fn = Some(Function {
                    name,
                    arity,
                    num_regs,
                    blocks: Vec::new(),
                    loops: Vec::new(),
                    block_loop: Vec::new(),
                });
            }
            "block" => {
                let f = cur_fn.as_mut().ok_or_else(|| c.err("block outside func"))?;
                if let Some(b) = cur_blk.take() {
                    f.blocks.push(b);
                }
                cur_blk = Some(Block::default());
            }
            "loop" => {
                // Flush the open block first so loop lines may follow blocks.
                let f = cur_fn.as_mut().ok_or_else(|| c.err("loop outside func"))?;
                if let Some(b) = cur_blk.take() {
                    f.blocks.push(b);
                }
                let id = LoopId(c.prefixed_u32('l')?);
                c.expect("header")?;
                let header = BlockId(c.prefixed_u32('b')?);
                c.expect("latch")?;
                let latch = BlockId(c.prefixed_u32('b')?);
                c.expect("exit")?;
                let exit = BlockId(c.prefixed_u32('b')?);
                c.expect("body")?;
                let mut body = Vec::new();
                let first = c.next()?;
                if first != "[" && first != "[]" {
                    let mut tok = first.trim_start_matches('[').to_string();
                    loop {
                        let done = tok.ends_with(']');
                        let frag = tok.trim_end_matches(']');
                        if !frag.is_empty() {
                            let b = frag
                                .strip_prefix('b')
                                .and_then(|x| x.parse().ok())
                                .ok_or_else(|| c.err(format!("bad body block `{frag}`")))?;
                            body.push(BlockId(b));
                        }
                        if done {
                            break;
                        }
                        tok = c.next()?.to_string();
                    }
                } else if first == "[" {
                    loop {
                        let tok = c.next()?;
                        if tok == "]" {
                            break;
                        }
                        let done = tok.ends_with(']');
                        let frag = tok.trim_end_matches(']');
                        let b = frag
                            .strip_prefix('b')
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| c.err(format!("bad body block `{frag}`")))?;
                        body.push(BlockId(b));
                        if done {
                            break;
                        }
                    }
                }
                c.expect("iv")?;
                let iv_tok = c.next()?;
                let induction = if iv_tok == "none" {
                    None
                } else {
                    Some(VReg(
                        iv_tok
                            .strip_prefix('%')
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| c.err("bad iv"))?,
                    ))
                };
                c.expect("parent")?;
                let parent_tok = c.next()?;
                let parent = if parent_tok == "none" {
                    None
                } else {
                    Some(LoopId(
                        parent_tok
                            .strip_prefix('l')
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| c.err("bad parent"))?,
                    ))
                };
                c.expect("depth")?;
                let depth = c.u32()?;
                c.expect("span")?;
                let s0 = c.u32()?;
                let s1 = c.u32()?;
                f.loops.push(LoopInfo {
                    id,
                    header,
                    body,
                    latch,
                    exit,
                    induction,
                    parent,
                    depth,
                    line_span: (s0, s1),
                    annotation: None,
                });
            }
            "endfunc" => {
                let mut f = cur_fn.take().ok_or_else(|| c.err("endfunc outside func"))?;
                if let Some(b) = cur_blk.take() {
                    f.blocks.push(b);
                }
                // Recompute block->loop from loop bodies/headers/latches.
                let mut block_loop = vec![None; f.blocks.len()];
                // Assign outer loops first so inner assignments override.
                let mut order: Vec<usize> = (0..f.loops.len()).collect();
                order.sort_by_key(|&i| f.loops[i].depth);
                for i in order {
                    let info = &f.loops[i];
                    for b in
                        info.body.iter().chain([&info.header, &info.latch])
                    {
                        if b.index() < block_loop.len() {
                            block_loop[b.index()] = Some(info.id);
                        }
                    }
                }
                f.block_loop = block_loop;
                m.funcs.push(f);
            }
            _ => {
                // An instruction line inside the current block.
                let blk = cur_blk.as_mut().ok_or_else(|| ParseError {
                    line: lineno,
                    msg: format!("statement outside block: `{line}`"),
                })?;
                let (inst, src_line) = parse_inst_line(line, lineno)?;
                blk.insts.push(inst);
                blk.lines.push(src_line);
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::verify::verify_module;

    fn sample_module() -> Module {
        let mut m = Module::new("sample");
        let a = m.add_array("a", Ty::F64, 16);
        let helper = {
            let mut b = FunctionBuilder::new(&mut m, "helper", 1);
            let p = b.param(0);
            let one = b.const_i64(1);
            let r = b.bin(BinOp::Add, p, one);
            b.ret(Some(r));
            b.finish()
        };
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(16);
        let step = b.const_i64(1);
        let acc = b.const_f64(0.0);
        b.for_loop(lo, hi, step, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(acc, BinOp::Add, acc, x);
            let j = b.call(helper, &[iv]);
            let c = b.bin(BinOp::CmpLt, j, hi);
            b.if_then(c, |b| {
                b.store(a, iv, acc);
            });
        });
        b.ret(Some(acc));
        b.finish();
        m
    }

    #[test]
    fn print_parse_roundtrip_preserves_structure() {
        let m = sample_module();
        verify_module(&m).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        verify_module(&m2).unwrap();
        assert_eq!(m2.name, m.name);
        assert_eq!(m2.arrays.len(), m.arrays.len());
        assert_eq!(m2.funcs.len(), m.funcs.len());
        for (f1, f2) in m.funcs.iter().zip(&m2.funcs) {
            assert_eq!(f1.name, f2.name);
            assert_eq!(f1.blocks.len(), f2.blocks.len());
            for (b1, b2) in f1.blocks.iter().zip(&f2.blocks) {
                assert_eq!(b1.insts, b2.insts);
                assert_eq!(b1.lines, b2.lines);
            }
            assert_eq!(f1.loops.len(), f2.loops.len());
            for (l1, l2) in f1.loops.iter().zip(&f2.loops) {
                assert_eq!(l1.header, l2.header);
                assert_eq!(l1.body, l2.body);
                assert_eq!(l1.latch, l2.latch);
                assert_eq!(l1.exit, l2.exit);
                assert_eq!(l1.induction, l2.induction);
                assert_eq!(l1.parent, l2.parent);
                assert_eq!(l1.line_span, l2.line_span);
            }
            assert_eq!(f1.block_loop, f2.block_loop);
        }
    }

    #[test]
    fn roundtrip_execution_matches() {
        use crate::interp::{Interpreter, NoTracer};
        let m = sample_module();
        let m2 = parse_module(&print_module(&m)).unwrap();
        let f = m.func_by_name("main").unwrap();
        let i1 = Interpreter::new(&m);
        let i2 = Interpreter::new(&m2);
        let r1 = i1.run(f, &[], &mut NoTracer).unwrap();
        let r2 = i2.run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(r1.0, r2.0);
        assert_eq!(r1.1, r2.1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "module \"x\"\ngarbage here\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_unknown_opcode() {
        let bad = "module \"x\"\nfunc f0 \"f\" arity 0 regs 1\n  block b0\n    %0 = quux %1\nendfunc\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.msg.contains("unknown opcode"), "{e}");
    }

    #[test]
    fn print_inst_forms() {
        assert_eq!(
            print_inst(&Inst::Load { dst: VReg(1), arr: ArrayId(2), idx: VReg(3) }),
            "%1 = load @2[%3]"
        );
        assert_eq!(
            print_inst(&Inst::Call { dst: None, func: FuncId(4), args: vec![VReg(0), VReg(1)] }),
            "call f4(%0, %1)"
        );
        assert_eq!(print_inst(&Inst::Ret { val: None }), "ret");
    }

    #[test]
    fn call_with_no_args_roundtrips() {
        let text = "module \"x\"\nfunc f0 \"g\" arity 0 regs 1\n  block b0\n    ret\nendfunc\nfunc f1 \"f\" arity 0 regs 1\n  block b0\n    call f0()\n    ret\nendfunc\n";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(m.funcs[1].blocks[0].insts, m2.funcs[1].blocks[0].insts);
    }
}
