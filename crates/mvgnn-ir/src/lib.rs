//! # mvgnn-ir — a miniature typed IR for parallelism discovery research
//!
//! A small, LLVM-flavoured intermediate representation: functions of basic
//! blocks of three-address instructions over virtual registers, explicit
//! loads/stores against named arrays, structured loop metadata, direct
//! calls, and synthetic source-line attribution.
//!
//! The IR substitutes for LLVM IR in the MV-GNN reproduction (see
//! DESIGN.md): the model consumes *statement-level tokens* plus a dynamic
//! dependence graph, both of which this IR provides through
//! [`interp::Interpreter`] and its [`interp::Tracer`] instrumentation hook
//! (the DiscoPoP-equivalent profiling surface).
//!
//! Modules:
//! - [`types`]: value types, runtime values, id newtypes
//! - [`inst`]: opcodes and instructions
//! - [`module`]: blocks, loops, functions, modules
//! - [`builder`]: structured-control-flow function builder
//! - [`verify`]: structural verifier
//! - [`text`]: textual printer and parser
//! - [`interp`]: tracing interpreter
//! - [`transform`]: the six "optimization level" passes used for dataset
//!   augmentation

pub mod builder;
pub mod cfg;
pub mod inst;
pub mod interp;
pub mod module;
pub mod text;
pub mod transform;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::{Cfg, Dominators};
pub use inst::{BinOp, Inst, InstRef, UnOp};
pub use interp::{ExecStats, InterpError, Interpreter, NoTracer, Tracer};
pub use module::{ArrayDecl, Block, BlockId, FuncId, Function, LoopId, LoopInfo, Module};
pub use types::{ArrayId, Ty, VReg, Value};
