//! Control-flow graph view of a function: successor/predecessor lists,
//! reverse postorder and dominators.
//!
//! Shared by the structural verifier (loop headers must dominate their
//! bodies) and by the `mvgnn-analyze` dataflow engine, which runs its
//! worklist solvers over this CFG.

use crate::inst::Inst;
use crate::module::{BlockId, Function};

/// Successor/predecessor lists of one function's basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block (terminator targets, in branch order).
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Build the CFG of `f`. Blocks without a terminator (or whose
    /// terminator is `ret`) simply have no successors; out-of-range branch
    /// targets are skipped (the verifier reports those separately).
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (b, blk) in f.blocks.iter().enumerate() {
            let targets: Vec<BlockId> = match blk.terminator() {
                Some(Inst::Br { target }) => vec![*target],
                Some(Inst::CondBr { then_blk, else_blk, .. }) => vec![*then_blk, *else_blk],
                _ => vec![],
            };
            for t in targets {
                if t.index() < n {
                    succs[b].push(t);
                    preds[t.index()].push(BlockId(b as u32));
                }
            }
        }
        Self { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Reverse postorder over blocks reachable from the entry
    /// (`BlockId(0)`). Unreachable blocks are absent.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        // Iterative DFS with an explicit child cursor (post-order emit).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((BlockId(0), 0));
        }
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succ = self.succs[b.index()].get(*next).copied();
            *next += 1;
            match succ {
                Some(s) if !visited[s.index()] => {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
                Some(_) => {}
                None => {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        post
    }
}

/// Dominator sets computed by the classic iterative data-flow algorithm
/// (`dom(b) = {b} ∪ ⋂_{p ∈ preds(b)} dom(p)`). Blocks unreachable from
/// the entry keep the full set, the standard convention that makes them
/// vacuously dominated by everything.
#[derive(Debug, Clone)]
pub struct Dominators {
    words: usize,
    sets: Vec<Vec<u64>>,
}

impl Dominators {
    /// Compute dominators over `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let words = n.div_ceil(64);
        let full = {
            let mut w = vec![u64::MAX; words];
            if !n.is_multiple_of(64) {
                if let Some(last) = w.last_mut() {
                    *last = (1u64 << (n % 64)) - 1;
                }
            }
            w
        };
        let mut sets: Vec<Vec<u64>> = vec![full; n];
        if n == 0 {
            return Self { words, sets };
        }
        sets[0] = vec![0u64; words];
        sets[0][0] = 1; // entry dominated only by itself
        let order = cfg.reverse_postorder();
        let mut changed = true;
        let mut scratch = vec![0u64; words];
        while changed {
            changed = false;
            for &b in &order {
                if b.index() == 0 {
                    continue;
                }
                scratch.copy_from_slice(&sets[b.index()]);
                let mut first = true;
                for p in &cfg.preds[b.index()] {
                    if first {
                        scratch.copy_from_slice(&sets[p.index()]);
                        first = false;
                    } else {
                        for (w, pw) in scratch.iter_mut().zip(&sets[p.index()]) {
                            *w &= pw;
                        }
                    }
                }
                if first {
                    // Reachable in RPO but no predecessor: only the entry,
                    // handled above; keep the current set.
                    continue;
                }
                scratch[b.index() / 64] |= 1u64 << (b.index() % 64);
                if scratch != sets[b.index()] {
                    sets[b.index()].copy_from_slice(&scratch);
                    changed = true;
                }
            }
        }
        Self { words, sets }
    }

    /// Does block `a` dominate block `b`?
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let _ = self.words;
        self.sets
            .get(b.index())
            .is_some_and(|s| s[a.index() / 64] & (1u64 << (a.index() % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;
    use crate::types::Ty;
    use crate::{FunctionBuilder, Module};

    fn diamond() -> Function {
        // 0 -> {1, 2} -> 3
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", 1);
        let p = b.param(0);
        let one = b.const_i64(1);
        let c = b.bin(BinOp::CmpLt, p, one);
        b.if_else(
            c,
            |b| {
                let _ = b.bin(BinOp::Add, p, p);
            },
            |b| {
                let _ = b.bin(BinOp::Sub, p, p);
            },
        );
        b.ret(None);
        let f = b.finish();
        m.funcs[f.index()].clone()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let entry = BlockId(0);
        for bi in 0..f.blocks.len() as u32 {
            assert!(dom.dominates(entry, BlockId(bi)), "entry dominates b{bi}");
            assert!(dom.dominates(BlockId(bi), BlockId(bi)), "b{bi} self-dominates");
        }
        // Neither arm dominates the join.
        let join = BlockId(f.blocks.len() as u32 - 1);
        assert!(!dom.dominates(BlockId(1), join));
        assert!(!dom.dominates(BlockId(2), join));
    }

    #[test]
    fn loop_header_dominates_body_and_latch() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "f", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(8), b.const_i64(1));
        let one = b.const_f64(1.0);
        let l = b.for_loop(lo, hi, st, |b, iv| b.store(a, iv, one));
        let fid = b.finish();
        let f = &m.funcs[fid.index()];
        let info = &f.loops[l.index()];
        let cfg = Cfg::new(f);
        let dom = Dominators::compute(&cfg);
        for blk in f.loop_blocks(l) {
            assert!(dom.dominates(info.header, blk), "header must dominate {blk:?}");
        }
    }

    #[test]
    fn rpo_visits_reachable_blocks_once() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0), "entry first");
        let mut seen = std::collections::HashSet::new();
        for b in &rpo {
            assert!(seen.insert(*b), "duplicate {b:?}");
        }
        assert_eq!(rpo.len(), f.blocks.len(), "all blocks reachable here");
    }

    #[test]
    fn unreachable_blocks_are_vacuously_dominated() {
        let mut f = diamond();
        // Append an unreachable block.
        f.blocks.push(crate::module::Block {
            insts: vec![Inst::Ret { val: None }],
            lines: vec![9],
        });
        f.block_loop.push(None);
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        let dead = BlockId(f.blocks.len() as u32 - 1);
        assert!(dom.dominates(BlockId(0), dead));
        assert!(dom.dominates(BlockId(3), dead));
        assert!(!cfg.reverse_postorder().contains(&dead));
    }
}
