//! Structured-control-flow function builder.
//!
//! Kernels are authored through closures (`for_loop`, `while_loop`,
//! `if_else`), which lets the builder record precise [`LoopInfo`] metadata
//! — header/latch/exit blocks, induction registers, nesting and synthetic
//! line spans — that the profiler later uses to attribute memory accesses
//! to loop iterations.

use crate::inst::{BinOp, Inst, UnOp};
use crate::module::{Block, BlockId, FuncId, Function, LoopId, LoopInfo, Module};
use crate::types::{ArrayId, VReg, Value};

/// Builder for one function. Create with [`FunctionBuilder::new`], emit
/// instructions and structured control flow, then call
/// [`FunctionBuilder::finish`] to append the function to the module.
///
/// ```
/// use mvgnn_ir::{FunctionBuilder, Module};
/// use mvgnn_ir::types::{Ty, Value};
/// use mvgnn_ir::inst::BinOp;
/// use mvgnn_ir::interp::{Interpreter, NoTracer};
///
/// let mut m = Module::new("demo");
/// let a = m.add_array("a", Ty::F64, 8);
/// let mut b = FunctionBuilder::new(&mut m, "main", 0);
/// let (lo, hi, st) = (b.const_i64(0), b.const_i64(8), b.const_i64(1));
/// let acc = b.const_f64(0.0);
/// b.for_loop(lo, hi, st, |b, i| {
///     let x = b.load(a, i);
///     b.bin_to(acc, BinOp::Add, acc, x);
/// });
/// b.ret(Some(acc));
/// let f = b.finish();
///
/// let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
/// assert_eq!(ret, Some(Value::F64(0.0))); // zero-initialised memory
/// ```
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    name: String,
    arity: u32,
    next_reg: u32,
    blocks: Vec<Block>,
    block_loop: Vec<Option<LoopId>>,
    loops: Vec<LoopInfo>,
    current: BlockId,
    loop_stack: Vec<LoopId>,
    line: u32,
}

impl<'m> FunctionBuilder<'m> {
    /// Start building a function with `arity` parameters. Parameters occupy
    /// registers `%0 .. %arity-1`.
    pub fn new(module: &'m mut Module, name: impl Into<String>, arity: u32) -> Self {
        let mut b = Self {
            module,
            name: name.into(),
            arity,
            next_reg: arity,
            blocks: Vec::new(),
            block_loop: Vec::new(),
            loops: Vec::new(),
            current: BlockId(0),
            loop_stack: Vec::new(),
            line: 1,
        };
        b.new_block(); // entry
        b
    }

    /// The module being extended.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Parameter register `i`.
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.arity, "param {i} out of range (arity {})", self.arity);
        VReg(i)
    }

    /// Allocate a fresh register.
    pub fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Advance the synthetic source line (one "statement" per line).
    pub fn next_line(&mut self) -> u32 {
        self.line += 1;
        self.line
    }

    /// Current synthetic line.
    pub fn current_line(&self) -> u32 {
        self.line
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        self.block_loop.push(self.loop_stack.last().copied());
        id
    }

    fn emit(&mut self, inst: Inst) {
        let line = self.line;
        let blk = &mut self.blocks[self.current.index()];
        debug_assert!(
            blk.terminator().is_none(),
            "emitting into a terminated block in fn {}",
            self.name
        );
        blk.insts.push(inst);
        blk.lines.push(line);
    }

    // ------------------------------------------------------------------
    // Straight-line instruction helpers
    // ------------------------------------------------------------------

    /// `dst = const v`
    pub fn constant(&mut self, v: Value) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Const { dst, value: v });
        dst
    }

    /// Integer constant.
    pub fn const_i64(&mut self, v: i64) -> VReg {
        self.constant(Value::I64(v))
    }

    /// Float constant.
    pub fn const_f64(&mut self, v: f64) -> VReg {
        self.constant(Value::F64(v))
    }

    /// Register copy into a fresh register.
    pub fn copy(&mut self, src: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Copy { dst, src });
        dst
    }

    /// Copy into an existing register (mutation — used for accumulators).
    pub fn copy_to(&mut self, dst: VReg, src: VReg) {
        self.emit(Inst::Copy { dst, src });
    }

    /// Binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, lhs: VReg, rhs: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// Binary operation into an existing register.
    pub fn bin_to(&mut self, dst: VReg, op: BinOp, lhs: VReg, rhs: VReg) {
        self.emit(Inst::Bin { op, dst, lhs, rhs });
    }

    /// Unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, src: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Un { op, dst, src });
        dst
    }

    /// `dst = load arr[idx]`
    pub fn load(&mut self, arr: ArrayId, idx: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Load { dst, arr, idx });
        dst
    }

    /// `store arr[idx] = src`
    pub fn store(&mut self, arr: ArrayId, idx: VReg, src: VReg) {
        self.emit(Inst::Store { arr, idx, src });
    }

    /// Call returning a value.
    pub fn call(&mut self, func: FuncId, args: &[VReg]) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Call { dst: Some(dst), func, args: args.to_vec() });
        dst
    }

    /// Call ignoring the return value.
    pub fn call_void(&mut self, func: FuncId, args: &[VReg]) {
        self.emit(Inst::Call { dst: None, func, args: args.to_vec() });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<VReg>) {
        self.emit(Inst::Ret { val });
    }

    // ------------------------------------------------------------------
    // Structured control flow
    // ------------------------------------------------------------------

    /// Counted loop `for iv in (lo..hi).step_by(step)`; returns its id.
    ///
    /// `lo`, `hi` and `step` are registers (step must be a positive i64 at
    /// run time). The body closure receives the induction register.
    pub fn for_loop(
        &mut self,
        lo: VReg,
        hi: VReg,
        step: VReg,
        body: impl FnOnce(&mut Self, VReg),
    ) -> LoopId {
        let loop_id = LoopId(self.loops.len() as u32);
        let start_line = self.next_line();
        let parent = self.loop_stack.last().copied();
        let depth = self.loop_stack.len() as u32;
        let iv = self.fresh();
        self.emit(Inst::Copy { dst: iv, src: lo });

        // Reserve the LoopInfo slot so nested loops get later ids.
        self.loops.push(LoopInfo {
            id: loop_id,
            header: BlockId(0),
            body: Vec::new(),
            latch: BlockId(0),
            exit: BlockId(0),
            induction: Some(iv),
            parent,
            depth,
            line_span: (start_line, start_line),
            annotation: None,
        });

        self.loop_stack.push(loop_id);
        let header = self.new_block();
        self.emit(Inst::Br { target: header });
        self.current = header;
        let cond = self.bin(BinOp::CmpLt, iv, hi);

        let body_entry = self.new_block();
        // Exit block belongs to the parent loop; create it after popping.
        self.emit(Inst::CondBr { cond, then_blk: body_entry, else_blk: BlockId(u32::MAX) });
        let header_condbr = (header, self.blocks[header.index()].insts.len() - 1);

        self.current = body_entry;
        let body_first_block = body_entry;
        self.next_line();
        body(self, iv);

        let latch = self.new_block();
        self.emit(Inst::Br { target: latch });
        self.current = latch;
        self.bin_to(iv, BinOp::Add, iv, step);
        self.emit(Inst::Br { target: header });

        let end_line = self.next_line();
        self.loop_stack.pop();
        let exit = self.new_block();
        // Patch the header's condbr else target now that the exit exists.
        if let Inst::CondBr { else_blk, .. } =
            &mut self.blocks[header_condbr.0.index()].insts[header_condbr.1]
        {
            *else_blk = exit;
        } else {
            unreachable!("header terminator must be a condbr");
        }

        // Collect body blocks: every block created between body_entry and
        // latch (exclusive) plus body_entry itself.
        let body_blocks: Vec<BlockId> = (body_first_block.0..latch.0).map(BlockId).collect();
        let info = &mut self.loops[loop_id.index()];
        info.header = header;
        info.body = body_blocks;
        info.latch = latch;
        info.exit = exit;
        info.line_span = (start_line, end_line);

        self.current = exit;
        loop_id
    }

    /// General `while` loop: `cond` builds the condition inside the header
    /// (re-evaluated every iteration); `body` builds the body.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> VReg,
        body: impl FnOnce(&mut Self),
    ) -> LoopId {
        let loop_id = LoopId(self.loops.len() as u32);
        let start_line = self.next_line();
        let parent = self.loop_stack.last().copied();
        let depth = self.loop_stack.len() as u32;
        self.loops.push(LoopInfo {
            id: loop_id,
            header: BlockId(0),
            body: Vec::new(),
            latch: BlockId(0),
            exit: BlockId(0),
            induction: None,
            parent,
            depth,
            line_span: (start_line, start_line),
            annotation: None,
        });

        self.loop_stack.push(loop_id);
        let header = self.new_block();
        self.emit(Inst::Br { target: header });
        self.current = header;
        let c = cond(self);
        let body_entry = self.new_block();
        self.emit(Inst::CondBr { cond: c, then_blk: body_entry, else_blk: BlockId(u32::MAX) });
        let header_condbr = (header, self.blocks[header.index()].insts.len() - 1);

        self.current = body_entry;
        self.next_line();
        body(self);

        let latch = self.new_block();
        self.emit(Inst::Br { target: latch });
        self.current = latch;
        self.emit(Inst::Br { target: header });

        let end_line = self.next_line();
        self.loop_stack.pop();
        let exit = self.new_block();
        if let Inst::CondBr { else_blk, .. } =
            &mut self.blocks[header_condbr.0.index()].insts[header_condbr.1]
        {
            *else_blk = exit;
        } else {
            unreachable!("header terminator must be a condbr");
        }

        let body_blocks: Vec<BlockId> = (body_entry.0..latch.0).map(BlockId).collect();
        let info = &mut self.loops[loop_id.index()];
        info.header = header;
        info.body = body_blocks;
        info.latch = latch;
        info.exit = exit;
        info.line_span = (start_line, end_line);

        self.current = exit;
        loop_id
    }

    /// Two-armed conditional; control rejoins after both arms.
    pub fn if_else(
        &mut self,
        cond: VReg,
        then_arm: impl FnOnce(&mut Self),
        else_arm: impl FnOnce(&mut Self),
    ) {
        self.next_line();
        let then_blk = self.new_block();
        let patch_at = (self.current, self.blocks[self.current.index()].insts.len());
        self.emit(Inst::CondBr { cond, then_blk, else_blk: BlockId(u32::MAX) });

        self.current = then_blk;
        then_arm(self);
        let then_end = self.current;

        let else_blk = self.new_block();
        if let Inst::CondBr { else_blk: e, .. } =
            &mut self.blocks[patch_at.0.index()].insts[patch_at.1]
        {
            *e = else_blk;
        } else {
            unreachable!("patched instruction must be the condbr");
        }
        self.current = else_blk;
        else_arm(self);
        let else_end = self.current;

        let join = self.new_block();
        for end in [then_end, else_end] {
            let blk = &mut self.blocks[end.index()];
            if blk.terminator().is_none() {
                blk.insts.push(Inst::Br { target: join });
                blk.lines.push(self.line);
            }
        }
        self.current = join;
        self.next_line();
    }

    /// One-armed conditional.
    pub fn if_then(&mut self, cond: VReg, then_arm: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_arm, |_| {});
    }

    /// Finish: seal the current block with `ret void` if unterminated and
    /// append the function to the module.
    pub fn finish(self) -> FuncId {
        let Self {
            module,
            name,
            arity,
            next_reg,
            mut blocks,
            block_loop,
            loops,
            current,
            loop_stack,
            line,
        } = self;
        assert!(loop_stack.is_empty(), "unclosed loops in fn {name}");
        let blk = &mut blocks[current.index()];
        if blk.terminator().is_none() {
            blk.insts.push(Inst::Ret { val: None });
            blk.lines.push(line);
        }
        let id = FuncId(module.funcs.len() as u32);
        module.funcs.push(Function {
            name,
            arity,
            num_regs: next_reg,
            blocks,
            loops,
            block_loop,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;
    use crate::verify::verify_module;

    #[test]
    fn simple_for_loop_builds_and_verifies() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(8);
        let step = b.const_i64(1);
        let one = b.const_f64(1.0);
        let l = b.for_loop(lo, hi, step, |b, iv| {
            b.store(a, iv, one);
        });
        b.ret(None);
        let f = b.finish();
        verify_module(&m).unwrap();
        let fun = &m.funcs[f.index()];
        assert_eq!(fun.loops.len(), 1);
        let info = &fun.loops[l.index()];
        assert!(info.induction.is_some());
        assert_eq!(info.depth, 0);
        assert!(info.line_span.1 > info.line_span.0);
        // Header belongs to the loop; exit does not.
        assert_eq!(fun.loop_of_block(info.header), Some(l));
        assert_eq!(fun.loop_of_block(info.exit), None);
    }

    #[test]
    fn nested_loops_record_parents() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(4);
        let step = b.const_i64(1);
        let mut inner_id = None;
        let outer = b.for_loop(lo, hi, step, |b, _i| {
            let lo2 = b.const_i64(0);
            let hi2 = b.const_i64(4);
            let st2 = b.const_i64(1);
            inner_id = Some(b.for_loop(lo2, hi2, st2, |_b, _j| {}));
        });
        let f = b.finish();
        verify_module(&m).unwrap();
        let fun = &m.funcs[f.index()];
        let inner = inner_id.unwrap();
        assert_eq!(fun.loops[inner.index()].parent, Some(outer));
        assert_eq!(fun.loops[inner.index()].depth, 1);
        assert_eq!(fun.loops[outer.index()].parent, None);
        // Inner header nests inside outer body coverage.
        let inner_header = fun.loops[inner.index()].header;
        assert_eq!(fun.loop_chain(inner_header), vec![inner, outer]);
    }

    #[test]
    fn if_else_joins() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 1);
        let p = b.param(0);
        let one = b.const_i64(1);
        let c = b.bin(BinOp::CmpLt, p, one);
        let acc = b.const_i64(0);
        b.if_else(
            c,
            |b| {
                b.bin_to(acc, BinOp::Add, acc, one);
            },
            |b| {
                b.bin_to(acc, BinOp::Sub, acc, one);
            },
        );
        b.ret(Some(acc));
        b.finish();
        verify_module(&m).unwrap();
    }

    #[test]
    fn while_loop_builds() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let n = b.const_i64(10);
        let i = b.const_i64(0);
        let one = b.const_i64(1);
        let l = b.while_loop(
            |b| b.bin(BinOp::CmpLt, i, n),
            |b| {
                b.bin_to(i, BinOp::Add, i, one);
            },
        );
        b.ret(Some(i));
        let f = b.finish();
        verify_module(&m).unwrap();
        assert!(m.funcs[f.index()].loops[l.index()].induction.is_none());
    }

    #[test]
    fn finish_seals_open_block() {
        let mut m = Module::new("t");
        let b = FunctionBuilder::new(&mut m, "empty", 0);
        let f = b.finish();
        let fun = &m.funcs[f.index()];
        assert!(fun.blocks[0].terminator().is_some());
        verify_module(&m).unwrap();
    }

    #[test]
    #[should_panic(expected = "param 2 out of range")]
    fn param_out_of_range_panics() {
        let mut m = Module::new("t");
        let b = FunctionBuilder::new(&mut m, "f", 2);
        let _ = b.param(2);
    }
}
