//! Structural verifier: every block terminated exactly once, branch
//! targets and register/array/function indices in range, loop metadata
//! self-consistent.

use crate::inst::Inst;
use crate::module::{Function, Module};

/// A verification failure with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

fn err(msg: impl Into<String>) -> Result<(), VerifyError> {
    Err(VerifyError(msg.into()))
}

/// Verify one function against its module.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len();
    if nblocks == 0 {
        return err(format!("fn {}: no blocks", f.name));
    }
    if f.arity > f.num_regs {
        return err(format!("fn {}: arity {} exceeds register count {}", f.name, f.arity, f.num_regs));
    }
    if f.block_loop.len() != nblocks {
        return err(format!("fn {}: block_loop length mismatch", f.name));
    }
    for (bi, blk) in f.blocks.iter().enumerate() {
        if blk.insts.len() != blk.lines.len() {
            return err(format!("fn {} block {bi}: lines not parallel to insts", f.name));
        }
        if blk.terminator().is_none() {
            return err(format!("fn {} block {bi}: missing terminator", f.name));
        }
        for (ii, inst) in blk.insts.iter().enumerate() {
            if inst.is_terminator() && ii + 1 != blk.insts.len() {
                return err(format!("fn {} block {bi} inst {ii}: terminator mid-block", f.name));
            }
            if let Some(d) = inst.def() {
                if d.0 >= f.num_regs {
                    return err(format!("fn {} block {bi} inst {ii}: def {d} out of range", f.name));
                }
            }
            for u in inst.uses() {
                if u.0 >= f.num_regs {
                    return err(format!("fn {} block {bi} inst {ii}: use {u} out of range", f.name));
                }
            }
            match inst {
                Inst::Br { target }
                    if target.index() >= nblocks => {
                        return err(format!("fn {} block {bi}: br target out of range", f.name));
                    }
                Inst::CondBr { then_blk, else_blk, .. }
                    if (then_blk.index() >= nblocks || else_blk.index() >= nblocks) => {
                        return err(format!("fn {} block {bi}: condbr target out of range", f.name));
                    }
                Inst::Load { arr, .. } | Inst::Store { arr, .. }
                    if arr.index() >= m.arrays.len() => {
                        return err(format!("fn {} block {bi}: array {arr} undeclared", f.name));
                    }
                Inst::Call { func, args, .. } => {
                    let Some(callee) = m.funcs.get(func.index()) else {
                        return err(format!("fn {} block {bi}: call to missing fn {}", f.name, func.0));
                    };
                    if args.len() != callee.arity as usize {
                        return err(format!(
                            "fn {} block {bi}: call to {} with {} args, arity {}",
                            f.name,
                            callee.name,
                            args.len(),
                            callee.arity
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    for info in &f.loops {
        for b in [info.header, info.latch, info.exit] {
            if b.index() >= nblocks {
                return err(format!("fn {} loop {}: block out of range", f.name, info.id.0));
            }
        }
        for b in &info.body {
            if b.index() >= nblocks {
                return err(format!("fn {} loop {}: body block out of range", f.name, info.id.0));
            }
        }
        if let Some(p) = info.parent {
            if p.index() >= f.loops.len() {
                return err(format!("fn {} loop {}: parent out of range", f.name, info.id.0));
            }
            if f.loops[p.index()].depth + 1 != info.depth {
                return err(format!("fn {} loop {}: depth inconsistent with parent", f.name, info.id.0));
            }
        } else if info.depth != 0 {
            return err(format!("fn {} loop {}: root loop with non-zero depth", f.name, info.id.0));
        }
    }
    Ok(())
}

/// Verify every function in the module plus module-level invariants
/// (unique names, non-empty arrays).
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = std::collections::HashSet::new();
    for f in &m.funcs {
        if !names.insert(&f.name) {
            return err(format!("duplicate function name {}", f.name));
        }
    }
    let mut anames = std::collections::HashSet::new();
    for a in &m.arrays {
        if a.len == 0 {
            return err(format!("array {} has zero length", a.name));
        }
        if !anames.insert(&a.name) {
            return err(format!("duplicate array name {}", a.name));
        }
    }
    for f in &m.funcs {
        verify_function(m, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::module::{Block, BlockId, Function};
    use crate::types::{Ty, VReg};

    fn minimal_fn(insts: Vec<Inst>) -> Function {
        let n = insts.len();
        Function {
            name: "f".into(),
            arity: 0,
            num_regs: 4,
            blocks: vec![Block { insts, lines: vec![1; n] }],
            loops: vec![],
            block_loop: vec![None],
        }
    }

    #[test]
    fn accepts_minimal_function() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }]));
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Copy { dst: VReg(0), src: VReg(1) }]));
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("missing terminator"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Ret { val: None },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("terminator mid-block"), "{e}");
    }

    #[test]
    fn rejects_register_out_of_range() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Copy { dst: VReg(9), src: VReg(0) },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Br { target: BlockId(5) }]));
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("br target"), "{e}");
    }

    #[test]
    fn rejects_undeclared_array() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Load { dst: VReg(0), arr: crate::types::ArrayId(0), idx: VReg(1) },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }])); // callee arity 0
        m.funcs.push(Function {
            name: "g".into(),
            arity: 0,
            num_regs: 4,
            blocks: vec![Block {
                insts: vec![
                    Inst::Call { dst: None, func: crate::module::FuncId(0), args: vec![VReg(0)] },
                    Inst::Ret { val: None },
                ],
                lines: vec![1, 1],
            }],
            loops: vec![],
            block_loop: vec![None],
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.0.contains("arity"), "{e}");
    }

    #[test]
    fn rejects_duplicate_names_and_zero_arrays() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }]));
        let mut f2 = minimal_fn(vec![Inst::Ret { val: None }]);
        f2.name = "f".into();
        m.funcs.push(f2);
        assert!(verify_module(&m).unwrap_err().0.contains("duplicate"));

        let mut m2 = Module::new("t");
        m2.add_array("a", Ty::F64, 0);
        assert!(verify_module(&m2).unwrap_err().0.contains("zero length"));
    }
}
