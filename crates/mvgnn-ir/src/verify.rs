//! Structural verifier: every block terminated exactly once, branch
//! targets and register/array/function indices in range, loop metadata
//! self-consistent, and loop headers dominating their bodies.
//!
//! Failures are typed ([`VerifyError`]) so tooling — most notably the
//! `mvgnn-bench` corpus linter — can react to the *kind* of violation
//! instead of grepping a message string.

use crate::cfg::{Cfg, Dominators};
use crate::inst::Inst;
use crate::module::{BlockId, Function, LoopId, Module};
use crate::types::{ArrayId, VReg};

/// A typed verification failure. The `Display` form keeps the
/// human-readable phrasing the rest of the workspace reports to users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Function has no basic blocks.
    NoBlocks {
        /// Offending function name.
        func: String,
    },
    /// `arity` exceeds the declared register count.
    ArityExceedsRegs {
        /// Offending function name.
        func: String,
        /// Declared parameter count.
        arity: u32,
        /// Declared register count.
        num_regs: u32,
    },
    /// `block_loop` is not parallel to `blocks`.
    BlockLoopLenMismatch {
        /// Offending function name.
        func: String,
    },
    /// A block's `lines` vector is not parallel to its `insts`.
    LinesNotParallel {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A block does not end in a terminator.
    MissingTerminator {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of its block.
    TerminatorMidBlock {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index of the stray terminator.
        idx: usize,
    },
    /// An instruction defines or uses a register `>= num_regs`.
    RegOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index.
        idx: usize,
        /// The out-of-range register.
        reg: VReg,
        /// Whether the register is written (`true`) or read.
        is_def: bool,
    },
    /// A branch targets a block outside the function.
    BranchTargetOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Whether the terminator is a conditional branch.
        conditional: bool,
    },
    /// A load/store references an array the module does not declare.
    UndeclaredArray {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The undeclared array id.
        arr: ArrayId,
    },
    /// A call references a function index outside the module.
    CallToMissingFunc {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The missing callee index.
        callee: u32,
    },
    /// A call passes a different number of arguments than the callee's
    /// arity.
    CallArityMismatch {
        /// Offending function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Callee name.
        callee: String,
        /// Arguments passed.
        args: usize,
        /// Callee arity.
        arity: u32,
    },
    /// Loop metadata references a block outside the function.
    LoopBlockOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending loop.
        l: LoopId,
    },
    /// A loop's parent id is out of range.
    LoopParentOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending loop.
        l: LoopId,
    },
    /// A loop's depth disagrees with its parent chain.
    LoopDepthInconsistent {
        /// Offending function name.
        func: String,
        /// Offending loop.
        l: LoopId,
    },
    /// A loop's induction register is out of range.
    InductionOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending loop.
        l: LoopId,
        /// The out-of-range register.
        reg: VReg,
    },
    /// A loop header fails to dominate a body or latch block, so the
    /// "loop" is not a natural loop and iteration attribution (profiler,
    /// dataflow analyses) would be meaningless.
    HeaderDoesNotDominate {
        /// Offending function name.
        func: String,
        /// Offending loop.
        l: LoopId,
        /// The body/latch block the header does not dominate.
        block: BlockId,
    },
    /// Two functions share a name.
    DuplicateFunctionName {
        /// The duplicated name.
        name: String,
    },
    /// Two arrays share a name.
    DuplicateArrayName {
        /// The duplicated name.
        name: String,
    },
    /// An array is declared with zero elements.
    ZeroLengthArray {
        /// Offending array name.
        name: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR verification failed: ")?;
        match self {
            VerifyError::NoBlocks { func } => write!(f, "fn {func}: no blocks"),
            VerifyError::ArityExceedsRegs { func, arity, num_regs } => {
                write!(f, "fn {func}: arity {arity} exceeds register count {num_regs}")
            }
            VerifyError::BlockLoopLenMismatch { func } => {
                write!(f, "fn {func}: block_loop length mismatch")
            }
            VerifyError::LinesNotParallel { func, block } => {
                write!(f, "fn {func} block {}: lines not parallel to insts", block.0)
            }
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "fn {func} block {}: missing terminator", block.0)
            }
            VerifyError::TerminatorMidBlock { func, block, idx } => {
                write!(f, "fn {func} block {} inst {idx}: terminator mid-block", block.0)
            }
            VerifyError::RegOutOfRange { func, block, idx, reg, is_def } => {
                let what = if *is_def { "def" } else { "use" };
                write!(f, "fn {func} block {} inst {idx}: {what} {reg} out of range", block.0)
            }
            VerifyError::BranchTargetOutOfRange { func, block, conditional } => {
                let which = if *conditional { "condbr" } else { "br" };
                write!(f, "fn {func} block {}: {which} target out of range", block.0)
            }
            VerifyError::UndeclaredArray { func, block, arr } => {
                write!(f, "fn {func} block {}: array {arr} undeclared", block.0)
            }
            VerifyError::CallToMissingFunc { func, block, callee } => {
                write!(f, "fn {func} block {}: call to missing fn {callee}", block.0)
            }
            VerifyError::CallArityMismatch { func, block, callee, args, arity } => {
                write!(
                    f,
                    "fn {func} block {}: call to {callee} with {args} args, arity {arity}",
                    block.0
                )
            }
            VerifyError::LoopBlockOutOfRange { func, l } => {
                write!(f, "fn {func} loop {}: block out of range", l.0)
            }
            VerifyError::LoopParentOutOfRange { func, l } => {
                write!(f, "fn {func} loop {}: parent out of range", l.0)
            }
            VerifyError::LoopDepthInconsistent { func, l } => {
                write!(f, "fn {func} loop {}: depth inconsistent with parent", l.0)
            }
            VerifyError::InductionOutOfRange { func, l, reg } => {
                write!(f, "fn {func} loop {}: induction {reg} out of range", l.0)
            }
            VerifyError::HeaderDoesNotDominate { func, l, block } => {
                write!(f, "fn {func} loop {}: header does not dominate block {}", l.0, block.0)
            }
            VerifyError::DuplicateFunctionName { name } => {
                write!(f, "duplicate function name {name}")
            }
            VerifyError::DuplicateArrayName { name } => write!(f, "duplicate array name {name}"),
            VerifyError::ZeroLengthArray { name } => write!(f, "array {name} has zero length"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify one function against its module.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len();
    let func = || f.name.clone();
    if nblocks == 0 {
        return Err(VerifyError::NoBlocks { func: func() });
    }
    if f.arity > f.num_regs {
        return Err(VerifyError::ArityExceedsRegs {
            func: func(),
            arity: f.arity,
            num_regs: f.num_regs,
        });
    }
    if f.block_loop.len() != nblocks {
        return Err(VerifyError::BlockLoopLenMismatch { func: func() });
    }
    for (bi, blk) in f.blocks.iter().enumerate() {
        let block = BlockId(bi as u32);
        if blk.insts.len() != blk.lines.len() {
            return Err(VerifyError::LinesNotParallel { func: func(), block });
        }
        if blk.terminator().is_none() {
            return Err(VerifyError::MissingTerminator { func: func(), block });
        }
        for (ii, inst) in blk.insts.iter().enumerate() {
            if inst.is_terminator() && ii + 1 != blk.insts.len() {
                return Err(VerifyError::TerminatorMidBlock { func: func(), block, idx: ii });
            }
            if let Some(d) = inst.def() {
                if d.0 >= f.num_regs {
                    return Err(VerifyError::RegOutOfRange {
                        func: func(),
                        block,
                        idx: ii,
                        reg: d,
                        is_def: true,
                    });
                }
            }
            for u in inst.uses() {
                if u.0 >= f.num_regs {
                    return Err(VerifyError::RegOutOfRange {
                        func: func(),
                        block,
                        idx: ii,
                        reg: u,
                        is_def: false,
                    });
                }
            }
            match inst {
                Inst::Br { target }
                    if target.index() >= nblocks => {
                        return Err(VerifyError::BranchTargetOutOfRange {
                            func: func(),
                            block,
                            conditional: false,
                        });
                    }
                Inst::CondBr { then_blk, else_blk, .. }
                    if (then_blk.index() >= nblocks || else_blk.index() >= nblocks) => {
                        return Err(VerifyError::BranchTargetOutOfRange {
                            func: func(),
                            block,
                            conditional: true,
                        });
                    }
                Inst::Load { arr, .. } | Inst::Store { arr, .. }
                    if arr.index() >= m.arrays.len() => {
                        return Err(VerifyError::UndeclaredArray { func: func(), block, arr: *arr });
                    }
                Inst::Call { func: callee, args, .. } => {
                    let Some(target) = m.funcs.get(callee.index()) else {
                        return Err(VerifyError::CallToMissingFunc {
                            func: func(),
                            block,
                            callee: callee.0,
                        });
                    };
                    if args.len() != target.arity as usize {
                        return Err(VerifyError::CallArityMismatch {
                            func: func(),
                            block,
                            callee: target.name.clone(),
                            args: args.len(),
                            arity: target.arity,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Loop metadata: block ranges, parent chains, induction registers, and
    // — once the ranges are known good — header dominance over the body.
    for info in &f.loops {
        for b in [info.header, info.latch, info.exit] {
            if b.index() >= nblocks {
                return Err(VerifyError::LoopBlockOutOfRange { func: func(), l: info.id });
            }
        }
        for b in &info.body {
            if b.index() >= nblocks {
                return Err(VerifyError::LoopBlockOutOfRange { func: func(), l: info.id });
            }
        }
        if let Some(iv) = info.induction {
            if iv.0 >= f.num_regs {
                return Err(VerifyError::InductionOutOfRange { func: func(), l: info.id, reg: iv });
            }
        }
        if let Some(p) = info.parent {
            if p.index() >= f.loops.len() {
                return Err(VerifyError::LoopParentOutOfRange { func: func(), l: info.id });
            }
            if f.loops[p.index()].depth + 1 != info.depth {
                return Err(VerifyError::LoopDepthInconsistent { func: func(), l: info.id });
            }
        } else if info.depth != 0 {
            return Err(VerifyError::LoopDepthInconsistent { func: func(), l: info.id });
        }
    }
    if !f.loops.is_empty() {
        let dom = Dominators::compute(&Cfg::new(f));
        for info in &f.loops {
            for b in info.body.iter().copied().chain([info.latch]) {
                if !dom.dominates(info.header, b) {
                    return Err(VerifyError::HeaderDoesNotDominate {
                        func: func(),
                        l: info.id,
                        block: b,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verify every function in the module plus module-level invariants
/// (unique names, non-empty arrays).
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = std::collections::HashSet::new();
    for f in &m.funcs {
        if !names.insert(&f.name) {
            return Err(VerifyError::DuplicateFunctionName { name: f.name.clone() });
        }
    }
    let mut anames = std::collections::HashSet::new();
    for a in &m.arrays {
        if a.len == 0 {
            return Err(VerifyError::ZeroLengthArray { name: a.name.clone() });
        }
        if !anames.insert(&a.name) {
            return Err(VerifyError::DuplicateArrayName { name: a.name.clone() });
        }
    }
    for f in &m.funcs {
        verify_function(m, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::module::{Block, BlockId, Function, LoopInfo};
    use crate::types::{Ty, VReg};

    fn minimal_fn(insts: Vec<Inst>) -> Function {
        let n = insts.len();
        Function {
            name: "f".into(),
            arity: 0,
            num_regs: 4,
            blocks: vec![Block { insts, lines: vec![1; n] }],
            loops: vec![],
            block_loop: vec![None],
        }
    }

    #[test]
    fn accepts_minimal_function() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }]));
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Copy { dst: VReg(0), src: VReg(1) }]));
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(e, VerifyError::MissingTerminator { .. }), "{e}");
        assert!(e.to_string().contains("missing terminator"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Ret { val: None },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(e, VerifyError::TerminatorMidBlock { idx: 0, .. }), "{e}");
    }

    #[test]
    fn rejects_register_out_of_range() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Copy { dst: VReg(9), src: VReg(0) },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(
            matches!(e, VerifyError::RegOutOfRange { reg: VReg(9), is_def: true, .. }),
            "{e}"
        );
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Br { target: BlockId(5) }]));
        let e = verify_module(&m).unwrap_err();
        assert!(
            matches!(e, VerifyError::BranchTargetOutOfRange { conditional: false, .. }),
            "{e}"
        );
        assert!(e.to_string().contains("br target"), "{e}");
    }

    #[test]
    fn rejects_undeclared_array() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![
            Inst::Load { dst: VReg(0), arr: crate::types::ArrayId(0), idx: VReg(1) },
            Inst::Ret { val: None },
        ]));
        let e = verify_module(&m).unwrap_err();
        assert!(
            matches!(e, VerifyError::UndeclaredArray { arr: crate::types::ArrayId(0), .. }),
            "{e}"
        );
        assert!(e.to_string().contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }])); // callee arity 0
        m.funcs.push(Function {
            name: "g".into(),
            arity: 0,
            num_regs: 4,
            blocks: vec![Block {
                insts: vec![
                    Inst::Call { dst: None, func: crate::module::FuncId(0), args: vec![VReg(0)] },
                    Inst::Ret { val: None },
                ],
                lines: vec![1, 1],
            }],
            loops: vec![],
            block_loop: vec![None],
        });
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(e, VerifyError::CallArityMismatch { args: 1, arity: 0, .. }), "{e}");
    }

    #[test]
    fn rejects_duplicate_names_and_zero_arrays() {
        let mut m = Module::new("t");
        m.funcs.push(minimal_fn(vec![Inst::Ret { val: None }]));
        let mut f2 = minimal_fn(vec![Inst::Ret { val: None }]);
        f2.name = "f".into();
        m.funcs.push(f2);
        assert!(matches!(
            verify_module(&m).unwrap_err(),
            VerifyError::DuplicateFunctionName { .. }
        ));

        let mut m2 = Module::new("t");
        m2.add_array("a", Ty::F64, 0);
        assert!(matches!(verify_module(&m2).unwrap_err(), VerifyError::ZeroLengthArray { .. }));
    }

    #[test]
    fn rejects_out_of_range_induction() {
        let mut m = Module::new("t");
        let mut f = minimal_fn(vec![Inst::Ret { val: None }]);
        f.loops.push(LoopInfo {
            id: crate::module::LoopId(0),
            header: BlockId(0),
            body: vec![],
            latch: BlockId(0),
            exit: BlockId(0),
            induction: Some(VReg(99)),
            parent: None,
            depth: 0,
            line_span: (1, 2),
            annotation: None,
        });
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(matches!(e, VerifyError::InductionOutOfRange { reg: VReg(99), .. }), "{e}");
    }

    #[test]
    fn rejects_header_not_dominating_body() {
        // Block 0 (entry) branches straight to block 2 ("body"), bypassing
        // block 1 which the metadata claims is the loop header.
        let mut m = Module::new("t");
        let f = Function {
            name: "f".into(),
            arity: 0,
            num_regs: 1,
            blocks: vec![
                Block { insts: vec![Inst::Br { target: BlockId(2) }], lines: vec![1] },
                Block { insts: vec![Inst::Br { target: BlockId(2) }], lines: vec![2] },
                Block { insts: vec![Inst::Ret { val: None }], lines: vec![3] },
            ],
            loops: vec![LoopInfo {
                id: crate::module::LoopId(0),
                header: BlockId(1),
                body: vec![BlockId(2)],
                latch: BlockId(2),
                exit: BlockId(2),
                induction: None,
                parent: None,
                depth: 0,
                line_span: (1, 3),
                annotation: None,
            }],
            block_loop: vec![None, Some(crate::module::LoopId(0)), Some(crate::module::LoopId(0))],
        };
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(
            matches!(e, VerifyError::HeaderDoesNotDominate { block: BlockId(2), .. }),
            "{e}"
        );
    }

    #[test]
    fn builder_loops_satisfy_dominance() {
        use crate::inst::BinOp;
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 8);
        let mut b = crate::FunctionBuilder::new(&mut m, "main", 0);
        let (lo, hi, st) = (b.const_i64(0), b.const_i64(8), b.const_i64(1));
        b.for_loop(lo, hi, st, |b, i| {
            let x = b.load(a, i);
            let one = b.const_i64(1);
            let c = b.bin(BinOp::CmpLt, x, one);
            b.if_then(c, |b| {
                let y = b.bin(BinOp::Add, x, x);
                b.store(a, i, y);
            });
        });
        b.finish();
        verify_module(&m).unwrap();
    }
}
