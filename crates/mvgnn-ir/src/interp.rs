//! Tracing interpreter — the "instrumented execution" half of the
//! DiscoPoP-equivalent profiler.
//!
//! Every executed instruction, memory access, loop-iteration boundary and
//! call is reported to a [`Tracer`]. The dependence profiler in
//! `mvgnn-profiler` implements `Tracer` to reconstruct the dynamic data
//! dependence graph; [`NoTracer`] runs at full speed for plain evaluation.

use crate::inst::{BinOp, Inst, InstRef, UnOp};
use crate::module::{BlockId, FuncId, LoopId, Module};
use crate::types::{ArrayId, Value};

/// Instrumentation hook. All methods default to no-ops so tracers override
/// only what they need.
pub trait Tracer {
    /// Called before each instruction executes.
    fn on_inst(&mut self, _r: InstRef, _line: u32) {}
    /// A load of `arr[idx]` at instruction `r`.
    fn on_load(&mut self, _r: InstRef, _arr: ArrayId, _idx: i64) {}
    /// A store to `arr[idx]` at instruction `r`.
    fn on_store(&mut self, _r: InstRef, _arr: ArrayId, _idx: i64) {}
    /// Control entered loop `l` of function `func` (from outside).
    fn on_loop_enter(&mut self, _func: FuncId, _l: LoopId) {}
    /// A new iteration of loop `l` began (header test passed).
    fn on_loop_iter(&mut self, _func: FuncId, _l: LoopId) {}
    /// Control left loop `l` (header test failed).
    fn on_loop_exit(&mut self, _func: FuncId, _l: LoopId) {}
    /// A call from instruction `r` to `callee` is about to run.
    fn on_call(&mut self, _r: InstRef, _callee: FuncId) {}
    /// Function `func` returned.
    fn on_ret(&mut self, _func: FuncId) {}
}

/// Tracer that records nothing.
pub struct NoTracer;

impl Tracer for NoTracer {}

/// Aggregate execution statistics, always collected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub steps: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed.
    pub calls: u64,
    /// Maximum call depth reached.
    pub max_depth: u32,
}

/// Run-time failure.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Integer division or remainder by zero.
    DivByZero(InstRef),
    /// Array access out of bounds.
    OutOfBounds {
        /// Faulting instruction.
        at: InstRef,
        /// Array accessed.
        arr: ArrayId,
        /// Index used.
        idx: i64,
        /// Array length.
        len: usize,
    },
    /// Operand types did not match the opcode.
    TypeError(InstRef, &'static str),
    /// The step budget was exhausted (runaway loop guard).
    StepLimit(u64),
    /// The call depth budget was exhausted (runaway recursion guard).
    DepthLimit(u32),
    /// Call target does not exist (unverified module).
    BadFunction(FuncId),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::DivByZero(r) => write!(f, "division by zero at {r}"),
            InterpError::OutOfBounds { at, arr, idx, len } => {
                write!(f, "out-of-bounds access {arr}[{idx}] (len {len}) at {at}")
            }
            InterpError::TypeError(r, msg) => write!(f, "type error at {r}: {msg}"),
            InterpError::StepLimit(n) => write!(f, "step limit {n} exhausted"),
            InterpError::DepthLimit(n) => write!(f, "call depth limit {n} exhausted"),
            InterpError::BadFunction(id) => write!(f, "call to missing function f{}", id.0),
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter. Cheap to construct; holds only configuration and a
/// reference to the module.
pub struct Interpreter<'m> {
    module: &'m Module,
    max_steps: u64,
    max_call_depth: u32,
}

impl<'m> Interpreter<'m> {
    /// Create with default budgets (16M steps, depth 512).
    pub fn new(module: &'m Module) -> Self {
        Self { module, max_steps: 16_000_000, max_call_depth: 512 }
    }

    /// Override the step budget.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Override the call depth budget.
    pub fn with_max_call_depth(mut self, n: u32) -> Self {
        self.max_call_depth = n;
        self
    }

    /// Allocate zeroed memory for every array in the module.
    pub fn fresh_memory(&self) -> Vec<Vec<Value>> {
        self.module
            .arrays
            .iter()
            .map(|a| vec![Value::zero(a.ty); a.len])
            .collect()
    }

    /// Run `func` with `args` against fresh zeroed memory.
    pub fn run<T: Tracer>(
        &self,
        func: FuncId,
        args: &[Value],
        tracer: &mut T,
    ) -> Result<(Option<Value>, ExecStats), InterpError> {
        let mut mem = self.fresh_memory();
        self.run_with_memory(func, args, &mut mem, tracer)
    }

    /// Run `func` with `args` against caller-provided memory (lets callers
    /// seed input arrays and inspect outputs).
    pub fn run_with_memory<T: Tracer>(
        &self,
        func: FuncId,
        args: &[Value],
        mem: &mut Vec<Vec<Value>>,
        tracer: &mut T,
    ) -> Result<(Option<Value>, ExecStats), InterpError> {
        assert_eq!(
            mem.len(),
            self.module.arrays.len(),
            "memory layout does not match module arrays"
        );
        let mut stats = ExecStats::default();
        let ret = self.exec_function(func, args, mem, tracer, &mut stats, 1)?;
        Ok((ret, stats))
    }

    fn exec_function<T: Tracer>(
        &self,
        func: FuncId,
        args: &[Value],
        mem: &mut Vec<Vec<Value>>,
        tracer: &mut T,
        stats: &mut ExecStats,
        depth: u32,
    ) -> Result<Option<Value>, InterpError> {
        if depth > self.max_call_depth {
            return Err(InterpError::DepthLimit(self.max_call_depth));
        }
        stats.max_depth = stats.max_depth.max(depth);
        let f = self.module.funcs.get(func.index()).ok_or(InterpError::BadFunction(func))?;
        assert_eq!(args.len(), f.arity as usize, "fn {}: argument count mismatch", f.name);

        let mut regs = vec![Value::I64(0); f.num_regs as usize];
        regs[..args.len()].copy_from_slice(args);

        // Map header block -> loop id for iteration-boundary detection.
        let mut header_of: Vec<Option<LoopId>> = vec![None; f.blocks.len()];
        for info in &f.loops {
            header_of[info.header.index()] = Some(info.id);
        }
        // Loops currently active in this frame (innermost last).
        let mut active: Vec<LoopId> = Vec::new();

        let mut block = BlockId(0);
        let mut idx = 0usize;
        loop {
            stats.steps += 1;
            if stats.steps > self.max_steps {
                return Err(InterpError::StepLimit(self.max_steps));
            }
            let blk = &f.blocks[block.index()];
            let inst = &blk.insts[idx];
            let r = InstRef { func, block, idx: idx as u32 };
            tracer.on_inst(r, blk.lines[idx]);

            match inst {
                Inst::Const { dst, value } => {
                    regs[dst.index()] = *value;
                    idx += 1;
                }
                Inst::Copy { dst, src } => {
                    regs[dst.index()] = regs[src.index()];
                    idx += 1;
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    regs[dst.index()] = eval_bin(*op, regs[lhs.index()], regs[rhs.index()], r)?;
                    idx += 1;
                }
                Inst::Un { op, dst, src } => {
                    regs[dst.index()] = eval_un(*op, regs[src.index()], r)?;
                    idx += 1;
                }
                Inst::Load { dst, arr, idx: ireg } => {
                    let i = regs[ireg.index()]
                        .as_i64()
                        .ok_or(InterpError::TypeError(r, "load index must be i64"))?;
                    let cells = &mem[arr.index()];
                    if i < 0 || i as usize >= cells.len() {
                        return Err(InterpError::OutOfBounds {
                            at: r,
                            arr: *arr,
                            idx: i,
                            len: cells.len(),
                        });
                    }
                    stats.loads += 1;
                    tracer.on_load(r, *arr, i);
                    regs[dst.index()] = cells[i as usize];
                    idx += 1;
                }
                Inst::Store { arr, idx: ireg, src } => {
                    let i = regs[ireg.index()]
                        .as_i64()
                        .ok_or(InterpError::TypeError(r, "store index must be i64"))?;
                    let cells = &mut mem[arr.index()];
                    if i < 0 || i as usize >= cells.len() {
                        return Err(InterpError::OutOfBounds {
                            at: r,
                            arr: *arr,
                            idx: i,
                            len: cells.len(),
                        });
                    }
                    stats.stores += 1;
                    tracer.on_store(r, *arr, i);
                    cells[i as usize] = regs[src.index()];
                    idx += 1;
                }
                Inst::Call { dst, func: callee, args: arg_regs } => {
                    stats.calls += 1;
                    tracer.on_call(r, *callee);
                    let argv: Vec<Value> = arg_regs.iter().map(|a| regs[a.index()]).collect();
                    let ret =
                        self.exec_function(*callee, &argv, mem, tracer, stats, depth + 1)?;
                    if let Some(d) = dst {
                        regs[d.index()] = ret.unwrap_or(Value::I64(0));
                    }
                    idx += 1;
                }
                Inst::Br { target } => {
                    block = *target;
                    idx = 0;
                }
                Inst::CondBr { cond, then_blk, else_blk } => {
                    let taken = regs[cond.index()].is_truthy();
                    // Loop boundary bookkeeping: a condbr in a loop header
                    // marks an iteration (taken) or the loop exit (not taken).
                    if let Some(l) = header_of[block.index()] {
                        if taken {
                            if active.last() != Some(&l) {
                                active.push(l);
                                tracer.on_loop_enter(func, l);
                            }
                            tracer.on_loop_iter(func, l);
                        } else if active.last() == Some(&l) {
                            active.pop();
                            tracer.on_loop_exit(func, l);
                        }
                    }
                    block = if taken { *then_blk } else { *else_blk };
                    idx = 0;
                }
                Inst::Ret { val } => {
                    // Close any loops still active (early return from a loop).
                    while let Some(l) = active.pop() {
                        tracer.on_loop_exit(func, l);
                    }
                    tracer.on_ret(func);
                    return Ok(val.map(|v| regs[v.index()]));
                }
            }
        }
    }
}

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value, r: InstRef) -> Result<Value, InterpError> {
    use BinOp::*;
    use Value::{F64, I64};
    Ok(match (op, a, b) {
        (Add, I64(x), I64(y)) => I64(x.wrapping_add(y)),
        (Sub, I64(x), I64(y)) => I64(x.wrapping_sub(y)),
        (Mul, I64(x), I64(y)) => I64(x.wrapping_mul(y)),
        (Div, I64(x), I64(y)) => {
            if y == 0 {
                return Err(InterpError::DivByZero(r));
            }
            I64(x.wrapping_div(y))
        }
        (Rem, I64(x), I64(y)) => {
            if y == 0 {
                return Err(InterpError::DivByZero(r));
            }
            I64(x.wrapping_rem(y))
        }
        (Min, I64(x), I64(y)) => I64(x.min(y)),
        (Max, I64(x), I64(y)) => I64(x.max(y)),
        (And, I64(x), I64(y)) => I64(x & y),
        (Or, I64(x), I64(y)) => I64(x | y),
        (Xor, I64(x), I64(y)) => I64(x ^ y),
        (Shl, I64(x), I64(y)) => I64(x.wrapping_shl(y as u32)),
        (Shr, I64(x), I64(y)) => I64(x.wrapping_shr(y as u32)),
        (CmpEq, I64(x), I64(y)) => I64((x == y) as i64),
        (CmpNe, I64(x), I64(y)) => I64((x != y) as i64),
        (CmpLt, I64(x), I64(y)) => I64((x < y) as i64),
        (CmpLe, I64(x), I64(y)) => I64((x <= y) as i64),

        (Add, F64(x), F64(y)) => F64(x + y),
        (Sub, F64(x), F64(y)) => F64(x - y),
        (Mul, F64(x), F64(y)) => F64(x * y),
        (Div, F64(x), F64(y)) => F64(x / y),
        (Min, F64(x), F64(y)) => F64(x.min(y)),
        (Max, F64(x), F64(y)) => F64(x.max(y)),
        (CmpEq, F64(x), F64(y)) => I64((x == y) as i64),
        (CmpNe, F64(x), F64(y)) => I64((x != y) as i64),
        (CmpLt, F64(x), F64(y)) => I64((x < y) as i64),
        (CmpLe, F64(x), F64(y)) => I64((x <= y) as i64),

        _ => return Err(InterpError::TypeError(r, "operand types do not match opcode")),
    })
}

pub(crate) fn eval_un(op: UnOp, v: Value, r: InstRef) -> Result<Value, InterpError> {
    use UnOp::*;
    use Value::{F64, I64};
    Ok(match (op, v) {
        (Neg, I64(x)) => I64(x.wrapping_neg()),
        (Neg, F64(x)) => F64(-x),
        (Not, I64(x)) => I64(!x),
        (Abs, I64(x)) => I64(x.wrapping_abs()),
        (Abs, F64(x)) => F64(x.abs()),
        (Sqrt, F64(x)) => F64(x.sqrt()),
        (Exp, F64(x)) => F64(x.exp()),
        (Log, F64(x)) => {
            if x <= 0.0 {
                return Err(InterpError::TypeError(r, "log of non-positive value"));
            }
            F64(x.ln())
        }
        (Sin, F64(x)) => F64(x.sin()),
        (Cos, F64(x)) => F64(x.cos()),
        (IntToFloat, I64(x)) => F64(x as f64),
        (FloatToInt, F64(x)) => I64(x as i64),
        _ => return Err(InterpError::TypeError(r, "operand type does not match opcode")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::Ty;

    /// Tracer recording loop events for assertions.
    #[derive(Default)]
    struct LoopLog {
        enters: Vec<LoopId>,
        iters: Vec<LoopId>,
        exits: Vec<LoopId>,
        loads: u64,
        stores: u64,
    }

    impl Tracer for LoopLog {
        fn on_loop_enter(&mut self, _f: FuncId, l: LoopId) {
            self.enters.push(l);
        }
        fn on_loop_iter(&mut self, _f: FuncId, l: LoopId) {
            self.iters.push(l);
        }
        fn on_loop_exit(&mut self, _f: FuncId, l: LoopId) {
            self.exits.push(l);
        }
        fn on_load(&mut self, _r: InstRef, _a: ArrayId, _i: i64) {
            self.loads += 1;
        }
        fn on_store(&mut self, _r: InstRef, _a: ArrayId, _i: i64) {
            self.stores += 1;
        }
    }

    fn sum_kernel() -> (Module, FuncId, ArrayId) {
        // sum = Σ a[i] for i in 0..n ; returns sum
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 10);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(10);
        let step = b.const_i64(1);
        let sum = b.const_f64(0.0);
        b.for_loop(lo, hi, step, |b, iv| {
            let x = b.load(a, iv);
            b.bin_to(sum, BinOp::Add, sum, x);
        });
        b.ret(Some(sum));
        let f = b.finish();
        (m, f, a)
    }

    #[test]
    fn sum_loop_computes_and_traces() {
        let (m, f, a) = sum_kernel();
        crate::verify::verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let mut mem = interp.fresh_memory();
        for (i, slot) in mem[a.index()].iter_mut().take(10).enumerate() {
            *slot = Value::F64(i as f64);
        }
        let mut log = LoopLog::default();
        let (ret, stats) = interp.run_with_memory(f, &[], &mut mem, &mut log).unwrap();
        assert_eq!(ret, Some(Value::F64(45.0)));
        assert_eq!(log.enters, vec![LoopId(0)]);
        assert_eq!(log.iters.len(), 10);
        assert_eq!(log.exits, vec![LoopId(0)]);
        assert_eq!(log.loads, 10);
        assert_eq!(stats.loads, 10);
        assert!(stats.steps > 30);
    }

    #[test]
    fn nested_loop_events_nest_properly() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(3);
        let step = b.const_i64(1);
        b.for_loop(lo, hi, step, |b, _| {
            let lo2 = b.const_i64(0);
            let hi2 = b.const_i64(2);
            let st2 = b.const_i64(1);
            b.for_loop(lo2, hi2, st2, |_b, _| {});
        });
        let f = b.finish();
        let interp = Interpreter::new(&m);
        let mut log = LoopLog::default();
        interp.run(f, &[], &mut log).unwrap();
        // Outer enters once, iterates 3×; inner enters 3×, iterates 6×.
        assert_eq!(log.enters.iter().filter(|&&l| l == LoopId(0)).count(), 1);
        assert_eq!(log.iters.iter().filter(|&&l| l == LoopId(0)).count(), 3);
        assert_eq!(log.enters.iter().filter(|&&l| l == LoopId(1)).count(), 3);
        assert_eq!(log.iters.iter().filter(|&&l| l == LoopId(1)).count(), 6);
        assert_eq!(log.exits.iter().filter(|&&l| l == LoopId(1)).count(), 3);
    }

    #[test]
    fn recursion_fib() {
        let mut m = Module::new("t");
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        // Build with a forward-declared self id: fib will be FuncId(0).
        let fib_id = FuncId(0);
        let mut b = FunctionBuilder::new(&mut m, "fib", 1);
        let n = b.param(0);
        let two = b.const_i64(2);
        let c = b.bin(BinOp::CmpLt, n, two);
        let result = b.const_i64(0);
        b.if_else(
            c,
            |b| b.copy_to(result, n),
            |b| {
                let one = b.const_i64(1);
                let n1 = b.bin(BinOp::Sub, n, one);
                let a = b.call(fib_id, &[n1]);
                let n2 = b.bin(BinOp::Sub, n, two);
                let c2 = b.call(fib_id, &[n2]);
                let s = b.bin(BinOp::Add, a, c2);
                b.copy_to(result, s);
            },
        );
        b.ret(Some(result));
        let f = b.finish();
        assert_eq!(f, fib_id);
        crate::verify::verify_module(&m).unwrap();
        let interp = Interpreter::new(&m);
        let (ret, stats) = interp.run(f, &[Value::I64(12)], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(144)));
        assert!(stats.max_depth > 5);
        assert!(stats.calls > 100);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let i = b.const_i64(9);
        let v = b.load(a, i);
        b.ret(Some(v));
        let f = b.finish();
        let interp = Interpreter::new(&m);
        match interp.run(f, &[], &mut NoTracer) {
            Err(InterpError::OutOfBounds { idx: 9, len: 4, .. }) => {}
            other => panic!("expected OOB, got {other:?}"),
        }
    }

    #[test]
    fn div_by_zero_is_reported() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_i64(4);
        let z = b.const_i64(0);
        let q = b.bin(BinOp::Div, x, z);
        b.ret(Some(q));
        let f = b.finish();
        let interp = Interpreter::new(&m);
        assert!(matches!(interp.run(f, &[], &mut NoTracer), Err(InterpError::DivByZero(_))));
    }

    #[test]
    fn type_error_is_reported() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_i64(4);
        let y = b.const_f64(1.0);
        let q = b.bin(BinOp::Add, x, y);
        b.ret(Some(q));
        let f = b.finish();
        let interp = Interpreter::new(&m);
        assert!(matches!(interp.run(f, &[], &mut NoTracer), Err(InterpError::TypeError(_, _))));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let one = b.const_i64(1);
        b.while_loop(|b| b.copy(one), |_b| {});
        b.ret(None);
        let f = b.finish();
        let interp = Interpreter::new(&m).with_max_steps(10_000);
        assert!(matches!(interp.run(f, &[], &mut NoTracer), Err(InterpError::StepLimit(_))));
    }

    #[test]
    fn depth_limit_stops_runaway_recursion() {
        let mut m = Module::new("t");
        let self_id = FuncId(0);
        let mut b = FunctionBuilder::new(&mut m, "f", 0);
        b.call_void(self_id, &[]);
        b.ret(None);
        let f = b.finish();
        let interp = Interpreter::new(&m).with_max_call_depth(32);
        assert!(matches!(interp.run(f, &[], &mut NoTracer), Err(InterpError::DepthLimit(32))));
    }

    #[test]
    fn zero_trip_loop_never_enters() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(5);
        let hi = b.const_i64(5);
        let step = b.const_i64(1);
        b.for_loop(lo, hi, step, |_b, _| {});
        let f = b.finish();
        let interp = Interpreter::new(&m);
        let mut log = LoopLog::default();
        interp.run(f, &[], &mut log).unwrap();
        assert!(log.enters.is_empty());
        assert!(log.iters.is_empty());
        assert!(log.exits.is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, UnOp};
    use crate::types::Ty;

    #[test]
    fn unary_ops_evaluate() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_f64(4.0);
        let s = b.un(UnOp::Sqrt, x);
        let neg = b.un(UnOp::Neg, s);
        let abs = b.un(UnOp::Abs, neg);
        let i = b.un(UnOp::FloatToInt, abs);
        let back = b.un(UnOp::IntToFloat, i);
        b.ret(Some(back));
        let f = b.finish();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::F64(2.0)));
    }

    #[test]
    fn log_of_nonpositive_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_f64(-1.0);
        let l = b.un(UnOp::Log, x);
        b.ret(Some(l));
        let f = b.finish();
        assert!(matches!(
            Interpreter::new(&m).run(f, &[], &mut NoTracer),
            Err(InterpError::TypeError(_, _))
        ));
    }

    #[test]
    fn integer_ops_wrap_instead_of_panicking() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let x = b.const_i64(i64::MAX);
        let one = b.const_i64(1);
        let s = b.bin(BinOp::Add, x, one);
        b.ret(Some(s));
        let f = b.finish();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(i64::MIN)));
    }

    #[test]
    fn comparisons_yield_i64_booleans() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let a = b.const_f64(1.5);
        let c = b.const_f64(2.5);
        let lt = b.bin(BinOp::CmpLt, a, c);
        let ge_via_le = b.bin(BinOp::CmpLe, c, a);
        let both = b.bin(BinOp::Shl, lt, ge_via_le); // 1 << 0 = 1
        b.ret(Some(both));
        let f = b.finish();
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut NoTracer).unwrap();
        assert_eq!(ret, Some(Value::I64(1)));
    }

    #[test]
    fn negative_index_is_out_of_bounds() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::F64, 4);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let i = b.const_i64(-1);
        let v = b.load(a, i);
        b.ret(Some(v));
        let f = b.finish();
        assert!(matches!(
            Interpreter::new(&m).run(f, &[], &mut NoTracer),
            Err(InterpError::OutOfBounds { idx: -1, .. })
        ));
    }

    #[test]
    fn caller_memory_survives_between_runs() {
        let mut m = Module::new("t");
        let a = m.add_array("a", Ty::I64, 2);
        let mut b = FunctionBuilder::new(&mut m, "bump", 0);
        let z = b.const_i64(0);
        let one = b.const_i64(1);
        let cur = b.load(a, z);
        let nxt = b.bin(BinOp::Add, cur, one);
        b.store(a, z, nxt);
        b.ret(Some(nxt));
        let f = b.finish();
        let interp = Interpreter::new(&m);
        let mut mem = interp.fresh_memory();
        for expected in 1..=3 {
            let (ret, _) = interp.run_with_memory(f, &[], &mut mem, &mut NoTracer).unwrap();
            assert_eq!(ret, Some(Value::I64(expected)));
        }
    }

    #[test]
    fn while_loop_with_early_return_closes_loop_events() {
        struct Count {
            enters: u32,
            exits: u32,
        }
        impl Tracer for Count {
            fn on_loop_enter(&mut self, _f: FuncId, _l: LoopId) {
                self.enters += 1;
            }
            fn on_loop_exit(&mut self, _f: FuncId, _l: LoopId) {
                self.exits += 1;
            }
        }
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let one = b.const_i64(1);
        let i = b.const_i64(0);
        let ten = b.const_i64(10);
        b.while_loop(
            |b| b.bin(BinOp::CmpLt, i, ten),
            |b| {
                b.bin_to(i, BinOp::Add, i, one);
                let five = b.const_i64(5);
                let hit = b.bin(BinOp::CmpEq, i, five);
                b.if_then(hit, |b| b.ret(Some(i)));
            },
        );
        b.ret(Some(i));
        let f = b.finish();
        let mut c = Count { enters: 0, exits: 0 };
        let (ret, _) = Interpreter::new(&m).run(f, &[], &mut c).unwrap();
        assert_eq!(ret, Some(Value::I64(5)));
        assert_eq!(c.enters, c.exits, "early return must balance loop events");
    }
}
