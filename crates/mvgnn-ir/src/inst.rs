//! Instructions: three-address ops over virtual registers, memory access
//! against arrays, structured terminators and direct calls.

use crate::module::{BlockId, FuncId};
use crate::types::{ArrayId, VReg, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary opcodes. Integer and float variants share opcodes; the operand
/// types select the behaviour at run time (the verifier does not type-check
/// registers — the IR is dynamically typed like a trace IR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on i64; traps on zero).
    Div,
    /// Remainder (i64 only; traps on zero).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (i64).
    And,
    /// Bitwise or (i64).
    Or,
    /// Bitwise xor (i64).
    Xor,
    /// Shift left (i64).
    Shl,
    /// Arithmetic shift right (i64).
    Shr,
    /// Equality comparison; yields i64 0/1.
    CmpEq,
    /// Inequality comparison; yields i64 0/1.
    CmpNe,
    /// Less-than; yields i64 0/1.
    CmpLt,
    /// Less-or-equal; yields i64 0/1.
    CmpLe,
}

impl BinOp {
    /// Mnemonic used by the textual form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpNe => "cmpne",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
        }
    }

    /// Parse a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            "cmpeq" => BinOp::CmpEq,
            "cmpne" => BinOp::CmpNe,
            "cmplt" => BinOp::CmpLt,
            "cmple" => BinOp::CmpLe,
            _ => return None,
        })
    }

    /// True for comparison opcodes (result is always i64 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpLe)
    }

    /// True if the op is commutative over both i64 and f64 operands.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Min
                | BinOp::Max
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::CmpEq
                | BinOp::CmpNe
        )
    }
}

/// Unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise/logical not (i64).
    Not,
    /// Square root (f64).
    Sqrt,
    /// Exponential (f64).
    Exp,
    /// Natural log (f64; traps on non-positive).
    Log,
    /// Sine (f64).
    Sin,
    /// Cosine (f64).
    Cos,
    /// Absolute value.
    Abs,
    /// Int -> float conversion.
    IntToFloat,
    /// Float -> int truncation.
    FloatToInt,
}

impl UnOp {
    /// Mnemonic used by the textual form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Abs => "abs",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
        }
    }

    /// Parse a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "sqrt" => UnOp::Sqrt,
            "exp" => UnOp::Exp,
            "log" => UnOp::Log,
            "sin" => UnOp::Sin,
            "cos" => UnOp::Cos,
            "abs" => UnOp::Abs,
            "i2f" => UnOp::IntToFloat,
            "f2i" => UnOp::FloatToInt,
            _ => return None,
        })
    }
}

/// One IR instruction. Terminators (`Br`, `CondBr`, `Ret`) may only appear
/// as the last instruction of a block (enforced by the verifier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = const value`
    Const {
        /// Destination register.
        dst: VReg,
        /// Immediate value.
        value: Value,
    },
    /// `dst = src` register copy.
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = op lhs, rhs`
    Bin {
        /// Opcode.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = op src`
    Un {
        /// Opcode.
        op: UnOp,
        /// Destination register.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// `dst = load arr[idx]`
    Load {
        /// Destination register.
        dst: VReg,
        /// Array.
        arr: ArrayId,
        /// Index register (i64).
        idx: VReg,
    },
    /// `store arr[idx] = src`
    Store {
        /// Array.
        arr: ArrayId,
        /// Index register (i64).
        idx: VReg,
        /// Value register.
        src: VReg,
    },
    /// `dst? = call f(args...)`
    Call {
        /// Optional destination for the return value.
        dst: Option<VReg>,
        /// Callee.
        func: FuncId,
        /// Argument registers (copied into the callee's first registers).
        args: Vec<VReg>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on a truthy register.
    CondBr {
        /// Condition register.
        cond: VReg,
        /// Target when truthy.
        then_blk: BlockId,
        /// Target when falsy.
        else_blk: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Optional return value register.
        val: Option<VReg>,
    },
}

impl Inst {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. })
    }

    /// Destination register written by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::Const { .. } | Inst::Br { .. } => vec![],
            Inst::Copy { src, .. } | Inst::Un { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Load { idx, .. } => vec![*idx],
            Inst::Store { idx, src, .. } => vec![*idx, *src],
            Inst::Call { args, .. } => args.clone(),
            Inst::CondBr { cond, .. } => vec![*cond],
            Inst::Ret { val } => val.iter().copied().collect(),
        }
    }

    /// The array touched by this instruction with the access kind
    /// (`true` = write), if it is a memory instruction.
    pub fn memory_effect(&self) -> Option<(ArrayId, bool)> {
        match self {
            Inst::Load { arr, .. } => Some((*arr, false)),
            Inst::Store { arr, .. } => Some((*arr, true)),
            _ => None,
        }
    }

    /// A normalised token for embedding vocabularies: the instruction with
    /// register identities abstracted away, keeping opcode, type shape and
    /// array identity class. This mirrors inst2vec statement normalisation.
    pub fn token(&self) -> String {
        match self {
            Inst::Const { value, .. } => format!("const.{}", value.ty()),
            Inst::Copy { .. } => "copy".to_string(),
            Inst::Bin { op, .. } => format!("bin.{}", op.mnemonic()),
            Inst::Un { op, .. } => format!("un.{}", op.mnemonic()),
            Inst::Load { .. } => "load".to_string(),
            Inst::Store { .. } => "store".to_string(),
            Inst::Call { dst, .. } => {
                if dst.is_some() {
                    "call.val".to_string()
                } else {
                    "call.void".to_string()
                }
            }
            Inst::Br { .. } => "br".to_string(),
            Inst::CondBr { .. } => "condbr".to_string(),
            Inst::Ret { .. } => "ret".to_string(),
        }
    }
}

/// Global reference to an instruction: function, block, index-in-block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstRef {
    /// Owning function.
    pub func: FuncId,
    /// Owning block.
    pub block: BlockId,
    /// Index within the block.
    pub idx: u32,
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:b{}:{}", self.func.0, self.block.0, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::CmpEq,
            BinOp::CmpNe,
            BinOp::CmpLt,
            BinOp::CmpLe,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn unop_mnemonic_roundtrip() {
        for op in [
            UnOp::Neg,
            UnOp::Not,
            UnOp::Sqrt,
            UnOp::Exp,
            UnOp::Log,
            UnOp::Sin,
            UnOp::Cos,
            UnOp::Abs,
            UnOp::IntToFloat,
            UnOp::FloatToInt,
        ] {
            assert_eq!(UnOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin { op: BinOp::Add, dst: VReg(2), lhs: VReg(0), rhs: VReg(1) };
        assert_eq!(i.def(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
        let s = Inst::Store { arr: ArrayId(0), idx: VReg(3), src: VReg(4) };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VReg(3), VReg(4)]);
        assert_eq!(s.memory_effect(), Some((ArrayId(0), true)));
        let l = Inst::Load { dst: VReg(1), arr: ArrayId(2), idx: VReg(0) };
        assert_eq!(l.memory_effect(), Some((ArrayId(2), false)));
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Ret { val: None }.is_terminator());
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(!Inst::Copy { dst: VReg(0), src: VReg(1) }.is_terminator());
    }

    #[test]
    fn tokens_are_register_agnostic() {
        let a = Inst::Bin { op: BinOp::Mul, dst: VReg(1), lhs: VReg(2), rhs: VReg(3) };
        let b = Inst::Bin { op: BinOp::Mul, dst: VReg(9), lhs: VReg(8), rhs: VReg(7) };
        assert_eq!(a.token(), b.token());
        assert_eq!(a.token(), "bin.mul");
        assert_eq!(Inst::Const { dst: VReg(0), value: Value::zero(Ty::F64) }.token(), "const.f64");
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(BinOp::CmpEq.is_commutative());
        assert!(!BinOp::CmpLt.is_commutative());
    }
}
