//! Semantics-preserving transformation passes.
//!
//! The paper augments its dataset by compiling every source file at six
//! different clang optimisation settings, yielding six structurally
//! different IR modules per kernel. We mirror that with six composable
//! pass pipelines ([`OptLevel`]): identity, constant folding, dead-code
//! elimination, local CSE, strength reduction, and canonicalisation +
//! register renaming. Each pass preserves observable behaviour (verified
//! by differential-execution property tests).

use crate::inst::{BinOp, Inst, InstRef, UnOp};
use crate::interp::{eval_bin, eval_un};
use crate::module::{BlockId, FuncId, Function, Module};
use crate::types::{VReg, Value};
use std::collections::HashMap;

/// The six augmentation pipelines (cumulative, like -O levels). The
/// derived `Ord` follows declaration order, so `O0 < O1 < … < O5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No transformation.
    O0,
    /// Local constant folding.
    O1,
    /// O1 + dead code elimination.
    O2,
    /// O2 + local common-subexpression elimination.
    O3,
    /// O3 + strength reduction.
    O4,
    /// O4 + commutative canonicalisation and register renaming.
    O5,
}

impl OptLevel {
    /// All levels, in order.
    pub const ALL: [OptLevel; 6] =
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4, OptLevel::O5];
}

/// Apply the pipeline for `level` to every function, returning a new module.
pub fn optimize(m: &Module, level: OptLevel) -> Module {
    let mut out = m.clone();
    for f in &mut out.funcs {
        if level >= OptLevel::O1 {
            const_fold(f);
        }
        if level >= OptLevel::O2 {
            dce(f);
        }
        if level >= OptLevel::O3 {
            local_cse(f);
        }
        if level >= OptLevel::O4 {
            strength_reduce(f);
        }
        if level >= OptLevel::O5 {
            canonicalize_commutative(f);
            rename_registers(f);
        }
    }
    out
}

/// Registers whose value is known constant at a program point
/// (flow-insensitive kill: a register assigned more than once anywhere in
/// the function is never tracked — mutable accumulators stay symbolic).
fn multi_assigned(f: &Function) -> Vec<bool> {
    let mut def_count = vec![0u32; f.num_regs as usize];
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                def_count[d.index()] += 1;
            }
        }
    }
    // Parameters are defined at entry.
    for p in 0..f.arity {
        def_count[p as usize] += 1;
    }
    def_count.iter().map(|&c| c > 1).collect()
}

/// Fold `Bin`/`Un` over single-assignment constant registers.
pub fn const_fold(f: &mut Function) {
    let multi = multi_assigned(f);
    let mut known: HashMap<VReg, Value> = HashMap::new();
    // Constants are single-assignment registers defined by Const.
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Inst::Const { dst, value } = inst {
                if !multi[dst.index()] {
                    known.insert(*dst, *value);
                }
            }
        }
    }
    let dummy = InstRef { func: FuncId(0), block: BlockId(0), idx: 0 };
    // Iterate to a fixed point: folding creates new constants.
    loop {
        let mut changed = false;
        for blk in &mut f.blocks {
            for inst in &mut blk.insts {
                let replacement = match inst {
                    Inst::Bin { op, dst, lhs, rhs } if !multi[dst.index()] => {
                        match (known.get(lhs), known.get(rhs)) {
                            (Some(&a), Some(&b)) => eval_bin(*op, a, b, dummy)
                                .ok()
                                .map(|v| (*dst, v)),
                            _ => None,
                        }
                    }
                    Inst::Un { op, dst, src } if !multi[dst.index()] => {
                        known.get(src).and_then(|&a| {
                            eval_un(*op, a, dummy).ok().map(|v| (*dst, v))
                        })
                    }
                    Inst::Copy { dst, src } if !multi[dst.index()] => {
                        known.get(src).map(|&v| (*dst, v))
                    }
                    _ => None,
                };
                if let Some((dst, v)) = replacement {
                    *inst = Inst::Const { dst, value: v };
                    if known.insert(dst, v).is_none() {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Remove pure instructions whose destination is never read anywhere.
/// Loads count as pure (dead loads are legal to drop, as compilers do);
/// stores, calls and terminators are always kept.
pub fn dce(f: &mut Function) {
    loop {
        let mut read = vec![false; f.num_regs as usize];
        for blk in &f.blocks {
            for inst in &blk.insts {
                for u in inst.uses() {
                    read[u.index()] = true;
                }
            }
        }
        let mut removed = false;
        for blk in &mut f.blocks {
            let keep: Vec<bool> = blk
                .insts
                .iter()
                .map(|inst| match inst {
                    Inst::Const { dst, .. }
                    | Inst::Copy { dst, .. }
                    | Inst::Bin { dst, .. }
                    | Inst::Un { dst, .. }
                    | Inst::Load { dst, .. } => read[dst.index()],
                    _ => true,
                })
                .collect();
            if keep.iter().any(|&k| !k) {
                removed = true;
                let mut it = keep.iter();
                blk.insts.retain(|_| *it.next().expect("keep mask length"));
                let mut it = keep.iter();
                blk.lines.retain(|_| *it.next().expect("keep mask length"));
            }
        }
        if !removed {
            break;
        }
    }
}

/// Local (per-block) common-subexpression elimination over `Bin`/`Un`.
/// Available expressions are invalidated when any input register or the
/// holding register is redefined. Loads are not CSE'd (stores or calls
/// could change memory between them).
pub fn local_cse(f: &mut Function) {
    for blk in &mut f.blocks {
        #[derive(PartialEq, Eq, Hash, Clone)]
        enum Expr {
            Bin(BinOp, VReg, VReg),
            Un(UnOp, VReg),
        }
        let mut avail: HashMap<Expr, VReg> = HashMap::new();
        for inst in &mut blk.insts {
            let def = inst.def();
            let new_inst = match inst {
                Inst::Bin { op, dst, lhs, rhs } => {
                    let key = Expr::Bin(*op, *lhs, *rhs);
                    match avail.get(&key) {
                        Some(&prev) if prev != *dst => {
                            Some(Inst::Copy { dst: *dst, src: prev })
                        }
                        _ => {
                            avail.insert(key, *dst);
                            None
                        }
                    }
                }
                Inst::Un { op, dst, src } => {
                    let key = Expr::Un(*op, *src);
                    match avail.get(&key) {
                        Some(&prev) if prev != *dst => {
                            Some(Inst::Copy { dst: *dst, src: prev })
                        }
                        _ => {
                            avail.insert(key, *dst);
                            None
                        }
                    }
                }
                _ => None,
            };
            if let Some(n) = new_inst {
                *inst = n;
            }
            if let Some(d) = def {
                // Any expression mentioning d (as input or output) dies.
                avail.retain(|k, &mut v| {
                    v != d
                        && match k {
                            Expr::Bin(_, a, b) => *a != d && *b != d,
                            Expr::Un(_, a) => *a != d,
                        }
                });
            }
        }
    }
}

/// Replace `mul`/`div` by power-of-two constants with shifts (i64 only).
pub fn strength_reduce(f: &mut Function) {
    let multi = multi_assigned(f);
    let mut known: HashMap<VReg, i64> = HashMap::new();
    for blk in &f.blocks {
        for inst in &blk.insts {
            if let Inst::Const { dst, value: Value::I64(v) } = inst {
                if !multi[dst.index()] {
                    known.insert(*dst, *v);
                }
            }
        }
    }
    let log2_of = |r: &VReg| -> Option<i64> {
        known.get(r).copied().filter(|&v| v > 0 && v.count_ones() == 1).map(|v| v.trailing_zeros() as i64)
    };
    // A shift-amount constant register must exist; reuse the power-of-two
    // register itself is wrong, so we rewrite only when the shift amount
    // equals an existing known constant register. To keep the pass simple
    // and always applicable we instead encode `x * 2^k` as `x << k` with a
    // fresh Const prepended in the same block.
    for blk in &mut f.blocks {
        let mut i = 0;
        while i < blk.insts.len() {
            let rewrite = match &blk.insts[i] {
                Inst::Bin { op: BinOp::Mul, dst, lhs, rhs } => {
                    if let Some(k) = log2_of(rhs) {
                        Some((*dst, *lhs, k, BinOp::Shl))
                    } else {
                        log2_of(lhs).map(|k| (*dst, *rhs, k, BinOp::Shl))
                    }
                }
                Inst::Bin { op: BinOp::Div, dst, lhs, rhs } => {
                    // x / 2^k == x >> k only for non-negative x; we cannot
                    // prove sign here, so only k == 0 (divide by one) folds.
                    log2_of(rhs).filter(|&k| k == 0).map(|_| (*dst, *lhs, 0, BinOp::Shl))
                }
                _ => None,
            };
            if let Some((dst, src, k, op)) = rewrite {
                let kreg = VReg(f.num_regs);
                f.num_regs += 1;
                let line = blk.lines[i];
                blk.insts[i] = Inst::Bin { op, dst, lhs: src, rhs: kreg };
                blk.insts.insert(i, Inst::Const { dst: kreg, value: Value::I64(k) });
                blk.lines.insert(i, line);
                i += 2;
            } else {
                i += 1;
            }
        }
    }
}

/// Order the operands of commutative integer-safe ops by register index.
pub fn canonicalize_commutative(f: &mut Function) {
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            if let Inst::Bin { op, lhs, rhs, .. } = inst {
                if op.is_commutative() && lhs.0 > rhs.0 {
                    std::mem::swap(lhs, rhs);
                }
            }
        }
    }
}

/// Apply a behaviour-preserving register permutation: parameters keep their
/// slots, the remaining registers are reversed. Loop induction metadata is
/// remapped alongside.
pub fn rename_registers(f: &mut Function) {
    let arity = f.arity;
    let n = f.num_regs;
    let map = |r: VReg| -> VReg {
        if r.0 < arity {
            r
        } else {
            VReg(arity + (n - 1 - r.0))
        }
    };
    for blk in &mut f.blocks {
        for inst in &mut blk.insts {
            match inst {
                Inst::Const { dst, .. } => *dst = map(*dst),
                Inst::Copy { dst, src } => {
                    *dst = map(*dst);
                    *src = map(*src);
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    *dst = map(*dst);
                    *lhs = map(*lhs);
                    *rhs = map(*rhs);
                }
                Inst::Un { dst, src, .. } => {
                    *dst = map(*dst);
                    *src = map(*src);
                }
                Inst::Load { dst, idx, .. } => {
                    *dst = map(*dst);
                    *idx = map(*idx);
                }
                Inst::Store { idx, src, .. } => {
                    *idx = map(*idx);
                    *src = map(*src);
                }
                Inst::Call { dst, args, .. } => {
                    if let Some(d) = dst {
                        *d = map(*d);
                    }
                    for a in args {
                        *a = map(*a);
                    }
                }
                Inst::CondBr { cond, .. } => *cond = map(*cond),
                Inst::Ret { val } => {
                    if let Some(v) = val {
                        *v = map(*v);
                    }
                }
                Inst::Br { .. } => {}
            }
        }
    }
    for info in &mut f.loops {
        if let Some(iv) = &mut info.induction {
            *iv = map(*iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::{Interpreter, NoTracer};
    use crate::types::Ty;
    use crate::verify::verify_module;

    #[test]
    fn opt_levels_order_by_declaration() {
        // `ALL` is declared lowest-to-highest; the derived Ord must agree,
        // and PartialOrd must be total and consistent with it.
        for w in OptLevel::ALL.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
        for &a in &OptLevel::ALL {
            for &b in &OptLevel::ALL {
                assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
            }
        }
    }

    /// A kernel mixing constants, redundancy and dead code so every pass
    /// has something to do.
    fn busy_module() -> Module {
        let mut m = Module::new("busy");
        let a = m.add_array("a", Ty::I64, 32);
        let mut b = FunctionBuilder::new(&mut m, "main", 0);
        let lo = b.const_i64(0);
        let hi = b.const_i64(32);
        let step = b.const_i64(1);
        let four = b.const_i64(4);
        let five = b.const_i64(5);
        let nine = b.bin(BinOp::Add, four, five); // foldable
        let _dead = b.bin(BinOp::Mul, nine, nine); // dead
        let acc = b.const_i64(0);
        b.for_loop(lo, hi, step, |b, iv| {
            let x = b.bin(BinOp::Mul, iv, four); // strength-reducible
            let y = b.bin(BinOp::Mul, iv, four); // CSE-able
            let s = b.bin(BinOp::Add, x, y);
            b.store(a, iv, s);
            b.bin_to(acc, BinOp::Add, acc, s);
        });
        b.ret(Some(acc));
        b.finish();
        m
    }

    fn run_main(m: &Module) -> (Option<Value>, Vec<Value>) {
        let f = m.func_by_name("main").unwrap();
        let interp = Interpreter::new(m);
        let mut mem = interp.fresh_memory();
        let (ret, _) = interp.run_with_memory(f, &[], &mut mem, &mut NoTracer).unwrap();
        (ret, mem.into_iter().flatten().collect())
    }

    #[test]
    fn every_level_preserves_behaviour() {
        let m = busy_module();
        let (ret0, mem0) = run_main(&m);
        for level in OptLevel::ALL {
            let opt = optimize(&m, level);
            verify_module(&opt).unwrap_or_else(|e| panic!("{level:?}: {e}"));
            let (ret, mem) = run_main(&opt);
            assert_eq!(ret, ret0, "{level:?} changed return value");
            assert_eq!(mem, mem0, "{level:?} changed memory");
        }
    }

    #[test]
    fn const_fold_folds_add() {
        let m = busy_module();
        let opt = optimize(&m, OptLevel::O1);
        let f = &opt.funcs[0];
        // The add of two constants must now be a Const 9.
        let folded = f.blocks.iter().flat_map(|b| &b.insts).any(
            |i| matches!(i, Inst::Const { value: Value::I64(9), .. }),
        );
        assert!(folded, "expected folded constant 9");
    }

    #[test]
    fn dce_removes_dead_mul() {
        let m = busy_module();
        let before = m.funcs[0].inst_count();
        let opt = optimize(&m, OptLevel::O2);
        let after = opt.funcs[0].inst_count();
        assert!(after < before, "DCE should strictly shrink ({before} -> {after})");
    }

    #[test]
    fn cse_introduces_copy() {
        let m = busy_module();
        let opt = optimize(&m, OptLevel::O3);
        let f = &opt.funcs[0];
        let has_copy_of_mul = f.blocks.iter().flat_map(|b| &b.insts).any(
            |i| matches!(i, Inst::Copy { .. }),
        );
        assert!(has_copy_of_mul, "expected a CSE copy");
    }

    #[test]
    fn strength_reduction_makes_shifts() {
        let m = busy_module();
        let opt = optimize(&m, OptLevel::O4);
        let f = &opt.funcs[0];
        let has_shl = f.blocks.iter().flat_map(|b| &b.insts).any(
            |i| matches!(i, Inst::Bin { op: BinOp::Shl, .. }),
        );
        assert!(has_shl, "expected mul-by-4 to become a shift");
    }

    #[test]
    fn levels_produce_distinct_token_streams() {
        // Augmentation only helps if the variants differ.
        let m = busy_module();
        let streams: Vec<Vec<String>> = OptLevel::ALL
            .iter()
            .map(|&l| {
                optimize(&m, l).funcs[0]
                    .blocks
                    .iter()
                    .flat_map(|b| b.insts.iter().map(crate::text::print_inst))
                    .collect()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = streams.iter().collect();
        assert!(distinct.len() >= 4, "expected ≥4 distinct variants, got {}", distinct.len());
    }

    #[test]
    fn rename_keeps_fib_correct() {
        let mut m = Module::new("t");
        let fib_id = FuncId(0);
        let mut b = FunctionBuilder::new(&mut m, "main", 1);
        let nreg = b.param(0);
        let two = b.const_i64(2);
        let c = b.bin(BinOp::CmpLt, nreg, two);
        let result = b.const_i64(0);
        b.if_else(
            c,
            |b| b.copy_to(result, nreg),
            |b| {
                let one = b.const_i64(1);
                let n1 = b.bin(BinOp::Sub, nreg, one);
                let r1 = b.call(fib_id, &[n1]);
                let n2 = b.bin(BinOp::Sub, nreg, two);
                let r2 = b.call(fib_id, &[n2]);
                let s = b.bin(BinOp::Add, r1, r2);
                b.copy_to(result, s);
            },
        );
        b.ret(Some(result));
        b.finish();
        let opt = optimize(&m, OptLevel::O5);
        verify_module(&opt).unwrap();
        let f = FuncId(0);
        let i1 = Interpreter::new(&m);
        let i2 = Interpreter::new(&opt);
        for n in [0i64, 1, 5, 10] {
            let r1 = i1.run(f, &[Value::I64(n)], &mut NoTracer).unwrap().0;
            let r2 = i2.run(f, &[Value::I64(n)], &mut NoTracer).unwrap().0;
            assert_eq!(r1, r2, "fib({n}) diverged after O5");
        }
    }
}
