//! # mvgnn-bench — experiment regeneration harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — dynamic feature definitions + live values |
//! | `table2` | Table II — per-application loop counts |
//! | `table3` | Table III — accuracy of every model and tool per suite |
//! | `table4` | Table IV — NPB per-app identified parallelisable loops |
//! | `fig7`   | Fig. 7 — training loss/accuracy curves |
//! | `fig8`   | Fig. 8 — view importance per suite |
//! | `ablations` | design-choice ablations from DESIGN.md §6 |
//! | `diag` | training diagnostics (per-pattern error census) |
//!
//! Criterion micro-benches live under `benches/`. Run binaries with
//! `cargo run -p mvgnn-bench --release --bin <name>`; all accept
//! `--paper-scale` (full sizes) and `--quick` (CI sizes) where relevant.

use mvgnn_core::{PipelineConfig, TrainConfig};
use mvgnn_dataset::CorpusConfig;
use mvgnn_embed::Inst2VecConfig;
use mvgnn_ir::transform::OptLevel;

/// Shared experiment scale selected by CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke configuration.
    Quick,
    /// Minutes-scale default (the shape-faithful reproduction).
    Default,
    /// Paper-sized model and dataset (3100 + 3100 target, k = 135).
    Paper,
}

impl Scale {
    /// Parse from argv: `--quick` / `--paper-scale` / default.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Default
        }
    }
}

/// The pipeline configuration for a scale.
pub fn pipeline_config(scale: Scale) -> PipelineConfig {
    let (seeds, levels, per_class, i2v_dim, epochs): (Vec<u64>, Vec<OptLevel>, usize, usize, usize) =
        match scale {
            Scale::Quick => (vec![1], vec![OptLevel::O0], 60, 16, 8),
            Scale::Default => (vec![1, 2], OptLevel::ALL.to_vec(), 500, 48, 70),
            Scale::Paper => (vec![1, 2, 3, 4, 5, 6], OptLevel::ALL.to_vec(), 3100, 200, 90),
        };
    PipelineConfig {
        corpus: CorpusConfig {
            seeds,
            opt_levels: levels,
            per_class: Some(per_class),
            test_fraction: 0.25,
            suite: None,
            inst2vec: Inst2VecConfig {
                dim: i2v_dim,
                epochs: if scale == Scale::Quick { 1 } else { 3 },
                negatives: 4,
                lr: 0.05,
                seed: 0x1257,
            },
            sample: Default::default(),
            seed: 0xda7a,
            label_noise: 0.03,
            static_features: false,
        },
        train: TrainConfig { epochs, batch_size: 16, ..Default::default() },
        paper_scale: scale == Scale::Paper,
        ncc: Default::default(),
        run_ncc: true,
        restarts: if scale == Scale::Quick { 1 } else { 3 },
    }
}

/// Heap-allocation counting for the zero-allocation steady-state checks
/// (enable with `--features count-allocs`). The global allocator is
/// replaced by a wrapper over the system allocator that counts every
/// `alloc`/`realloc` call, so a benchmark can bracket a region and read
/// the exact number of allocations it performed. Counting is a single
/// relaxed atomic increment — cheap enough to leave on for whole runs.
#[cfg(feature = "count-allocs")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counting wrapper over the system allocator.
    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System`; only adds counting.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Heap allocations (alloc + realloc calls) since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Unwrap a fallible pipeline/training step or exit the benchmark binary
/// with the error on stderr (benchmarks have no recovery path to offer).
pub fn or_die<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("fatal: {e}");
        std::process::exit(1);
    })
}

/// Print a Markdown-ish table row.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let cells: Vec<String> =
        cols.iter().zip(widths).map(|(c, &w)| format!("{c:<w$}")).collect();
    println!("| {} |", cells.join(" | "));
}

/// Print a rule matching the widths.
pub fn print_rule(widths: &[usize]) {
    let cells: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    println!("|-{}-|", cells.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build_configs() {
        for scale in [Scale::Quick, Scale::Default, Scale::Paper] {
            let cfg = pipeline_config(scale);
            assert!(!cfg.corpus.seeds.is_empty());
            assert!(cfg.train.epochs > 0);
        }
        assert!(pipeline_config(Scale::Paper).paper_scale);
        assert_eq!(pipeline_config(Scale::Paper).corpus.per_class, Some(3100));
    }
}
