//! Regenerates Fig. 8: importance of the node-feature and structural
//! views per benchmark (IMP_n and IMP_s).

use mvgnn_bench::{pipeline_config, print_row, print_rule, Scale};
use mvgnn_core::run_pipeline;

fn bar(v: f64) -> String {
    let n = (v * 30.0).round().clamp(0.0, 40.0) as usize;
    "█".repeat(n)
}

fn main() {
    let scale = Scale::from_args();
    let cfg = pipeline_config(scale);
    eprintln!("[fig8] training MV-GNN ({scale:?})…");
    let (report, _) = mvgnn_bench::or_die(run_pipeline(&cfg));

    println!("\nFig. 8 — importance of views (IMP = N_view / N_multi)\n");
    let w = [12, 8, 8, 9, 9, 9, 34];
    print_row(
        &[
            "Benchmark".into(),
            "IMP_n".into(),
            "IMP_s".into(),
            "acc_mv".into(),
            "acc_n".into(),
            "acc_s".into(),
            "".into(),
        ],
        &w,
    );
    print_rule(&w);
    for v in &report.fig8 {
        print_row(
            &[
                v.benchmark.clone(),
                format!("{:.3}", v.imp_node()),
                format!("{:.3}", v.imp_struct()),
                format!("{:.3}", v.acc_multi()),
                format!("{:.3}", v.acc_node()),
                format!("{:.3}", v.acc_struct()),
                format!("n {}", bar(v.imp_node())),
            ],
            &w,
        );
        print_row(
            &[
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("s {}", bar(v.imp_struct())),
            ],
            &w,
        );
    }
}
