//! Service-level benchmark: sustained QPS, completion-latency
//! percentiles, and shed behaviour of the `mvgnn-serve` front door (see
//! DESIGN.md §12).
//!
//! Three sections, written to `BENCH_serve.json`:
//!
//! 1. **closed_loop** — an open-loop burst of every corpus loop through
//!    a `max_batch = 1` server (the single-request service path: every
//!    request dispatches alone, paying full per-request cost) versus the
//!    micro-batched server (`max_batch = 32`). The speedup is the
//!    service-level analogue of `BENCH_throughput.json`'s batching gain
//!    and must stay ≥ 1.5x.
//! 2. **sustained** — Poisson arrivals at ~0.8x measured capacity:
//!    answered QPS, p50/p99 completion latency, shed rate (should be
//!    ~zero).
//! 3. **overload** — bursty-Poisson arrivals at ~2x capacity against
//!    bounded admission (256 tokens): the service must shed with typed
//!    `Overloaded` responses, keep p99 of *answered* requests bounded,
//!    and finish with zero caught panics.
//!
//! `--smoke` is the seconds-scale CI gate: a forced-overload storm on a
//! deliberately tiny service (Quick corpus) asserting full census
//! accounting, non-zero shed, zero panics, and post-storm liveness, plus
//! a poisoned-weights mini-run whose every answer must be a typed
//! degradation.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::{FaultPlan, MvGnn, MvGnnConfig, PredictionSource};
use mvgnn_dataset::build_corpus;
use mvgnn_embed::GraphSample;
use mvgnn_serve::{run_chaos, ChaosConfig, ChaosInputs, Deadline, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Micro-batch width of the batched service (matches the throughput
/// benchmark's `BATCH`).
const BATCH: usize = 32;

/// Admission-token pool for the storm sections — small enough that a 2x
/// overload exhausts it and sheds, large enough to keep batches full.
const STORM_TOKENS: usize = 256;

fn build_pool(scale: Scale) -> (Vec<Arc<GraphSample>>, Arc<MvGnn>) {
    let cfg = pipeline_config(scale);
    eprintln!("[serve] building corpus ({scale:?})…");
    let ds = build_corpus(&cfg.corpus);
    let pool: Vec<Arc<GraphSample>> = ds
        .train
        .iter()
        .chain(ds.test.iter())
        .take(2048)
        .map(|s| Arc::new(s.sample.clone()))
        .collect();
    let probe = &pool[0];
    let model = if cfg.paper_scale {
        MvGnn::new(MvGnnConfig::paper(probe.node_dim, probe.aw_vocab))
    } else {
        MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab))
    };
    (pool, Arc::new(model))
}

/// Answered QPS of one open-loop burst: submit every sample, then redeem
/// every ticket; wall time covers submission through last answer.
fn burst_secs(server: &Server, pool: &[Arc<GraphSample>]) -> f64 {
    let t = Instant::now();
    let tickets: Vec<_> = pool
        .iter()
        .map(|s| {
            mvgnn_bench::or_die(server.submit(Arc::clone(s), Deadline::none()))
        })
        .collect();
    for ticket in tickets {
        mvgnn_bench::or_die(ticket.wait());
    }
    t.elapsed().as_secs_f64()
}

/// Best-of-`reps` answered QPS for a service configuration, plus the
/// mean batch fill it achieved across the whole run.
fn closed_loop_qps(
    model: &Arc<MvGnn>,
    pool: &[Arc<GraphSample>],
    max_batch: usize,
    reps: usize,
) -> (f64, f64) {
    let server = mvgnn_bench::or_die(Server::start(
        Arc::clone(model),
        ServeConfig {
            max_batch,
            max_delay: Duration::from_micros(200),
            // Headroom over the burst size: permits release a beat after
            // the final fulfil, and this section measures throughput,
            // not admission.
            max_queue: 2 * pool.len(),
            max_inflight: 2 * pool.len(),
            workers: 1,
        },
    ));
    let mut best = f64::MAX;
    for _ in 0..reps {
        best = best.min(burst_secs(&server, pool));
    }
    let stats = server.stats();
    assert_eq!(stats.panics_caught, 0, "panic during closed-loop burst");
    server.shutdown();
    (pool.len() as f64 / best, stats.mean_fill())
}

/// One storm section: run the chaos harness at `rate_qps` total offered
/// load and return its JSON object.
fn storm_section(
    model: &Arc<MvGnn>,
    pool: &[Arc<GraphSample>],
    rate_qps: f64,
    burst: usize,
    requests_per_client: usize,
    deadline: Duration,
) -> (String, mvgnn_serve::ChaosReport, u64) {
    let clients = 4;
    let server = mvgnn_bench::or_die(Server::start(
        Arc::clone(model),
        ServeConfig {
            max_batch: BATCH,
            max_delay: Duration::from_micros(500),
            max_queue: STORM_TOKENS,
            max_inflight: STORM_TOKENS,
            workers: 1,
        },
    ));
    let inputs = ChaosInputs { samples: pool.to_vec(), sources: Vec::new(), oracles: Vec::new() };
    let report = run_chaos(
        &server,
        &inputs,
        &ChaosConfig {
            seed: 0x5e1e,
            clients,
            requests_per_client,
            rate_per_client: rate_qps / clients as f64,
            burst,
            deadline,
            ..Default::default()
        },
    );
    assert_eq!(
        report.accounted(),
        report.submitted,
        "storm lost requests: {report:?}"
    );
    assert_eq!(report.internal, 0, "storm hit internal faults: {report:?}");
    let panics = server.stats().panics_caught;
    assert_eq!(panics, 0, "storm caught panics");
    server.shutdown();
    let shed_rate = report.shed as f64 / report.submitted.max(1) as f64;
    let json = format!(
        "{{\n    \"offered_qps\": {rate_qps:.1},\n    \"burst\": {burst},\n    \
         \"submitted\": {},\n    \"answered_qps\": {:.1},\n    \
         \"p50_us\": {},\n    \"p99_us\": {},\n    \"max_us\": {},\n    \
         \"shed\": {},\n    \"expired\": {},\n    \"shed_rate\": {shed_rate:.4}\n  }}",
        report.submitted,
        report.answered_qps,
        report.p50.as_micros(),
        report.p99.as_micros(),
        report.max_latency.as_micros(),
        report.shed,
        report.expired,
    );
    (json, report, panics)
}

/// Seconds-scale CI gate: forced overload on a tiny service must shed
/// typed, account for every request, catch zero panics, and stay live;
/// poisoned weights must degrade typed.
fn smoke() {
    let (pool, model) = build_pool(Scale::Quick);

    // Deliberately tiny service: 8 admission tokens, 4-deep queue. A
    // bursty storm at far past capacity must shed, not hang or panic.
    let server = mvgnn_bench::or_die(Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(500),
            max_queue: 4,
            max_inflight: 8,
            workers: 1,
        },
    ));
    let inputs = ChaosInputs { samples: pool.clone(), sources: Vec::new(), oracles: Vec::new() };
    let report = run_chaos(
        &server,
        &inputs,
        &ChaosConfig {
            seed: 0x5e1e,
            clients: 4,
            requests_per_client: 64,
            rate_per_client: 50_000.0,
            burst: 8,
            deadline: Duration::from_secs(5),
            ..Default::default()
        },
    );
    assert_eq!(report.accounted(), report.submitted, "smoke lost requests: {report:?}");
    assert_eq!(report.internal, 0, "smoke hit internal faults: {report:?}");
    assert!(report.shed > 0, "forced overload must shed: {report:?}");
    assert!(report.ok > 0, "some admitted requests must be answered: {report:?}");
    assert_eq!(server.stats().panics_caught, 0, "smoke caught panics");
    // Liveness after the storm: a fresh request is served normally.
    let c = mvgnn_bench::or_die(
        server.classify(Arc::clone(&pool[0]), Deadline::within(Duration::from_secs(10))),
    );
    assert_eq!(c.source, PredictionSource::Multi, "post-storm answer degraded: {c:?}");
    server.shutdown();
    println!(
        "[serve] smoke storm: {} submitted, {} ok, {} shed, {} expired, 0 panics",
        report.submitted, report.ok, report.shed, report.expired
    );

    // Poisoned weights: every answer must be a typed degradation.
    let probe = &pool[0];
    let mut poisoned = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    FaultPlan::new(0x5e1e).poison_params(&mut poisoned.params, 64);
    let server = mvgnn_bench::or_die(Server::start(
        Arc::new(poisoned),
        ServeConfig { max_batch: 4, ..Default::default() },
    ));
    for s in pool.iter().take(8) {
        let c = mvgnn_bench::or_die(server.classify(Arc::clone(s), Deadline::none()));
        assert_ne!(
            c.source,
            PredictionSource::Multi,
            "poisoned weights were trusted: {c:?}"
        );
    }
    assert_eq!(server.stats().panics_caught, 0);
    server.shutdown();
    println!("[serve] smoke poisoned-weights: 8/8 typed degradations, 0 panics");
    println!("[serve] smoke OK");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let scale = Scale::from_args();
    let (pool, model) = build_pool(scale);
    let n = pool.len();
    let reps = if scale == Scale::Quick { 3 } else { 5 };
    eprintln!("[serve] {n} loops, micro-batch {BATCH}, best of {reps}");

    // Section 1: closed-loop burst, single-request path vs micro-batched.
    let (single_qps, single_fill) = closed_loop_qps(&model, &pool, 1, reps);
    let (batched_qps, batched_fill) = closed_loop_qps(&model, &pool, BATCH, reps);
    let speedup = batched_qps / single_qps;
    println!("\nService throughput ({n} loops, best of {reps}):");
    println!("  single-request: {single_qps:>10.1} req/sec  (fill {single_fill:.2})");
    println!("  micro-batched : {batched_qps:>10.1} req/sec  (fill {batched_fill:.2})");
    println!("  speedup       : {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "micro-batching regressed: {speedup:.2}x < 1.5x over the single-request path"
    );

    // Section 2: sustained Poisson at ~0.8x measured capacity.
    let sustained_rate = batched_qps * 0.8;
    let per_client = if scale == Scale::Quick { 256 } else { 2048 };
    let (sustained_json, sustained, _) = storm_section(
        &model,
        &pool,
        sustained_rate,
        1,
        per_client,
        Duration::from_millis(250),
    );
    println!(
        "  sustained 0.8x: {:>10.1} req/sec answered, p50 {}µs, p99 {}µs, shed {}",
        sustained.answered_qps,
        sustained.p50.as_micros(),
        sustained.p99.as_micros(),
        sustained.shed
    );

    // Section 3: 2x-capacity overload against bounded admission.
    let overload_deadline = Duration::from_millis(250);
    let (overload_json, overload, _) = storm_section(
        &model,
        &pool,
        batched_qps * 2.0,
        8,
        per_client,
        overload_deadline,
    );
    println!(
        "  overload 2.0x : {:>10.1} req/sec answered, p99 {}µs, shed {} ({:.0}%)",
        overload.answered_qps,
        overload.p99.as_micros(),
        overload.shed,
        100.0 * overload.shed as f64 / overload.submitted.max(1) as f64
    );
    assert!(overload.shed > 0, "2x overload must shed: {overload:?}");
    assert!(
        overload.p99 < overload_deadline * 2,
        "overload p99 unbounded: {:?} vs deadline {:?}",
        overload.p99,
        overload_deadline
    );

    let json = format!(
        "{{\n  \"loops\": {n},\n  \"micro_batch\": {BATCH},\n  \"reps\": {reps},\n  \
         \"closed_loop\": {{\n    \"single_qps\": {single_qps:.1},\n    \
         \"batched_qps\": {batched_qps:.1},\n    \"speedup\": {speedup:.3},\n    \
         \"mean_fill\": {batched_fill:.2}\n  }},\n  \
         \"sustained\": {sustained_json},\n  \"overload\": {overload_json},\n  \
         \"panics_caught\": 0\n}}\n"
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_serve.json", json));
    eprintln!("[serve] wrote BENCH_serve.json");
}
