//! Corpus label auditor: cross-checks the static dependence oracle
//! (`mvgnn_analyze::analyze_loop`) against the profiler's observed
//! dependence graph and the dataset's labels over the full generated
//! corpus.
//!
//! Since the sharded-pipeline refactor the audit runs *per shard*: the
//! corpus work units are dealt across shards by the same
//! [`mvgnn_dataset::ShardPlan`] the generator uses, each shard is
//! audited independently (in parallel), and the per-shard reports are
//! merged into one. Merge semantics: counters sum, row lists
//! concatenate and re-sort into the canonical `(seed, app, level,
//! loop)` order — so the merged report is byte-identical for every
//! shard count, and a violation found by any shard is fatal for the
//! whole audit.
//!
//! Three soundness rules are *fatal* (non-zero exit):
//!
//! - **Rule A** — a loop the oracle marks `ProvablyParallel` must not
//!   exhibit an observed loop-carried dependence outside the oracle's
//!   excused reduction chains. A violation means the static proof is
//!   wrong.
//! - **Rule B** — a loop the oracle marks `ProvablyDependent` must not
//!   carry a parallelisable ground-truth pattern. A violation means the
//!   dependence "proof" claimed a dependence the generator knows is not
//!   there.
//! - **Rule C** — a *proved* parallelization plan
//!   ([`mvgnn_analyze::plan_from_report`]) must not contradict the
//!   clean (pre-noise) ground-truth label. Templates the generator
//!   marks trace-limited are excused, mirroring rules A/B's excuse
//!   surface; disagreements with the *noise-injected* dataset label and
//!   pattern-granularity disagreements (proved `Reduction` on a `DoAll`
//!   truth, both parallel) are counted, not enforced.
//!
//! Everything else is reported, not enforced: disagreements with the
//! dynamic classifier, mismatches against the (noise-injected) dataset
//! label, and the oracle's `Unknown` coverage. The full run audits the
//! paper corpus *and* the opt-in adversarial `Stress` suite (so rule C
//! covers every kernel family) and writes `LINT_report.json` with
//! per-family counters; `--smoke` audits a single seed at `-O0` split
//! across two shards and writes nothing (the CI wiring check, covering
//! the shard merge). `--shards N` overrides the shard count.

use mvgnn_analyze::{analyze_loop, plan_from_report, PlannedPattern, Verdict};
use mvgnn_dataset::{
    base_key, generate_app, noisy_label, CorpusConfig, KernelFamily, PatternKind, ShardPlan,
    Suite,
};
use mvgnn_ir::transform::{optimize, OptLevel};
use mvgnn_profiler::{classify_loop, profile_module};
use rayon::prelude::*;

/// One audited loop (a base loop under one optimisation level).
struct Audited {
    app: &'static str,
    seed: u64,
    level: OptLevel,
    kind: String,
    loop_id: String,
    verdict: Verdict,
    /// Dynamic classifier agrees with the oracle's definite verdict.
    dynamic_agrees: bool,
    /// Noise-injected dataset label (what the model trains on).
    dataset_label: usize,
    /// Ground-truth (pre-noise) label.
    truth_label: usize,
    /// The generator marks this template as invisible to tracing.
    trace_limited: bool,
    /// Kernel family of the loop's template.
    family: KernelFamily,
    /// Binary claim of a proved plan (`None` when nothing is proved).
    plan_binary: Option<usize>,
    /// Proved plan disagrees with the noise-flipped dataset label while
    /// agreeing with the truth (counted, not fatal).
    plan_noisy_disagree: bool,
    /// Proved plan agrees at binary granularity but names a different
    /// pattern than the generator's (counted, not fatal).
    plan_pattern_disagree: bool,
}

struct Violation {
    rule: &'static str,
    detail: String,
}

/// What one shard's audit observed; merged across shards below.
struct ShardAudit {
    shard_id: usize,
    audited: Vec<Audited>,
    violations: Vec<Violation>,
    profile_failures: usize,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Audit the work units one shard of the plan owns.
fn audit_shard(
    plan: &ShardPlan,
    shard_id: usize,
    levels: &[OptLevel],
    noise_cfg: &CorpusConfig,
) -> ShardAudit {
    let mut audited: Vec<Audited> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut profile_failures = 0usize;

    for &(seed, spec) in plan.units_of(shard_id) {
        let app = generate_app(spec, seed);
        for &level in levels {
            let module = optimize(&app.module, level);
            let res = match profile_module(&module, app.entry, &[]) {
                Ok(r) => r,
                Err(e) => {
                    profile_failures += 1;
                    eprintln!(
                        "[lint] shard {shard_id}: profile failed: {} seed {seed} {level:?}: {e}",
                        app.spec.name
                    );
                    continue;
                }
            };
            for (i, &(f, l, pattern)) in app.loops.iter().enumerate() {
                if !res.loops.contains_key(&(f, l)) {
                    continue; // never executed under this input
                }
                let kind = app.loop_kinds[i];
                let report = analyze_loop(&module, f, l);
                let truth = usize::from(pattern.is_parallelizable());
                let key = base_key(app.spec.name, seed, f, l);
                let label = noisy_label(key, noise_cfg.seed, noise_cfg.label_noise, truth);
                let carried = res.deps.carried_by(f, l);

                // Rule A: a parallel proof excuses only its own
                // reduction chains; any other observed carried
                // dependence falsifies it.
                if report.verdict == Verdict::ProvablyParallel {
                    for d in &carried {
                        if !(report.excused.contains(&d.src)
                            && report.excused.contains(&d.dst))
                        {
                            violations.push(Violation {
                                rule: "A",
                                detail: format!(
                                    "{} seed {seed} {level:?} {kind:?} loop f{}:l{}: \
                                     proved parallel but observed carried {} {} -> {}",
                                    app.spec.name, f.0, l.0, d.kind, d.src, d.dst
                                ),
                            });
                        }
                    }
                }
                // Rule B: a dependence proof on a loop the generator
                // built to be parallelisable is a false proof.
                if report.verdict == Verdict::ProvablyDependent && truth == 1 {
                    violations.push(Violation {
                        rule: "B",
                        detail: format!(
                            "{} seed {seed} {level:?} {kind:?} loop f{}:l{}: \
                             proved dependent but pattern {pattern:?} is parallelisable",
                            app.spec.name, f.0, l.0
                        ),
                    });
                }

                // Rule C: a proved plan must restate the clean truth.
                let plan = plan_from_report(&module, f, l, &report);
                let plan_binary = plan.proved_binary();
                let mut plan_noisy_disagree = false;
                let mut plan_pattern_disagree = false;
                if let Some(pb) = plan_binary {
                    if pb != truth && !kind.trace_limited() {
                        violations.push(Violation {
                            rule: "C",
                            detail: format!(
                                "{} seed {seed} {level:?} {kind:?} loop f{}:l{}: \
                                 proved plan `{}` contradicts clean truth {truth} \
                                 (pattern {pattern:?})",
                                app.spec.name, f.0, l.0, plan.pragma
                            ),
                        });
                    }
                    plan_noisy_disagree = pb == truth && pb != label;
                    let planned_kind = plan.proved_pattern().map(|p| match p {
                        PlannedPattern::DoAll => PatternKind::DoAll,
                        PlannedPattern::Reduction => PatternKind::Reduction,
                        PlannedPattern::Serial => PatternKind::Serial,
                    });
                    plan_pattern_disagree = pb == truth && planned_kind != Some(pattern);
                }

                let dynamic = classify_loop(&module, f, l, &res.deps).is_parallelizable();
                let dynamic_agrees = match report.verdict {
                    Verdict::ProvablyParallel => dynamic,
                    Verdict::ProvablyDependent => !dynamic,
                    Verdict::Unknown => true,
                };
                audited.push(Audited {
                    app: app.spec.name,
                    seed,
                    level,
                    kind: format!("{kind:?}"),
                    loop_id: format!("f{}:l{}", f.0, l.0),
                    verdict: report.verdict,
                    dynamic_agrees,
                    dataset_label: label,
                    truth_label: truth,
                    trace_limited: kind.trace_limited(),
                    family: kind.family(),
                    plan_binary,
                    plan_noisy_disagree,
                    plan_pattern_disagree,
                });
            }
        }
    }
    ShardAudit { shard_id, audited, violations, profile_failures }
}

/// Merge per-shard audits into one report: counters sum, rows re-sort
/// into the canonical order so the result is shard-count invariant.
fn merge(mut shards: Vec<ShardAudit>) -> (Vec<Audited>, Vec<Violation>, usize) {
    shards.sort_by_key(|s| s.shard_id);
    let mut audited: Vec<Audited> = Vec::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut profile_failures = 0usize;
    for s in shards {
        audited.extend(s.audited);
        violations.extend(s.violations);
        profile_failures += s.profile_failures;
    }
    audited.sort_by(|a, b| {
        (a.seed, a.app, a.level, &a.loop_id).cmp(&(b.seed, b.app, b.level, &b.loop_id))
    });
    violations.sort_by(|a, b| (a.rule, &a.detail).cmp(&(b.rule, &b.detail)));
    (audited, violations, profile_failures)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let num_shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if smoke { 2 } else { 4 })
        .max(1);
    // The default matches the Default-scale corpus of `pipeline_config`
    // (seeds 1..=2, all six optimisation variants); smoke is one seed at
    // -O0 split over two shards, seconds-scale.
    let (seeds, levels): (Vec<u64>, Vec<OptLevel>) = if smoke {
        (vec![1], vec![OptLevel::O0])
    } else {
        (vec![1, 2], OptLevel::ALL.to_vec())
    };
    let noise_cfg = CorpusConfig::default();
    let plan_cfg = CorpusConfig { seeds: seeds.clone(), suite: None, ..CorpusConfig::default() };
    let plan = ShardPlan::new(&plan_cfg, num_shards);
    // The full audit also covers the opt-in adversarial stress suite, so
    // rule C is exercised on every kernel family, not just the paper
    // corpus' regular-dominated mix.
    let stress_plan = (!smoke).then(|| {
        let cfg = CorpusConfig { seeds, suite: Some(Suite::Stress), ..CorpusConfig::default() };
        ShardPlan::new(&cfg, num_shards)
    });

    let shard_audits: Vec<ShardAudit> = (0..num_shards)
        .into_par_iter()
        .map(|s| {
            let mut a = audit_shard(&plan, s, &levels, &noise_cfg);
            if let Some(sp) = &stress_plan {
                let b = audit_shard(sp, s, &levels, &noise_cfg);
                a.audited.extend(b.audited);
                a.violations.extend(b.violations);
                a.profile_failures += b.profile_failures;
            }
            a
        })
        .collect();
    for s in &shard_audits {
        println!(
            "shard {}/{num_shards}: {} loops audited, {} violations, {} profile failures",
            s.shard_id,
            s.audited.len(),
            s.violations.len(),
            s.profile_failures
        );
    }
    let (audited, violations, profile_failures) = merge(shard_audits);

    let total = audited.len();
    let count = |v: Verdict| audited.iter().filter(|a| a.verdict == v).count();
    let (n_par, n_dep, n_unk) = (
        count(Verdict::ProvablyParallel),
        count(Verdict::ProvablyDependent),
        count(Verdict::Unknown),
    );
    let dyn_disagree: Vec<&Audited> = audited.iter().filter(|a| !a.dynamic_agrees).collect();
    let label_mismatch: Vec<&Audited> = audited
        .iter()
        .filter(|a| match a.verdict {
            Verdict::ProvablyParallel => a.dataset_label == 0,
            Verdict::ProvablyDependent => a.dataset_label == 1,
            Verdict::Unknown => false,
        })
        .collect();
    let noise_only = label_mismatch
        .iter()
        .filter(|a| a.dataset_label != a.truth_label)
        .count();
    let plans_proved = audited.iter().filter(|a| a.plan_binary.is_some()).count();
    let plan_noisy = audited.iter().filter(|a| a.plan_noisy_disagree).count();
    let plan_pattern = audited.iter().filter(|a| a.plan_pattern_disagree).count();
    let rule_c_fatals = violations.iter().filter(|v| v.rule == "C").count();

    println!("audited loops:          {total} (merged from {num_shards} shards)");
    println!("  provably parallel:    {n_par}");
    println!("  provably dependent:   {n_dep}");
    println!(
        "  unknown:              {n_unk} ({:.1}% coverage gap)",
        if total == 0 { 0.0 } else { 100.0 * n_unk as f64 / total as f64 }
    );
    println!("dynamic disagreements:  {}", dyn_disagree.len());
    println!("label mismatches:       {} ({noise_only} from injected noise)", label_mismatch.len());
    println!(
        "proved plans:           {plans_proved} ({plan_noisy} vs noisy label, \
         {plan_pattern} pattern-granularity, {rule_c_fatals} rule-C fatal)"
    );
    println!("profile failures:       {profile_failures}");
    println!("soundness violations:   {}", violations.len());
    for v in &violations {
        eprintln!("VIOLATION rule {}: {}", v.rule, v.detail);
    }

    if !smoke {
        let row = |a: &Audited| {
            format!(
                "    {{\"app\": \"{}\", \"seed\": {}, \"level\": \"{:?}\", \"kind\": \"{}\", \
                 \"loop\": \"{}\", \"verdict\": \"{}\", \"dataset_label\": {}, \
                 \"truth_label\": {}, \"trace_limited\": {}}}",
                json_escape(a.app),
                a.seed,
                a.level,
                json_escape(&a.kind),
                a.loop_id,
                a.verdict.as_str(),
                a.dataset_label,
                a.truth_label,
                a.trace_limited
            )
        };
        let viol_rows: Vec<String> = violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"rule\": \"{}\", \"detail\": \"{}\"}}",
                    v.rule,
                    json_escape(&v.detail)
                )
            })
            .collect();
        let dyn_rows: Vec<String> = dyn_disagree.iter().map(|a| row(a)).collect();
        let label_rows: Vec<String> = label_mismatch.iter().map(|a| row(a)).collect();
        let family_rows: Vec<String> = KernelFamily::ALL
            .iter()
            .map(|fam| {
                let in_family: Vec<&Audited> =
                    audited.iter().filter(|a| a.family == *fam).collect();
                let proved = in_family.iter().filter(|a| a.plan_binary.is_some()).count();
                format!(
                    "    \"{}\": {{\"audited\": {}, \"plans_proved\": {}}}",
                    fam.as_str(),
                    in_family.len(),
                    proved
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"audited\": {total},\n  \"shards\": {num_shards},\n  \
             \"verdicts\": {{\"parallel\": {n_par}, \
             \"dependent\": {n_dep}, \"unknown\": {n_unk}}},\n  \
             \"unknown_rate\": {:.4},\n  \"profile_failures\": {profile_failures},\n  \
             \"plans\": {{\"proved\": {plans_proved}, \
             \"noisy_label_disagreements\": {plan_noisy}, \
             \"pattern_granularity_disagreements\": {plan_pattern}, \
             \"rule_c_fatals\": {rule_c_fatals}}},\n  \
             \"families\": {{\n{}\n  }},\n  \
             \"violations\": [\n{}\n  ],\n  \
             \"dynamic_disagreements\": [\n{}\n  ],\n  \
             \"label_mismatches\": [\n{}\n  ],\n  \
             \"label_mismatches_from_noise\": {noise_only}\n}}\n",
            if total == 0 { 0.0 } else { n_unk as f64 / total as f64 },
            family_rows.join(",\n"),
            viol_rows.join(",\n"),
            dyn_rows.join(",\n"),
            label_rows.join(",\n"),
        );
        mvgnn_bench::or_die(std::fs::write("LINT_report.json", json));
        eprintln!("[lint] wrote LINT_report.json");
    }

    if total == 0 {
        eprintln!("fatal: audited zero loops");
        std::process::exit(1);
    }
    if !violations.is_empty() {
        eprintln!("fatal: {} soundness violation(s)", violations.len());
        std::process::exit(1);
    }
}
