//! Design-choice ablations (DESIGN.md §6):
//!
//! 1. multi-view vs each single view,
//! 2. anonymous-walk parameter sweeps (length, walks per node),
//! 3. dynamic features on vs off,
//! 4. SortPooling k sensitivity,
//! 5. walk length / walks-per-node sweeps.

use mvgnn_bench::{pipeline_config, print_row, print_rule, Scale};
use mvgnn_core::model::{MvGnn, MvGnnConfig, ViewMode};
use mvgnn_core::trainer::{evaluate, train};
use mvgnn_dataset::build_corpus;
use mvgnn_graph::WalkConfig;

fn main() {
    let scale = Scale::from_args();
    let mut cfg = pipeline_config(scale);
    // Ablations re-train many variants: shrink the corpus a bit.
    if let Some(per) = cfg.corpus.per_class {
        cfg.corpus.per_class = Some(per.min(200));
    }

    let w = [34, 10];
    println!("\nAblation study (test accuracy %)\n");
    print_row(&["variant".into(), "acc".into()], &w);
    print_rule(&w);

    // Walk-parameter sweep changes the corpus; evaluate it first.
    for (walk_len, gamma) in [(3usize, 50usize), (4, 50), (5, 50), (4, 10), (4, 100)] {
        let mut ccfg = cfg.corpus.clone();
        ccfg.sample.walks = WalkConfig { walk_len, walks_per_node: gamma, seed: 0x5eed_cafe };
        ccfg.sample.walk_len = walk_len;
        let ds = build_corpus(&ccfg);
        let probe = &ds.train[0].sample;
        let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
        mvgnn_bench::or_die(train(&mut model, &ds.train, &cfg.train));
        let acc = evaluate(&model, &ds.test).accuracy() * 100.0;
        print_row(
            &[format!("walks l={walk_len} γ={gamma}"), format!("{acc:.1}")],
            &w,
        );
    }
    print_rule(&w);

    // Model-side ablations over one fixed corpus.
    let ds = build_corpus(&cfg.corpus);
    let probe = &ds.train[0].sample;
    let base = MvGnnConfig::small(probe.node_dim, probe.aw_vocab);

    let variants: Vec<(String, MvGnnConfig)> = vec![
        ("multi-view (full)".into(), base.clone()),
        (
            "node view only".into(),
            MvGnnConfig { mode: ViewMode::NodeOnly, ..base.clone() },
        ),
        (
            "structural view only".into(),
            MvGnnConfig { mode: ViewMode::StructOnly, ..base.clone() },
        ),
        (
            "no dynamic features".into(),
            MvGnnConfig { drop_dynamic: true, ..base.clone() },
        ),
        (
            "sortpool k=8".into(),
            {
                let mut c = base.clone();
                c.node_dgcnn.k = 8;
                c.struct_dgcnn.k = 8;
                c
            },
        ),
        (
            "sortpool k=32".into(),
            {
                let mut c = base.clone();
                c.node_dgcnn.k = 32;
                c.struct_dgcnn.k = 32;
                c
            },
        ),
    ];
    for (name, mcfg) in variants {
        let mut model = MvGnn::new(mcfg);
        mvgnn_bench::or_die(train(&mut model, &ds.train, &cfg.train));
        let acc = evaluate(&model, &ds.test).accuracy() * 100.0;
        print_row(&[name, format!("{acc:.1}")], &w);
    }
}
