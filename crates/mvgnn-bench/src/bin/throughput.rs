//! Inference-throughput benchmark: loops/sec for batched (packed
//! `GraphBatch`) versus per-sample execution of the same model on the
//! same loop population, plus a thread sweep of the concurrent
//! [`InferenceEngine`].
//!
//! All paths are bit-identical (asserted here and property-tested in
//! `tests/batch_parity.rs` / `tests/concurrent_parity.rs`): batching
//! measures pure tape-amortisation, and the engine sweep measures what
//! the worker fan-out adds on top for each thread count. Emits
//! `BENCH_throughput.json` next to the working directory for trend
//! tracking.
//!
//! `--smoke` runs a single engine batch against the sequential path and
//! exits — a seconds-scale CI wiring check, no JSON written.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::{EngineConfig, InferenceEngine, MvGnn, MvGnnConfig};
use mvgnn_dataset::build_corpus;
use mvgnn_embed::GraphSample;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 32;

/// Engine worker counts swept by the benchmark.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Minimum length of one timing window; sub-millisecond windows are
/// dominated by scheduler noise on a loaded machine.
const MIN_WINDOW_SECS: f64 = 0.1;

/// Repetitions of `f` needed to fill one [`MIN_WINDOW_SECS`] window.
fn calibrate(f: &mut impl FnMut()) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64();
    ((MIN_WINDOW_SECS / once.max(1e-9)).ceil() as usize).clamp(1, 10_000)
}

/// Best-of-`reps` wall time for one call of `f`, in seconds; each window
/// repeats `f` enough to fill [`MIN_WINDOW_SECS`], so one descheduling
/// blip cannot dominate a measurement.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let per = calibrate(&mut f);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / per as f64);
    }
    best
}

fn build_model(scale: Scale) -> (Vec<mvgnn_dataset::LabeledSample>, MvGnn) {
    let cfg = pipeline_config(scale);
    eprintln!("[throughput] building corpus ({scale:?})…");
    let ds = build_corpus(&cfg.corpus);
    // Bench over the whole corpus (train + test): throughput is a property
    // of the kernels, not of the split, and the larger population keeps
    // most chunks at the full BATCH width.
    let pool: Vec<mvgnn_dataset::LabeledSample> =
        ds.train.iter().chain(ds.test.iter()).cloned().collect();
    let probe = &pool[0].sample;
    let model = if cfg.paper_scale {
        MvGnn::new(MvGnnConfig::paper(probe.node_dim, probe.aw_vocab))
    } else {
        MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab))
    };
    (pool, model)
}

/// One-batch wiring check for CI: the engine must agree with the
/// sequential path on a single packed batch.
fn smoke() {
    let (pool, model) = build_model(Scale::Quick);
    let samples: Vec<&GraphSample> =
        pool.iter().take(BATCH).map(|s| &s.sample).collect();
    let sequential = model.predict_batch(&samples);
    let engine = InferenceEngine::new(
        Arc::new(model),
        EngineConfig { threads: 2, batch_size: BATCH },
    );
    let streamed = engine.predict_stream(&samples);
    assert_eq!(sequential, streamed, "engine smoke: stream diverged from sequential");
    println!("[throughput] smoke OK: engine matches sequential on {} loops", samples.len());
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let scale = Scale::from_args();
    let (pool, model) = build_model(scale);
    let samples: Vec<&GraphSample> = pool.iter().map(|s| &s.sample).collect();
    let n = samples.len();
    eprintln!("[throughput] {n} loops, batch size {BATCH}");

    // Warm-up + parity assertion: every path must agree exactly.
    let single_preds: Vec<usize> = samples.iter().map(|s| model.predict(s)).collect();
    let batched_preds: Vec<usize> =
        samples.chunks(BATCH).flat_map(|c| model.predict_batch(c)).collect();
    assert_eq!(single_preds, batched_preds, "batched/per-sample predictions diverged");

    let reps = if scale == Scale::Quick { 5 } else { 7 };
    let t_single = best_secs(reps, || {
        for s in &samples {
            std::hint::black_box(model.predict(s));
        }
    });
    let t_batched = best_secs(reps, || {
        for chunk in samples.chunks(BATCH) {
            std::hint::black_box(model.predict_batch(chunk));
        }
    });

    // Engine sweep: same batch size, varying worker counts. Forward-only
    // inference shares the weights through `Arc<MvGnn>`.
    let model = Arc::new(model);
    let mut engine_lps: Vec<(usize, f64)> = Vec::with_capacity(THREAD_SWEEP.len());
    for threads in THREAD_SWEEP {
        let engine = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads, batch_size: BATCH },
        );
        assert_eq!(
            engine.predict_stream(&samples),
            batched_preds,
            "engine predictions diverged at {threads} threads"
        );
        let t = best_secs(reps, || {
            std::hint::black_box(engine.predict_stream(&samples));
        });
        engine_lps.push((threads, n as f64 / t));
    }

    let single_lps = n as f64 / t_single;
    let batched_lps = n as f64 / t_batched;
    let speedup = batched_lps / single_lps;
    println!("\nInference throughput ({n} loops, best of {reps}):");
    println!("  per-sample : {single_lps:>10.1} loops/sec  ({t_single:.3} s)");
    println!("  batched({BATCH:>2}): {batched_lps:>10.1} loops/sec  ({t_batched:.3} s)");
    println!("  speedup    : {speedup:.2}x");
    for (threads, lps) in &engine_lps {
        println!("  engine x{threads:<2}: {lps:>10.1} loops/sec");
    }
    let engine_best = engine_lps.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
    let engine_speedup = engine_best / single_lps;
    println!("  engine best: {engine_speedup:.2}x over per-sample");

    let threads_json: Vec<String> = engine_lps
        .iter()
        .map(|(t, lps)| format!("    \"{t}\": {lps:.2}"))
        .collect();
    let json = format!(
        "{{\n  \"loops\": {n},\n  \"batch_size\": {BATCH},\n  \"reps\": {reps},\n  \
         \"single_loops_per_sec\": {single_lps:.2},\n  \
         \"batched_loops_per_sec\": {batched_lps:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"threads\": {{\n{}\n  }},\n  \"engine_speedup\": {engine_speedup:.3}\n}}\n",
        threads_json.join(",\n")
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_throughput.json", json));
    eprintln!("[throughput] wrote BENCH_throughput.json");
}
