//! Inference-throughput benchmark: loops/sec for batched (packed
//! `GraphBatch`) versus per-sample execution of the same model on the
//! same loop population.
//!
//! Batched and per-sample inference are bit-identical (asserted here and
//! property-tested in `tests/batch_parity.rs`), so this measures pure
//! tape-amortisation: one packed program per chunk instead of one per
//! loop. Emits `BENCH_throughput.json` next to the working directory for
//! trend tracking.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::{MvGnn, MvGnnConfig};
use mvgnn_dataset::build_corpus;
use mvgnn_embed::GraphSample;
use std::time::Instant;

const BATCH: usize = 32;

/// Minimum length of one timing window; sub-millisecond windows are
/// dominated by scheduler noise on a loaded machine.
const MIN_WINDOW_SECS: f64 = 0.1;

/// Repetitions of `f` needed to fill one [`MIN_WINDOW_SECS`] window.
fn calibrate(f: &mut impl FnMut()) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64();
    ((MIN_WINDOW_SECS / once.max(1e-9)).ceil() as usize).clamp(1, 10_000)
}

/// Best-of-`reps` wall time for one call of each of `f` and `g`, in
/// seconds. The two measurements are interleaved window by window so a
/// frequency or load shift on the host hits both paths alike instead of
/// skewing whichever happened to run second; each window repeats its
/// function enough to fill [`MIN_WINDOW_SECS`], so one descheduling blip
/// cannot dominate a measurement.
fn best_secs_pair(reps: usize, mut f: impl FnMut(), mut g: impl FnMut()) -> (f64, f64) {
    let f_per = calibrate(&mut f);
    let g_per = calibrate(&mut g);
    let (mut best_f, mut best_g) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..f_per {
            f();
        }
        best_f = best_f.min(t.elapsed().as_secs_f64() / f_per as f64);
        let t = Instant::now();
        for _ in 0..g_per {
            g();
        }
        best_g = best_g.min(t.elapsed().as_secs_f64() / g_per as f64);
    }
    (best_f, best_g)
}

fn main() {
    let scale = Scale::from_args();
    let cfg = pipeline_config(scale);
    eprintln!("[throughput] building corpus ({scale:?})…");
    let ds = build_corpus(&cfg.corpus);
    // Bench over the whole corpus (train + test): throughput is a property
    // of the kernels, not of the split, and the larger population keeps
    // most chunks at the full BATCH width.
    let samples: Vec<&GraphSample> =
        ds.train.iter().chain(ds.test.iter()).map(|s| &s.sample).collect();
    let probe = samples[0];
    let mut model = if cfg.paper_scale {
        MvGnn::new(MvGnnConfig::paper(probe.node_dim, probe.aw_vocab))
    } else {
        MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab))
    };
    let n = samples.len();
    eprintln!("[throughput] {n} loops, batch size {BATCH}");

    // Warm-up + parity assertion: the two paths must agree exactly.
    let mut single_preds = Vec::with_capacity(n);
    for s in &samples {
        single_preds.push(model.predict(s));
    }
    let batched_preds: Vec<usize> =
        samples.chunks(BATCH).flat_map(|c| model.predict_batch(c)).collect();
    assert_eq!(single_preds, batched_preds, "batched/per-sample predictions diverged");

    let reps = if scale == Scale::Quick { 5 } else { 7 };
    // Both closures capture the model, so measure via raw pointer-free
    // sequential borrows: RefCell keeps the closures independent.
    let model = std::cell::RefCell::new(model);
    let (t_single, t_batched) = best_secs_pair(
        reps,
        || {
            let mut m = model.borrow_mut();
            for s in &samples {
                std::hint::black_box(m.predict(s));
            }
        },
        || {
            let mut m = model.borrow_mut();
            for chunk in samples.chunks(BATCH) {
                std::hint::black_box(m.predict_batch(chunk));
            }
        },
    );

    let single_lps = n as f64 / t_single;
    let batched_lps = n as f64 / t_batched;
    let speedup = batched_lps / single_lps;
    println!("\nInference throughput ({n} loops, best of {reps}):");
    println!("  per-sample : {single_lps:>10.1} loops/sec  ({t_single:.3} s)");
    println!("  batched({BATCH:>2}): {batched_lps:>10.1} loops/sec  ({t_batched:.3} s)");
    println!("  speedup    : {speedup:.2}x");

    let json = format!(
        "{{\n  \"loops\": {n},\n  \"batch_size\": {BATCH},\n  \"reps\": {reps},\n  \
         \"single_loops_per_sec\": {single_lps:.2},\n  \
         \"batched_loops_per_sec\": {batched_lps:.2},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_throughput.json", json));
    eprintln!("[throughput] wrote BENCH_throughput.json");
}
