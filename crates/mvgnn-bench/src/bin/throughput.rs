//! Inference-throughput benchmark: loops/sec for batched (packed
//! `GraphBatch`) versus per-sample execution of the same model on the
//! same loop population, plus a thread sweep of the concurrent
//! [`InferenceEngine`].
//!
//! All paths are bit-identical (asserted here and property-tested in
//! `tests/batch_parity.rs` / `tests/concurrent_parity.rs`): batching
//! measures pure tape-amortisation, and the engine sweep measures what
//! the worker fan-out adds on top for each thread count. Emits
//! `BENCH_throughput.json` next to the working directory for trend
//! tracking.
//!
//! `--smoke` runs a single engine batch against the sequential path and
//! exits — a seconds-scale CI wiring check, no JSON written.
//!
//! `--alloc-smoke` (needs `--features count-allocs`) asserts the pooled
//! steady state: after warm-up, one full engine stream must stay under
//! `ALLOC_BUDGET_PER_LOOP` heap allocations per loop. The full run
//! also reports allocs/loop for the per-sample baseline versus the
//! pooled engine, and the featurisation-cache hit rate, in
//! `BENCH_throughput.json`.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::{
    classify_module_cached, EngineConfig, InferenceEngine, MvGnn, MvGnnConfig,
};
use mvgnn_dataset::{build_corpus, generate_app, Suite, TABLE2};
use mvgnn_embed::{FeatureCache, GraphSample, Inst2Vec, SampleConfig};
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 32;

/// Steady-state heap-allocation budget per classified loop for the
/// pooled engine (after one warm-up stream). The remaining allocations
/// are per-*chunk* bookkeeping (adjacency pointer list, SortPooling pair
/// lists, the prediction vector), so the real steady state sits around
/// 0.2–0.5 per loop; the budget is a backstop, not a target.
#[cfg(feature = "count-allocs")]
const ALLOC_BUDGET_PER_LOOP: f64 = 2.0;

/// Engine worker counts swept by the benchmark.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Minimum length of one timing window; sub-millisecond windows are
/// dominated by scheduler noise on a loaded machine.
const MIN_WINDOW_SECS: f64 = 0.1;

/// Repetitions of `f` needed to fill one [`MIN_WINDOW_SECS`] window.
fn calibrate(f: &mut impl FnMut()) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_secs_f64();
    ((MIN_WINDOW_SECS / once.max(1e-9)).ceil() as usize).clamp(1, 10_000)
}

/// Best-of-`reps` wall time for one call of `f`, in seconds; each window
/// repeats `f` enough to fill [`MIN_WINDOW_SECS`], so one descheduling
/// blip cannot dominate a measurement.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let per = calibrate(&mut f);
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / per as f64);
    }
    best
}

fn build_model(scale: Scale) -> (Vec<mvgnn_dataset::LabeledSample>, MvGnn) {
    let cfg = pipeline_config(scale);
    eprintln!("[throughput] building corpus ({scale:?})…");
    let ds = build_corpus(&cfg.corpus);
    // Bench over the whole corpus (train + test): throughput is a property
    // of the kernels, not of the split, and the larger population keeps
    // most chunks at the full BATCH width.
    let pool: Vec<mvgnn_dataset::LabeledSample> =
        ds.train.iter().chain(ds.test.iter()).cloned().collect();
    let probe = &pool[0].sample;
    let model = if cfg.paper_scale {
        MvGnn::new(MvGnnConfig::paper(probe.node_dim, probe.aw_vocab))
    } else {
        MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab))
    };
    (pool, model)
}

/// Per-pass featurisation-cache census. Reporting warm-up and steady
/// state separately matters: folding the all-miss cold pass into the
/// totals halves the apparent hit rate (a 9-hit/9-miss run reads as
/// 50%) when the steady-state rate — the number that predicts serving
/// cost — is 100%.
struct CachePass {
    hits: u64,
    misses: u64,
}

impl CachePass {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// Exercise the featurisation cache: classify one generated app twice
/// with a shared [`FeatureCache`] and return `(warmup, steady)` pass
/// censuses. Loops live in the per-kernel functions (the app entry is a
/// driver with none of its own), so each kernel is classified as its own
/// entry. The cold warm-up pass builds every loop's sample; the warm
/// steady-state pass must replay them all, and both passes' reports must
/// agree.
fn feature_cache_stats(scale: Scale) -> (CachePass, CachePass) {
    let cfg = pipeline_config(scale);
    let spec = mvgnn_dataset::TABLE2
        .iter()
        .filter(|s| s.suite == Suite::PolyBench)
        .min_by_key(|s| s.loops)
        .copied()
        .unwrap_or(TABLE2[0]);
    let app = generate_app(spec, 1);
    let mut kernels: Vec<_> = app.loops.iter().map(|(f, _, _)| *f).collect();
    kernels.sort_unstable_by_key(|f| f.index());
    kernels.dedup();
    let i2v = Inst2Vec::train(&[&app.module], &cfg.corpus.inst2vec);
    let sample_cfg = SampleConfig::default();
    let node_dim = i2v.dim()
        + mvgnn_embed::sample::KIND_DIM
        + mvgnn_embed::sample::EDGE_DIM
        + mvgnn_profiler::DynamicFeatures::DIM;
    let aw_vocab = mvgnn_graph::AwVocab::new(sample_cfg.walk_len).size();
    let model = MvGnn::new(MvGnnConfig::small(node_dim, aw_vocab));
    let mut cache = FeatureCache::new(1024);
    let classify_all = |cache: &mut FeatureCache| -> Vec<mvgnn_core::LoopReport> {
        kernels
            .iter()
            .flat_map(|&f| {
                classify_module_cached(
                    &model, &app.module, f, &i2v, &sample_cfg, None, None, Some(cache),
                )
            })
            .collect()
    };
    let cold = classify_all(&mut cache);
    let after_cold = cache.stats();
    let warm = classify_all(&mut cache);
    let after_warm = cache.stats();
    assert!(!cold.is_empty(), "generated app produced no classifiable loops");
    assert_eq!(cold.len(), warm.len(), "cache replay changed the report set");
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(
            (a.prediction, a.source),
            (b.prediction, b.source),
            "cache replay changed a verdict"
        );
    }
    (
        CachePass { hits: after_cold.hits, misses: after_cold.misses },
        CachePass {
            hits: after_warm.hits - after_cold.hits,
            misses: after_warm.misses - after_cold.misses,
        },
    )
}

/// One-batch wiring check for CI: the engine must agree with the
/// sequential path on a single packed batch.
fn smoke() {
    let (pool, model) = build_model(Scale::Quick);
    let samples: Vec<&GraphSample> =
        pool.iter().take(BATCH).map(|s| &s.sample).collect();
    let sequential = model.predict_batch(&samples);
    let engine = InferenceEngine::new(
        Arc::new(model),
        EngineConfig { threads: 2, batch_size: BATCH },
    );
    let streamed = engine.predict_stream(&samples);
    assert_eq!(sequential, streamed, "engine smoke: stream diverged from sequential");
    println!("[throughput] smoke OK: engine matches sequential on {} loops", samples.len());
}

/// Allocation cost of one run of `f`, amortised over `loops`, in
/// allocations per loop. Only meaningful with `count-allocs`.
#[cfg(feature = "count-allocs")]
fn allocs_per_loop(loops: usize, f: impl FnOnce()) -> f64 {
    let before = mvgnn_bench::alloc_count::allocations();
    f();
    (mvgnn_bench::alloc_count::allocations() - before) as f64 / loops.max(1) as f64
}

/// CI gate for the zero-allocation steady state: after one warm-up
/// stream, a full engine pass must stay under [`ALLOC_BUDGET_PER_LOOP`]
/// heap allocations per loop.
#[cfg(feature = "count-allocs")]
fn alloc_smoke() {
    let (pool, model) = build_model(Scale::Quick);
    let samples: Vec<&GraphSample> = pool.iter().map(|s| &s.sample).collect();
    let engine = InferenceEngine::new(
        Arc::new(model),
        EngineConfig { threads: 1, batch_size: BATCH },
    );
    let warmup = engine.predict_stream(&samples);
    let mut steady = Vec::new();
    let per_loop = allocs_per_loop(samples.len(), || {
        steady = engine.predict_stream(&samples);
    });
    assert_eq!(warmup, steady, "steady-state stream diverged from warm-up");
    println!(
        "[throughput] alloc smoke: {per_loop:.3} allocs/loop over {} loops (budget {ALLOC_BUDGET_PER_LOOP})",
        samples.len()
    );
    assert!(
        per_loop <= ALLOC_BUDGET_PER_LOOP,
        "steady-state allocations regressed: {per_loop:.3}/loop exceeds {ALLOC_BUDGET_PER_LOOP}"
    );
    println!("[throughput] alloc smoke OK");
}

fn main() {
    if std::env::args().any(|a| a == "--alloc-smoke") {
        #[cfg(feature = "count-allocs")]
        {
            alloc_smoke();
            return;
        }
        #[cfg(not(feature = "count-allocs"))]
        {
            eprintln!("--alloc-smoke needs a build with --features count-allocs");
            std::process::exit(2);
        }
    }
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let scale = Scale::from_args();
    let (pool, model) = build_model(scale);
    let samples: Vec<&GraphSample> = pool.iter().map(|s| &s.sample).collect();
    let n = samples.len();
    eprintln!("[throughput] {n} loops, batch size {BATCH}");

    // Warm-up + parity assertion: every path must agree exactly.
    let single_preds: Vec<usize> = samples.iter().map(|s| model.predict(s)).collect();
    let batched_preds: Vec<usize> =
        samples.chunks(BATCH).flat_map(|c| model.predict_batch(c)).collect();
    assert_eq!(single_preds, batched_preds, "batched/per-sample predictions diverged");

    let reps = if scale == Scale::Quick { 5 } else { 7 };
    let t_single = best_secs(reps, || {
        for s in &samples {
            std::hint::black_box(model.predict(s));
        }
    });
    let t_batched = best_secs(reps, || {
        for chunk in samples.chunks(BATCH) {
            std::hint::black_box(model.predict_batch(chunk));
        }
    });

    // Featurisation cache: classify a generated app twice and report the
    // cold warm-up pass and the replayed steady-state pass separately.
    let (cache_warmup, cache_steady) = feature_cache_stats(scale);
    println!(
        "  feature cache: warm-up {}h/{}m, steady {}h/{}m ({:.0}% steady hit rate)",
        cache_warmup.hits,
        cache_warmup.misses,
        cache_steady.hits,
        cache_steady.misses,
        cache_steady.hit_rate() * 100.0
    );

    // Engine sweep: same batch size, varying worker counts. Forward-only
    // inference shares the weights through `Arc<MvGnn>`.
    let model = Arc::new(model);

    // Steady-state allocation census (only with `count-allocs`): the
    // per-sample baseline versus a warmed pooled engine.
    #[cfg(feature = "count-allocs")]
    let alloc_section = {
        let per_sample = allocs_per_loop(n, || {
            for s in &samples {
                std::hint::black_box(model.predict(s));
            }
        });
        let engine = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads: 1, batch_size: BATCH },
        );
        std::hint::black_box(engine.predict_stream(&samples)); // warm the pools
        let steady = allocs_per_loop(n, || {
            std::hint::black_box(engine.predict_stream(&samples));
        });
        let reduction = per_sample / steady.max(1e-9);
        println!(
            "  allocations: per-sample {per_sample:.1}/loop, engine steady {steady:.3}/loop ({reduction:.0}x fewer)"
        );
        format!(
            ",\n  \"allocs_per_loop\": {{\n    \"per_sample\": {per_sample:.3},\n    \
             \"engine_steady\": {steady:.3},\n    \"reduction\": {reduction:.1}\n  }}"
        )
    };
    #[cfg(not(feature = "count-allocs"))]
    let alloc_section = String::new();

    let mut engine_lps: Vec<(usize, f64, usize)> = Vec::with_capacity(THREAD_SWEEP.len());
    for threads in THREAD_SWEEP {
        let engine = InferenceEngine::new(
            Arc::clone(&model),
            EngineConfig { threads, batch_size: BATCH },
        );
        assert_eq!(
            engine.predict_stream(&samples),
            batched_preds,
            "engine predictions diverged at {threads} threads"
        );
        let t = best_secs(reps, || {
            std::hint::black_box(engine.predict_stream(&samples));
        });
        engine_lps.push((threads, n as f64 / t, engine.dispatch_chunk(n)));
    }

    let single_lps = n as f64 / t_single;
    let batched_lps = n as f64 / t_batched;
    let speedup = batched_lps / single_lps;
    println!("\nInference throughput ({n} loops, best of {reps}):");
    println!("  per-sample : {single_lps:>10.1} loops/sec  ({t_single:.3} s)");
    println!("  batched({BATCH:>2}): {batched_lps:>10.1} loops/sec  ({t_batched:.3} s)");
    println!("  speedup    : {speedup:.2}x");
    for (threads, lps, chunk) in &engine_lps {
        println!("  engine x{threads:<2}: {lps:>10.1} loops/sec  (chunk {chunk})");
    }
    let engine_best = engine_lps.iter().map(|(_, l, _)| *l).fold(0.0f64, f64::max);
    let engine_speedup = engine_best / single_lps;
    println!("  engine best: {engine_speedup:.2}x over per-sample");

    let threads_json: Vec<String> = engine_lps
        .iter()
        .map(|(t, lps, chunk)| {
            format!("    \"{t}\": {{ \"loops_per_sec\": {lps:.2}, \"chunk\": {chunk} }}")
        })
        .collect();
    let json = format!(
        "{{\n  \"loops\": {n},\n  \"batch_size\": {BATCH},\n  \"reps\": {reps},\n  \
         \"single_loops_per_sec\": {single_lps:.2},\n  \
         \"batched_loops_per_sec\": {batched_lps:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"threads\": {{\n{}\n  }},\n  \"engine_speedup\": {engine_speedup:.3},\n  \
         \"feature_cache\": {{\n    \
         \"warmup\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3} }},\n    \
         \"steady\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3} }}\n  }}{alloc_section}\n}}\n",
        threads_json.join(",\n"),
        cache_warmup.hits,
        cache_warmup.misses,
        cache_warmup.hit_rate(),
        cache_steady.hits,
        cache_steady.misses,
        cache_steady.hit_rate(),
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_throughput.json", json));
    eprintln!("[throughput] wrote BENCH_throughput.json");
}
