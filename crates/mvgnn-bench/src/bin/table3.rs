//! Regenerates Table III: accuracy of MV-GNN, Static GNN, SVM, Decision
//! Tree, AdaBoost, NCC, Pluto, AutoPar and DiscoPoP per benchmark suite.

use mvgnn_bench::{pipeline_config, print_row, print_rule, Scale};
use mvgnn_core::{evaluate_tools_with_noise, run_pipeline};

fn main() {
    let scale = Scale::from_args();
    let cfg = pipeline_config(scale);
    eprintln!("[table3] scale {scale:?}: building corpus + training (release build recommended)…");
    let t0 = std::time::Instant::now();
    let (report, ds) = mvgnn_bench::or_die(run_pipeline(&cfg));
    eprintln!(
        "[table3] learned models done in {:.1}s ({} train / {} test samples)",
        t0.elapsed().as_secs_f32(),
        ds.train.len(),
        ds.test.len()
    );
    let tools = evaluate_tools_with_noise(
        &cfg.corpus.seeds,
        &cfg.corpus.opt_levels,
        cfg.corpus.label_noise,
        cfg.corpus.seed,
    );
    eprintln!("[table3] tools done at {:.1}s", t0.elapsed().as_secs_f32());

    println!("\nTable III — evaluation results (accuracy %)\n");
    let w = [18, 14, 8];
    print_row(&["Benchmark".into(), "Model/Tool".into(), "Acc(%)".into()], &w);
    print_rule(&w);
    for group in ["NPB", "PolyBench", "BOTS", "Generated Dataset"] {
        for row in report.table3.iter().filter(|r| r.benchmark == group) {
            print_row(
                &[group.into(), row.model.clone(), format!("{:.1}", row.accuracy)],
                &w,
            );
        }
        for t in tools.iter().filter(|t| t.benchmark == group) {
            print_row(
                &[group.into(), t.tool.into(), format!("{:.1}", t.metrics.accuracy() * 100.0)],
                &w,
            );
        }
        print_rule(&w);
    }
}
