//! Cold-start benchmark: process exec → first classification, eager
//! MVCK v2 versus mapped MVCK-v2 weights.
//!
//! The parent prepares one weight artifact in each format (bit-identical
//! contents) plus a tiny MVSH shard holding the sample to classify, then
//! re-execs itself (`--child <mode>`) so every measurement starts from a
//! genuinely cold process: no warmed allocator, no resident weight
//! pages, no shared state. Each child loads the model its way, maps the
//! shard, classifies the first record, and reports its phase timings on
//! stdout; the parent takes the minimum over repetitions (the
//! steady-state floor, insensitive to scheduler noise) and writes
//! `BENCH_coldstart.json`.
//!
//! `--smoke` is the CI gate: the mapped artifact must load, its
//! installed weights must be `to_bits`-identical to the eager load, and
//! the mapped cold-start floor must not exceed the eager floor — the
//! zero-copy path has strictly less work to do before the first answer
//! (no full-file read, no per-tensor decode-and-copy), so if it is ever
//! slower the mapping layer has regressed.

use mvgnn_core::{
    read_checkpoint, write_checkpoint, write_mapped_checkpoint, Checkpoint, CheckpointMeta,
    EngineConfig, InferenceEngine, MappedCheckpoint, MvGnn, MvGnnConfig,
};
use mvgnn_dataset::{fit_inst2vec, write_shard, CorpusConfig, MappedShardReader, Suite};
use mvgnn_embed::Inst2VecConfig;
use mvgnn_ir::transform::OptLevel;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Repetitions per mode (the minimum is reported).
const FULL_REPS: usize = 9;
const SMOKE_REPS: usize = 5;

fn corpus_cfg() -> CorpusConfig {
    CorpusConfig {
        seeds: vec![1],
        opt_levels: vec![OptLevel::O0],
        per_class: None,
        test_fraction: 0.25,
        suite: Some(Suite::PolyBench),
        inst2vec: Inst2VecConfig { dim: 16, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
        sample: Default::default(),
        seed: 0xc01d,
        label_noise: 0.0,
        static_features: false,
    }
}

/// One child run: load the weights the requested way, classify the first
/// shard record, print `<mode> <load_us> <classify_us> <total_us>`.
fn child(mode: &str, ckpt: &Path, shard: &Path) {
    let t0 = Instant::now();
    // The sample comes first (it fixes the model architecture); the
    // shard rides the same zero-copy reader in both modes so the only
    // difference between children is the weight-loading path.
    let first = mvgnn_bench::or_die(MappedShardReader::open(shard))
        .next()
        .unwrap_or_else(|| {
            eprintln!("fatal: coldstart shard is empty");
            std::process::exit(1);
        });
    let first = mvgnn_bench::or_die(first);
    let mut model =
        MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab));
    match mode {
        "eager" => {
            let cp = mvgnn_bench::or_die(read_checkpoint(ckpt));
            mvgnn_bench::or_die(model.load(&cp.weights));
        }
        "mapped" => {
            let cp = mvgnn_bench::or_die(MappedCheckpoint::open(ckpt));
            mvgnn_bench::or_die(model.load_mapped(&cp));
        }
        other => {
            eprintln!("fatal: unknown child mode {other}");
            std::process::exit(1);
        }
    }
    let loaded = Instant::now();
    let engine = mvgnn_bench::or_die(InferenceEngine::try_new(
        Arc::new(model),
        EngineConfig { threads: 1, batch_size: 1 },
    ));
    let rows = engine.classify_batch(&[&first.sample]);
    let done = Instant::now();
    // Keep the classification observable so nothing is optimised away.
    let p = rows[0].fused.unwrap_or(0);
    println!(
        "{mode} {} {} {} {p}",
        loaded.duration_since(t0).as_micros(),
        done.duration_since(loaded).as_micros(),
        done.duration_since(t0).as_micros(),
    );
}

struct ModeStats {
    load_us: u128,
    classify_us: u128,
    total_us: u128,
    wall_us: u128,
}

/// Spawn `reps` cold children for `mode`; return the per-phase minima.
fn run_mode(exe: &Path, mode: &str, ckpt: &Path, shard: &Path, reps: usize) -> ModeStats {
    let mut best = ModeStats { load_us: u128::MAX, classify_us: u128::MAX, total_us: u128::MAX, wall_us: u128::MAX };
    for _ in 0..reps {
        let t = Instant::now();
        let out = mvgnn_bench::or_die(
            std::process::Command::new(exe)
                .arg("--child")
                .arg(mode)
                .arg(ckpt)
                .arg(shard)
                .output(),
        );
        let wall = t.elapsed().as_micros();
        if !out.status.success() {
            eprintln!("fatal: {mode} child failed: {}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
        let line = String::from_utf8_lossy(&out.stdout);
        let fields: Vec<u128> = line
            .split_whitespace()
            .skip(1)
            .take(3)
            .filter_map(|f| f.parse().ok())
            .collect();
        if fields.len() != 3 {
            eprintln!("fatal: malformed {mode} child output: {line:?}");
            std::process::exit(1);
        }
        best.load_us = best.load_us.min(fields[0]);
        best.classify_us = best.classify_us.min(fields[1]);
        best.total_us = best.total_us.min(fields[2]);
        best.wall_us = best.wall_us.min(wall);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--child" {
        child(&args[2], Path::new(&args[3]), Path::new(&args[4]));
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let reps = if smoke { SMOKE_REPS } else { FULL_REPS };

    let dir = std::env::temp_dir().join("mvgnn_bench_coldstart");
    std::fs::remove_dir_all(&dir).ok();
    mvgnn_bench::or_die(std::fs::create_dir_all(&dir));

    // Fixture: one shard (the classification input) and the same weights
    // in both artifact formats.
    let cfg = corpus_cfg();
    let emb = fit_inst2vec(&cfg);
    let (shard, n) = mvgnn_bench::or_die(write_shard(&dir, &cfg, &emb, 0, 1));
    eprintln!("[coldstart] fixture shard: {n} samples");
    let first = mvgnn_bench::or_die(
        mvgnn_bench::or_die(MappedShardReader::open(&shard)).next().unwrap_or_else(|| {
            eprintln!("fatal: fixture shard is empty");
            std::process::exit(1);
        }),
    );
    let model = MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab));
    let eager_path: PathBuf = dir.join("weights_eager.mvck");
    let mapped_path: PathBuf = dir.join("weights_mapped.mvck");
    let meta = CheckpointMeta { epoch: 0, lr: 1e-3, retries: 0, ..Default::default() };
    mvgnn_bench::or_die(write_checkpoint(
        &eager_path,
        &Checkpoint {
            epoch: 0,
            lr: 1e-3,
            retries: 0,
            calibration: None,
            stats: Vec::new(),
            weights: model.save().to_vec(),
        },
    ));
    mvgnn_bench::or_die(write_mapped_checkpoint(&mapped_path, &meta, &model.params));
    let eager_bytes = std::fs::metadata(&eager_path).map(|m| m.len()).unwrap_or(0);
    let mapped_bytes = std::fs::metadata(&mapped_path).map(|m| m.len()).unwrap_or(0);

    // Parity gate: both load paths must reconstruct bit-identical
    // weights (`save()` snapshots the raw bytes).
    let mut via_eager =
        MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab));
    let cp = mvgnn_bench::or_die(read_checkpoint(&eager_path));
    mvgnn_bench::or_die(via_eager.load(&cp.weights));
    let mut via_mapped =
        MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab));
    let mcp = mvgnn_bench::or_die(MappedCheckpoint::open(&mapped_path));
    if !mcp.is_mapped() {
        eprintln!("[coldstart] note: mmap unavailable on this target, owned-buffer fallback");
    }
    mvgnn_bench::or_die(via_mapped.load_mapped(&mcp));
    if via_eager.save() != via_mapped.save() || via_eager.save() != model.save() {
        eprintln!("FAIL: mapped-loaded weights are not bit-identical to the eager load");
        std::process::exit(1);
    }
    eprintln!("[coldstart] parity: mapped and eager loads are bit-identical");
    drop(mcp);

    let exe = mvgnn_bench::or_die(std::env::current_exe());
    let eager = run_mode(&exe, "eager", &eager_path, &shard, reps);
    let mapped = run_mode(&exe, "mapped", &mapped_path, &shard, reps);
    let speedup = eager.total_us as f64 / mapped.total_us.max(1) as f64;
    eprintln!(
        "[coldstart] eager:  load {}us + classify {}us = {}us (min of {reps})",
        eager.load_us, eager.classify_us, eager.total_us
    );
    eprintln!(
        "[coldstart] mapped: load {}us + classify {}us = {}us (min of {reps})",
        mapped.load_us, mapped.classify_us, mapped.total_us
    );
    eprintln!("[coldstart] exec->first-classification speedup: {speedup:.2}x");

    if smoke {
        if mapped.total_us > eager.total_us {
            eprintln!(
                "FAIL: mapped cold start {}us exceeds eager {}us",
                mapped.total_us, eager.total_us
            );
            std::process::exit(1);
        }
        println!("coldstart smoke OK ({speedup:.2}x)");
        std::fs::remove_dir_all(&dir).ok();
        return;
    }

    let json = format!(
        "{{\n  \"artifact\": {{\"eager_bytes\": {eager_bytes}, \"mapped_bytes\": {mapped_bytes}, \
         \"tensors\": {}}},\n  \
         \"reps\": {reps},\n  \
         \"eager\": {{\"load_us\": {}, \"first_classify_us\": {}, \"exec_to_first_us\": {}, \"wall_us\": {}}},\n  \
         \"mapped\": {{\"load_us\": {}, \"first_classify_us\": {}, \"exec_to_first_us\": {}, \"wall_us\": {}}},\n  \
         \"speedup_exec_to_first\": {speedup:.3},\n  \
         \"parity\": \"to_bits-identical\"\n}}\n",
        mvgnn_bench::or_die(MappedCheckpoint::open(&mapped_path)).tensor_count(),
        eager.load_us, eager.classify_us, eager.total_us, eager.wall_us,
        mapped.load_us, mapped.classify_us, mapped.total_us, mapped.wall_us,
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_coldstart.json", json));
    eprintln!("[coldstart] wrote BENCH_coldstart.json");
    std::fs::remove_dir_all(&dir).ok();
}
