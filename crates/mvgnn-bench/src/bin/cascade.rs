//! Cascade frontier benchmark: accuracy/latency of the tiered
//! classifier over the generated corpus.
//!
//! Sweeps the same seed × optimisation-level population as the `lint`
//! auditor and classifies every application module through four arms:
//!
//! - `pure_gnn` — the historical GNN-only path
//!   ([`CascadeConfig::gnn_only`]), the baseline every other arm is
//!   judged against;
//! - `oracle_gnn` — tier 0 + tier 1: the static oracle short-circuits
//!   provable loops, the calibrated GNN takes the rest;
//! - `full_cascade` — all three tiers: borderline tier-1 verdicts
//!   (calibrated confidence below the band) re-decided by the dynamic
//!   profiler;
//! - `full_cascade_static` — the full cascade against a second model
//!   trained with the oracle's `feature_vec()` broadcast as static node
//!   features (`SampleConfig::static_dim = 10`). Reported for the
//!   frontier, not gated: it is a different model, not a routing change.
//!
//! Per arm: accuracy against the generator's ground-truth patterns,
//! per-tier hit counts, and effective throughput (loops classified per
//! second of end-to-end classification time — profiling, featurisation,
//! and every tier included). The full run trains the models, fits the
//! temperature calibration on the held-out split, writes
//! `BENCH_cascade.json`, and enforces the frontier gates; `--smoke`
//! runs a single seed at `-O0` with untrained models and enforces the
//! routing gates only (tier-0 short-circuit rate > 0, cascade
//! throughput >= pure-GNN throughput), writing nothing.

use mvgnn_bench::or_die;
use mvgnn_core::{
    train, Calibration, Cascade, CascadeConfig, MvGnn, MvGnnConfig, TrainConfig,
};
use mvgnn_dataset::{build_corpus, generate_suite, CorpusConfig, Dataset};
use mvgnn_embed::{GraphSample, Inst2VecConfig, SampleConfig};
use mvgnn_ir::transform::{optimize, OptLevel};
use mvgnn_analyze::OracleReport;
use mvgnn_core::DecidedBy;
use std::collections::HashMap;
use std::time::Instant;

/// One frontier arm: a cascade routing configuration bound to a model.
struct Arm<'a> {
    name: &'static str,
    cascade: Cascade,
    model: &'a MvGnn,
    dataset: &'a Dataset,
    sample_cfg: &'a SampleConfig,
    /// Counted toward the smoke/full gates (the static-featured arm is
    /// frontier-only).
    gated: bool,
}

/// Census of one arm over the full sweep.
struct ArmReport {
    name: &'static str,
    gated: bool,
    loops: usize,
    correct: usize,
    oracle: usize,
    gnn: usize,
    profiler: usize,
    secs: f64,
}

impl ArmReport {
    fn accuracy(&self) -> f64 {
        if self.loops == 0 {
            0.0
        } else {
            self.correct as f64 / self.loops as f64
        }
    }

    fn loops_per_s(&self) -> f64 {
        self.loops as f64 / self.secs.max(1e-9)
    }

    fn tier0_rate(&self) -> f64 {
        if self.loops == 0 {
            0.0
        } else {
            self.oracle as f64 / self.loops as f64
        }
    }
}

/// Classify every module of the sweep through `arm` and tally the
/// census. Loops live in the per-kernel functions (the app entry is a
/// driver with none of its own), so each kernel is classified as its
/// own entry. Only classification time (profiling + tiers) is on the
/// clock; module generation and optimisation are outside it.
fn run_arm(arm: &Arm, seeds: &[u64], levels: &[OptLevel]) -> ArmReport {
    let mut report = ArmReport {
        name: arm.name,
        gated: arm.gated,
        loops: 0,
        correct: 0,
        oracle: 0,
        gnn: 0,
        profiler: 0,
        secs: 0.0,
    };
    for &seed in seeds {
        for app in generate_suite(None, seed) {
            let truth: HashMap<_, _> = app
                .loops
                .iter()
                .map(|&(f, l, pattern)| ((f, l), usize::from(pattern.is_parallelizable())))
                .collect();
            let mut kernels: Vec<_> = app.loops.iter().map(|(f, _, _)| *f).collect();
            kernels.sort_unstable_by_key(|f| f.index());
            kernels.dedup();
            for &level in levels {
                let module = optimize(&app.module, level);
                let t0 = Instant::now();
                let reports: Vec<_> = kernels
                    .iter()
                    .flat_map(|&f| {
                        arm.cascade.classify_module(
                            arm.model,
                            &module,
                            f,
                            &arm.dataset.inst2vec,
                            arm.sample_cfg,
                            None,
                            None,
                        )
                    })
                    .collect();
                report.secs += t0.elapsed().as_secs_f64();
                for r in &reports {
                    let Some(&want) = truth.get(&(r.func, r.l)) else { continue };
                    report.loops += 1;
                    report.correct += usize::from(r.prediction == want);
                    match r.decided_by {
                        DecidedBy::Oracle => report.oracle += 1,
                        DecidedBy::Gnn => report.gnn += 1,
                        DecidedBy::Profiler => report.profiler += 1,
                    }
                }
            }
        }
    }
    report
}

/// Fit the fused-head temperature on the held-out split.
fn fit_calibration(model: &MvGnn, ds: &Dataset) -> Calibration {
    let samples: Vec<&GraphSample> = ds.test.iter().map(|s| &s.sample).collect();
    if samples.is_empty() {
        return Calibration::identity();
    }
    let logits = model.logits_batch(&samples);
    let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();
    Calibration::fit(&logits, &labels)
}

fn corpus_config(smoke: bool, static_features: bool) -> CorpusConfig {
    let (seeds, levels, per_class, dim) = if smoke {
        (vec![1], vec![OptLevel::O0], 40, 16)
    } else {
        (vec![1, 2], OptLevel::ALL.to_vec(), 500, 48)
    };
    CorpusConfig {
        seeds,
        opt_levels: levels,
        per_class: Some(per_class),
        test_fraction: 0.25,
        suite: None,
        inst2vec: Inst2VecConfig {
            dim,
            epochs: if smoke { 1 } else { 3 },
            negatives: 4,
            lr: 0.05,
            seed: 0x1257,
        },
        sample: SampleConfig {
            static_dim: if static_features { OracleReport::FEAT_DIM } else { 0 },
            ..SampleConfig::default()
        },
        seed: 0xca5c,
        label_noise: 0.0,
        static_features,
    }
}

/// Build (and in the full run, train) a model on `cfg`'s corpus.
fn model_for(cfg: &CorpusConfig, smoke: bool) -> (Dataset, MvGnn) {
    let ds = build_corpus(cfg);
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));
    if !smoke {
        let stats = or_die(train(
            &mut model,
            &ds.train,
            &TrainConfig { epochs: 12, seed: 0xca5c, ..TrainConfig::default() },
        ));
        if let Some(last) = stats.last() {
            eprintln!(
                "[cascade] trained static_dim={} model: epoch {} loss {:.4} acc {:.3}",
                cfg.sample.static_dim, last.epoch, last.loss, last.accuracy
            );
        }
    }
    (ds, model)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, levels): (Vec<u64>, Vec<OptLevel>) = if smoke {
        (vec![1], vec![OptLevel::O0])
    } else {
        (vec![1, 2], OptLevel::ALL.to_vec())
    };

    eprintln!("[cascade] building plain corpus…");
    let cfg_plain = corpus_config(smoke, false);
    let (ds_plain, model_plain) = model_for(&cfg_plain, smoke);
    eprintln!("[cascade] building static-featured corpus…");
    let cfg_static = corpus_config(smoke, true);
    let (ds_static, model_static) = model_for(&cfg_static, smoke);
    let calibration = fit_calibration(&model_plain, &ds_plain);
    let calibration_static = fit_calibration(&model_static, &ds_static);
    eprintln!(
        "[cascade] fitted temperatures: plain {:.4}, static {:.4}",
        calibration.temperature, calibration_static.temperature
    );

    let arms = [
        Arm {
            name: "pure_gnn",
            cascade: Cascade::gnn_only(),
            model: &model_plain,
            dataset: &ds_plain,
            sample_cfg: &cfg_plain.sample,
            gated: true,
        },
        Arm {
            name: "oracle_gnn",
            cascade: Cascade::new(CascadeConfig {
                use_oracle: true,
                calibration,
                confidence_threshold: 0.0,
                use_profiler: false,
                static_features: false,
            }),
            model: &model_plain,
            dataset: &ds_plain,
            sample_cfg: &cfg_plain.sample,
            gated: true,
        },
        Arm {
            name: "full_cascade",
            cascade: Cascade::new(CascadeConfig {
                calibration,
                static_features: false,
                ..CascadeConfig::default()
            }),
            model: &model_plain,
            dataset: &ds_plain,
            sample_cfg: &cfg_plain.sample,
            gated: true,
        },
        Arm {
            name: "full_cascade_static",
            cascade: Cascade::new(CascadeConfig {
                calibration: calibration_static,
                ..CascadeConfig::default()
            }),
            model: &model_static,
            dataset: &ds_static,
            sample_cfg: &cfg_static.sample,
            gated: false,
        },
    ];

    let mut reports = Vec::new();
    for arm in &arms {
        eprintln!("[cascade] sweeping arm {}…", arm.name);
        let r = run_arm(arm, &seeds, &levels);
        println!(
            "{:<22} loops {:>6}  acc {:.4}  loops/s {:>9.1}  tiers o/g/p {}/{}/{}",
            r.name,
            r.loops,
            r.accuracy(),
            r.loops_per_s(),
            r.oracle,
            r.gnn,
            r.profiler
        );
        reports.push(r);
    }

    if !smoke {
        let rows: Vec<String> = reports
            .iter()
            .map(|r| {
                format!(
                    "    {{\"arm\": \"{}\", \"gated\": {}, \"loops\": {}, \"accuracy\": {:.4}, \
                     \"secs\": {:.3}, \"loops_per_s\": {:.1}, \"tier0_rate\": {:.4}, \
                     \"decided_by\": {{\"oracle\": {}, \"gnn\": {}, \"profiler\": {}}}}}",
                    r.name,
                    r.gated,
                    r.loops,
                    r.accuracy(),
                    r.secs,
                    r.loops_per_s(),
                    r.tier0_rate(),
                    r.oracle,
                    r.gnn,
                    r.profiler
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"calibration_temperature\": {:.4},\n  \
             \"calibration_temperature_static\": {:.4},\n  \
             \"arms\": [\n{}\n  ]\n}}\n",
            calibration.temperature,
            calibration_static.temperature,
            rows.join(",\n")
        );
        or_die(std::fs::write("BENCH_cascade.json", json));
        eprintln!("[cascade] wrote BENCH_cascade.json");
    }

    // Frontier gates. The smoke run checks routing only (models are
    // untrained); the full run also requires the cascade's accuracy to
    // be no worse than the pure-GNN baseline — tier-0 verdicts are
    // proofs and tier-2 verdicts are evidence-backed, so a regression
    // here means the routing is wrong, not the model.
    let [gnn, oracle_gnn, full, _static_arm] = &reports[..] else {
        eprintln!("GATE FAILED: expected four arms, got {}", reports.len());
        std::process::exit(1);
    };
    let mut failures = Vec::new();
    for r in [oracle_gnn, full] {
        if r.oracle == 0 {
            failures.push(format!("{}: tier-0 short-circuit rate is zero", r.name));
        }
        if r.loops != gnn.loops {
            failures.push(format!(
                "{}: classified {} loops but pure_gnn classified {}",
                r.name, r.loops, gnn.loops
            ));
        }
        if r.loops_per_s() < gnn.loops_per_s() {
            failures.push(format!(
                "{}: {:.1} loops/s is below the pure-GNN baseline {:.1}",
                r.name,
                r.loops_per_s(),
                gnn.loops_per_s()
            ));
        }
    }
    if !smoke {
        for r in [oracle_gnn, full] {
            if r.accuracy() < gnn.accuracy() {
                failures.push(format!(
                    "{}: accuracy {:.4} is below the pure-GNN baseline {:.4}",
                    r.name,
                    r.accuracy(),
                    gnn.accuracy()
                ));
            }
        }
    }
    for f in &failures {
        eprintln!("GATE FAILED: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
