//! Regenerates Table II: the number of for-loops per application, with
//! the generated ground-truth composition as extra columns.

use mvgnn_bench::{print_row, print_rule};
use mvgnn_dataset::{generate_app, PatternKind, TABLE2};

fn main() {
    println!("Table II — statistics of evaluated datasets (generated suites)\n");
    let w = [12, 11, 8, 8, 6, 6, 6];
    print_row(
        &[
            "Application".into(),
            "Benchmark".into(),
            "Loops #".into(),
            "paper".into(),
            "DoAll".into(),
            "Red.".into(),
            "Serial".into(),
        ],
        &w,
    );
    print_rule(&w);
    let mut total = 0usize;
    for spec in TABLE2 {
        let app = generate_app(spec, 1);
        let count = |p: PatternKind| app.loops.iter().filter(|(_, _, q)| *q == p).count();
        let doall = count(PatternKind::DoAll) + count(PatternKind::Task);
        total += app.loops.len();
        print_row(
            &[
                spec.name.into(),
                spec.suite.to_string(),
                app.loops.len().to_string(),
                spec.loops.to_string(),
                doall.to_string(),
                count(PatternKind::Reduction).to_string(),
                count(PatternKind::Serial).to_string(),
            ],
            &w,
        );
        assert_eq!(app.loops.len(), spec.loops, "loop count must match the paper");
    }
    print_rule(&w);
    print_row(
        &["Total".into(), String::new(), total.to_string(), "840".into(), String::new(), String::new(), String::new()],
        &w,
    );
    assert_eq!(total, 840);
}
