//! Regenerates Table IV: per-NPB-app loops vs loops the trained MV-GNN
//! identifies as parallelisable.

use mvgnn_bench::{pipeline_config, print_row, print_rule, Scale};
use mvgnn_core::run_pipeline;

fn main() {
    let scale = Scale::from_args();
    let cfg = pipeline_config(scale);
    eprintln!("[table4] training MV-GNN ({scale:?})…");
    let (report, _ds) = mvgnn_bench::or_die(run_pipeline(&cfg));

    println!("\nTable IV — statistics of NPB dataset test\n");
    let w = [10, 10, 26, 22];
    print_row(
        &[
            "Benchmark".into(),
            "Loops (#)".into(),
            "Identified Parallelizable (#)".into(),
            "Ground truth parallel (#)".into(),
        ],
        &w,
    );
    print_rule(&w);
    let (mut tl, mut ti, mut tg) = (0usize, 0usize, 0usize);
    for row in &report.table4 {
        print_row(
            &[
                row.app.clone(),
                row.loops.to_string(),
                row.identified.to_string(),
                row.ground_truth.to_string(),
            ],
            &w,
        );
        tl += row.loops;
        ti += row.identified;
        tg += row.ground_truth;
    }
    print_rule(&w);
    print_row(
        &["Total".into(), tl.to_string(), ti.to_string(), tg.to_string()],
        &w,
    );
}
