//! Diagnostic: embedding magnitudes entering the fusion tanh, plus
//! train-vs-test accuracy of each head. Not part of the paper tables.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::model::{MvGnn, MvGnnConfig};
use mvgnn_core::trainer::{evaluate, train};
use mvgnn_dataset::build_corpus;
use mvgnn_tensor::tape::Tape;

/// Parse an override from the environment, exiting with a usable message
/// on garbage instead of panicking.
fn env_override<T: std::str::FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("fatal: {name}={raw:?} does not parse");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut cfg = pipeline_config(Scale::Default);
    if let Some(lr) = env_override("DIAG_LR") {
        cfg.train.lr = lr;
    }
    if let Some(e) = env_override("DIAG_EPOCHS") {
        cfg.train.epochs = e;
    }
    if let Some(c) = env_override("DIAG_CLIP") {
        cfg.train.clip = c;
    }
    if let Some(b) = env_override("DIAG_BATCH") {
        cfg.train.batch_size = b;
    }
    if let Some(a) = env_override("DIAG_AUX") {
        cfg.train.aux_weight = a;
    }
    eprintln!("lr {} epochs {} clip {} batch {} aux {}", cfg.train.lr, cfg.train.epochs, cfg.train.clip, cfg.train.batch_size, cfg.train.aux_weight);
    let ds = build_corpus(&cfg.corpus);
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(MvGnnConfig::small(probe.node_dim, probe.aw_vocab));

    // Pre-training magnitude of the view embeddings.
    let mags = |model: &MvGnn, n: usize| {
        let mut max_abs = 0.0f32;
        let mut mean_abs = 0.0f32;
        let mut count = 0usize;
        for s in ds.train.iter().take(n) {
            let batch = mvgnn_embed::GraphBatch::single(&s.sample);
            let mut tape = Tape::new(&model.params);
            let fwd = model.forward_on(&mut tape, &batch);
            // The concat input to fusion is the last tanh's input; easiest
            // proxy: check the logits magnitude and loop over node data.
            for v in [fwd.node_logits, fwd.struct_logits].into_iter().flatten() {
                for &x in tape.data(v) {
                    max_abs = max_abs.max(x.abs());
                    mean_abs += x.abs();
                    count += 1;
                }
            }
        }
        (max_abs, mean_abs / count as f32)
    };
    let (mx, mn) = mags(&model, 32);
    println!("pre-train view-logit magnitude: max {mx:.2} mean {mn:.2}");

    let stats = mvgnn_bench::or_die(train(&mut model, &ds.train, &cfg.train));
    for e in stats.iter().step_by(5) {
        println!("epoch {:>3} loss {:.4} train-acc {:.3}", e.epoch, e.loss, e.accuracy);
    }
    if let Some(last) = stats.last() {
        println!("final train acc {:.3}", last.accuracy);
    }
    let m = evaluate(&model, &ds.test);
    println!("test: {m}");
    // Per-(suite, pattern) error census on the evaluation pool.
    let mut per: std::collections::BTreeMap<(String, String, usize), (usize, usize)> =
        std::collections::BTreeMap::new();
    for s in &ds.test_full {
        let pred = model.predict(&s.sample);
        let e = per
            .entry((format!("{:?}", s.suite), format!("{:?}", s.pattern), s.label))
            .or_insert((0, 0));
        e.1 += 1;
        if pred != s.label {
            e.0 += 1;
        }
    }
    for ((suite, pat, label), (err, tot)) in per {
        if err > 0 {
            println!(
                "test_full {suite:<10} {pat:<12} label {label}: {err:>3}/{tot:<4} wrong ({:.0}%)",
                100.0 * err as f64 / tot as f64
            );
        }
    }
    // Name the failing reduction loops by generator function.
    let mut wrong_funcs: std::collections::BTreeMap<String, usize> = Default::default();
    for s in &ds.test_full {
        if format!("{:?}", s.pattern) == "Reduction" && s.label == 1 {
            let pred = model.predict(&s.sample);
            if pred != s.label {
                // Reconstruct the generator function name from the app.
                *wrong_funcs
                    .entry(format!("{} f{} l{} n={}", s.app, s.sample.func.0, s.sample.l.0, s.sample.n))
                    .or_default() += 1;
            }
        }
    }
    for (k, v) in wrong_funcs {
        println!("wrong reduction: {k} ×{v}");
    }
    let (mx, mn) = mags(&model, 32);
    println!("post-train view-logit magnitude: max {mx:.2} mean {mn:.2}");
}
