//! Regenerates Fig. 7: training loss and accuracy curves, printed as
//! aligned series plus ASCII sparklines.

use mvgnn_bench::{pipeline_config, Scale};
use mvgnn_core::run_pipeline;

fn spark(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = values
        .iter()
        .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let cfg = pipeline_config(scale);
    eprintln!("[fig7] training MV-GNN ({scale:?})…");
    let (report, _) = mvgnn_bench::or_die(run_pipeline(&cfg));

    println!("\nFig. 7 — loss (above) and accuracy (below) of the training process\n");
    println!("epoch  loss      accuracy");
    for e in &report.fig7 {
        println!("{:>5}  {:<8.4}  {:.3}", e.epoch, e.loss, e.accuracy);
    }
    let losses: Vec<f32> = report.fig7.iter().map(|e| e.loss).collect();
    let accs: Vec<f32> = report.fig7.iter().map(|e| e.accuracy).collect();
    println!("\nloss     {}", spark(&losses));
    println!("accuracy {}", spark(&accs));
}
