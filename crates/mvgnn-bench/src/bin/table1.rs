//! Regenerates Table I: the dynamic feature definitions, demonstrated
//! live on a DOALL loop and a serial recurrence.

use mvgnn_bench::{print_row, print_rule};
use mvgnn_ir::inst::BinOp;
use mvgnn_ir::types::Ty;
use mvgnn_ir::{FunctionBuilder, Module};
use mvgnn_profiler::{loop_features, profile_module};

fn main() {
    let mut m = Module::new("table1");
    let a = m.add_array("a", Ty::F64, 64);
    let out = m.add_array("b", Ty::F64, 64);
    let mut b = FunctionBuilder::new(&mut m, "doall", 0);
    let lo = b.const_i64(0);
    let hi = b.const_i64(64);
    let st = b.const_i64(1);
    let l_doall = b.for_loop(lo, hi, st, |b, iv| {
        let x = b.load(a, iv);
        let y = b.bin(BinOp::Mul, x, x);
        b.store(out, iv, y);
    });
    let f_doall = b.finish();

    let c = m.add_array("c", Ty::F64, 64);
    let mut b = FunctionBuilder::new(&mut m, "serial", 0);
    let lo = b.const_i64(1);
    let hi = b.const_i64(64);
    let st = b.const_i64(1);
    let one = b.const_i64(1);
    let l_serial = b.for_loop(lo, hi, st, |b, iv| {
        let p = b.bin(BinOp::Sub, iv, one);
        let x = b.load(c, p);
        let y = b.bin(BinOp::Add, x, x);
        b.store(c, iv, y);
    });
    let f_serial = b.finish();

    let rd = mvgnn_bench::or_die(profile_module(&m, f_doall, &[]));
    let rs = mvgnn_bench::or_die(profile_module(&m, f_serial, &[]));
    let fd = loop_features(&m, f_doall, l_doall, &rd.deps, &rd.loops[&(f_doall, l_doall)]);
    let fs = loop_features(&m, f_serial, l_serial, &rs.deps, &rs.loops[&(f_serial, l_serial)]);

    println!("Table I — dynamic features used for loop parallelization classification\n");
    let w = [14, 52, 12, 12];
    print_row(
        &["feature".into(), "description".into(), "DOALL".into(), "serial".into()],
        &w,
    );
    print_rule(&w);
    let rows: [(&str, &str, String, String); 7] = [
        ("N_Inst", "Number of instructions within the loop", fd.n_inst.to_string(), fs.n_inst.to_string()),
        ("exec_times", "Total number of times the loop is executed", fd.exec_times.to_string(), fs.exec_times.to_string()),
        ("CFL", "Critical path length", fd.cfl.to_string(), fs.cfl.to_string()),
        ("ESP", "Estimated speedup", format!("{:.1}", fd.esp), format!("{:.1}", fs.esp)),
        ("incoming_dep", "Incoming dependency count", fd.incoming_dep.to_string(), fs.incoming_dep.to_string()),
        ("internal_dep", "Dependency count between loop instructions", fd.internal_dep.to_string(), fs.internal_dep.to_string()),
        ("outgoing_dep", "Outgoing dependency count", fd.outgoing_dep.to_string(), fs.outgoing_dep.to_string()),
    ];
    for (name, desc, dv, sv) in rows {
        print_row(&[name.into(), desc.into(), dv, sv], &w);
    }
}
