//! Sharded-corpus pipeline benchmark: generation throughput of the
//! deterministic shard writer, the streaming trainer's resident-set
//! ceiling versus materialising the same corpus in memory, and a
//! ≥100k-loop end-to-end run (20 seeds × 840 Table II loops × 6
//! optimisation variants = 100 800 samples) streamed from disk. The full
//! run writes `BENCH_corpus.json` at the repo root and also measures the
//! accuracy-vs-corpus-size scaling curve reported in `EXPERIMENTS.md`.
//!
//! `--smoke` is the CI gate: write a tiny corpus as two shards, assert
//! the shard union is bit-identical to the single-process build
//! (`to_bits` on every float), stream one training epoch through the
//! bounded prefetch ring, and assert the epoch's resident-set growth
//! stays under a fixed budget. Exits non-zero on any violation; writes
//! nothing.
//!
//! RSS is read from `/proc/self/status` (`VmRSS`), with a sampler thread
//! tracking the peak *within* a phase — `VmHWM` is process-lifetime
//! monotone, so it cannot attribute a peak to the streaming phase once
//! generation has run in the same process.

use mvgnn_core::trainer::evaluate;
use mvgnn_core::{train_streaming, MvGnn, MvGnnConfig, StreamConfig, TrainConfig};
use mvgnn_dataset::{
    build_corpus, fit_inst2vec, generate_shard, load_inst2vec, save_inst2vec, write_shard,
    write_shard_resumable, CorpusConfig, LabeledSample, ShardReader, Suite,
};
use mvgnn_embed::{Inst2Vec, Inst2VecConfig};
use mvgnn_ir::transform::OptLevel;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Streaming-epoch resident-set growth budget for the smoke gate, bytes.
/// The tiny smoke corpus streams through a `(prefetch + 2) × batch`
/// sample window plus the model and per-thread gradient workspaces, all
/// of which sit far below this; the budget catches a regression that
/// materialises whole shards (or the whole corpus) inside the trainer.
const SMOKE_RSS_BUDGET: u64 = 192 * 1024 * 1024;

/// Shard fan-out for the full run (generation and streaming).
const FULL_SHARDS: usize = 8;

/// Corpus sizes (in generator seeds) swept for the scaling curve.
const SCALING_SEEDS: [usize; 4] = [1, 2, 4, 8];

/// Current resident set in bytes, from `/proc/self/status`.
fn vm_rss() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0, // non-procfs platform: benchmark-only path
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Peak `VmRSS` observed while `f` runs, sampled every few milliseconds
/// from a helper thread (plus one sample before and after, so short
/// phases are never missed entirely).
fn peak_rss_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicU64::new(vm_rss()));
    let sampler = {
        let (stop, peak) = (Arc::clone(&stop), Arc::clone(&peak));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(vm_rss(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    let out = f();
    stop.store(true, Ordering::Relaxed);
    sampler.join().ok();
    peak.fetch_max(vm_rss(), Ordering::Relaxed);
    (out, peak.load(Ordering::Relaxed))
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Everything float-bearing in a sample, as bits (parity checks).
fn fingerprint(s: &LabeledSample) -> (u64, OptLevel, usize, Vec<u32>, Vec<u32>, Vec<usize>) {
    (
        s.base_key,
        s.level,
        s.label,
        s.sample.node_feats.iter().map(|x| x.to_bits()).collect(),
        s.sample.struct_dists.iter().map(|x| x.to_bits()).collect(),
        s.sample.token_ids.clone(),
    )
}

fn corpus_cfg(seeds: Vec<u64>, levels: Vec<OptLevel>, i2v_dim: usize, noise: f64) -> CorpusConfig {
    CorpusConfig {
        seeds,
        opt_levels: levels,
        per_class: None,
        test_fraction: 0.25,
        suite: None,
        inst2vec: Inst2VecConfig { dim: i2v_dim, epochs: 1, negatives: 4, lr: 0.05, seed: 0x1257 },
        sample: Default::default(),
        seed: 0xda7a,
        label_noise: noise,
        static_features: false,
    }
}

/// Write every shard of `cfg` under `dir`, returning the paths and the
/// total sample count. Shards are written one after another — each
/// `write_shard` call is internally data-parallel already. With
/// `resume`, shards already on disk that verify (header identity +
/// every record checksum) are skipped instead of regenerated, so a
/// crashed generation run restarts from where it died.
fn write_all_shards(
    dir: &Path,
    cfg: &CorpusConfig,
    emb: &Inst2Vec,
    num_shards: usize,
    resume: bool,
) -> (Vec<PathBuf>, usize, usize) {
    let mut paths = Vec::with_capacity(num_shards);
    let mut total = 0usize;
    let mut reused = 0usize;
    for s in 0..num_shards {
        let (path, n) = if resume {
            let (path, n, skipped) =
                mvgnn_bench::or_die(write_shard_resumable(dir, cfg, emb, s, num_shards));
            reused += skipped as usize;
            (path, n)
        } else {
            mvgnn_bench::or_die(write_shard(dir, cfg, emb, s, num_shards))
        };
        total += n;
        paths.push(path);
    }
    (paths, total, reused)
}

fn read_all(shards: &[PathBuf]) -> Vec<LabeledSample> {
    let mut all = Vec::new();
    for p in shards {
        for rec in mvgnn_bench::or_die(ShardReader::open(p)) {
            all.push(mvgnn_bench::or_die(rec));
        }
    }
    all
}

fn disk_bytes(shards: &[PathBuf]) -> u64 {
    shards
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum()
}

fn model_for(shards: &[PathBuf]) -> MvGnn {
    let first = mvgnn_bench::or_die(
        mvgnn_bench::or_die(ShardReader::open(&shards[0]))
            .next()
            .unwrap_or_else(|| {
                eprintln!("fatal: first shard is empty");
                std::process::exit(1);
            }),
    );
    MvGnn::new(MvGnnConfig::small(first.sample.node_dim, first.sample.aw_vocab))
}

/// CI gate: shard-union parity plus a bounded-RSS streaming epoch over a
/// seconds-scale corpus. Prints what it checked; exits non-zero on any
/// violation.
fn smoke() {
    let dir = std::env::temp_dir().join("mvgnn_bench_corpus_smoke");
    std::fs::remove_dir_all(&dir).ok();
    mvgnn_bench::or_die(std::fs::create_dir_all(&dir));

    let mut cfg = corpus_cfg(vec![1, 2], vec![OptLevel::O0, OptLevel::O2], 8, 0.0);
    cfg.suite = Some(Suite::PolyBench);
    cfg.inst2vec.negatives = 2;
    cfg.inst2vec.seed = 3;

    // Shard-union parity: two worker shards must reproduce the
    // single-process build bit for bit (labels are noise-free here, so
    // the on-disk samples compare directly against the generator).
    let emb = fit_inst2vec(&cfg);
    mvgnn_bench::or_die(save_inst2vec(&dir.join("inst2vec.bin"), &emb));
    let emb = mvgnn_bench::or_die(load_inst2vec(&dir.join("inst2vec.bin")));
    let mono = generate_shard(&cfg, &emb, 0, 1);
    let (shards, written, _) = write_all_shards(&dir, &cfg, &emb, 2, false);
    // Resume over intact shards must be a pure skip: same paths, same
    // counts, nothing rewritten.
    let (reshards, rewritten, reskipped) = write_all_shards(&dir, &cfg, &emb, 2, true);
    if reshards != shards || rewritten != written || reskipped != 2 {
        eprintln!("FAIL: --resume regenerated verified shards (skipped {reskipped}/2)");
        std::process::exit(1);
    }
    let mut union = read_all(&shards);
    union.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));
    if union.len() != mono.len() || written != mono.len() {
        eprintln!(
            "FAIL: shard union has {} samples, single-process build has {}",
            union.len(),
            mono.len()
        );
        std::process::exit(1);
    }
    for (a, b) in union.iter().zip(&mono) {
        if fingerprint(a) != fingerprint(b) {
            eprintln!("FAIL: shard union diverges from single-process build at key {:#x}", a.base_key);
            std::process::exit(1);
        }
    }
    println!("parity:    2-shard union bit-identical to single-process build ({} samples)", mono.len());
    println!("resume:    rerun skipped both verified shards");

    // Bounded-RSS streaming epoch through the prefetch ring.
    let mut model = model_for(&shards);
    let train = TrainConfig { epochs: 1, batch_size: 8, ..Default::default() };
    let before = vm_rss();
    let (res, peak) = peak_rss_during(|| {
        train_streaming(&mut model, &shards, &train, &StreamConfig { prefetch: 2, ..Default::default() })
    });
    let stats = mvgnn_bench::or_die(res);
    let grew = peak.saturating_sub(before);
    println!(
        "streaming: 1 epoch over {} samples, loss {:.4}, RSS +{:.1} MiB (budget {:.0} MiB)",
        mono.len(),
        stats[0].loss,
        mib(grew),
        mib(SMOKE_RSS_BUDGET)
    );
    if grew > SMOKE_RSS_BUDGET {
        eprintln!("FAIL: streaming epoch grew RSS by {:.1} MiB, budget {:.1} MiB", mib(grew), mib(SMOKE_RSS_BUDGET));
        std::process::exit(1);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("corpus smoke OK");
}

/// One point of the scaling curve: stream-train on `n_seeds` worth of
/// corpus, evaluate on a fixed held-out corpus from disjoint seeds.
fn scaling_point(dir: &Path, n_seeds: usize, test: &[LabeledSample]) -> (usize, f64) {
    let cfg = corpus_cfg(
        (1..=n_seeds as u64).collect(),
        vec![OptLevel::O0, OptLevel::O3],
        16,
        0.03,
    );
    let sub = dir.join(format!("scale_{n_seeds}"));
    mvgnn_bench::or_die(std::fs::create_dir_all(&sub));
    let emb = fit_inst2vec(&cfg);
    let (shards, total, _) = write_all_shards(&sub, &cfg, &emb, 2, false);
    let mut model = model_for(&shards);
    let train = TrainConfig { epochs: 10, batch_size: 32, ..Default::default() };
    mvgnn_bench::or_die(train_streaming(&mut model, &shards, &train, &StreamConfig::default()));
    let m = evaluate(&model, test);
    std::fs::remove_dir_all(&sub).ok();
    (total, m.accuracy())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");

    let dir = std::env::temp_dir().join("mvgnn_bench_corpus_full");
    if !resume {
        std::fs::remove_dir_all(&dir).ok();
    }
    mvgnn_bench::or_die(std::fs::create_dir_all(&dir));

    // ≥100k-loop corpus: 20 seeds × 840 Table II loops × 6 optimisation
    // variants = 100 800 samples (--quick: 2 seeds, for iteration).
    let seeds: Vec<u64> = if quick { vec![1, 2] } else { (1..=20).collect() };
    let cfg = corpus_cfg(seeds, OptLevel::ALL.to_vec(), 32, 0.03);

    eprintln!("[corpus] fitting inst2vec over {} seeds…", cfg.seeds.len());
    let t = Instant::now();
    let emb = fit_inst2vec(&cfg);
    mvgnn_bench::or_die(save_inst2vec(&dir.join("inst2vec.bin"), &emb));
    let emb = mvgnn_bench::or_die(load_inst2vec(&dir.join("inst2vec.bin")));
    let inst2vec_secs = t.elapsed().as_secs_f64();
    eprintln!("[corpus] inst2vec fit + artifact round-trip: {inst2vec_secs:.1}s");

    eprintln!("[corpus] generating {FULL_SHARDS} shards{}…", if resume { " (resume)" } else { "" });
    let t = Instant::now();
    let (shards, total, reused) = write_all_shards(&dir, &cfg, &emb, FULL_SHARDS, resume);
    if reused > 0 {
        eprintln!("[corpus] resume skipped {reused}/{FULL_SHARDS} verified shards");
    }
    let gen_secs = t.elapsed().as_secs_f64();
    let bytes = disk_bytes(&shards);
    let gen_rate = total as f64 / gen_secs;
    eprintln!(
        "[corpus] {total} samples in {gen_secs:.1}s ({gen_rate:.0} samples/s), {:.1} MiB on disk",
        mib(bytes)
    );
    if !quick && total < 100_000 {
        eprintln!("FAIL: expected a >=100k-loop corpus, generated {total}");
        std::process::exit(1);
    }

    // Streaming epoch: peak RSS attributable to the phase itself.
    eprintln!("[corpus] streaming one training epoch…");
    let mut model = model_for(&shards);
    let train = TrainConfig { epochs: 1, batch_size: 16, ..Default::default() };
    let stream_before = vm_rss();
    let t = Instant::now();
    let (res, stream_peak) = peak_rss_during(|| {
        train_streaming(&mut model, &shards, &train, &StreamConfig::default())
    });
    let stream_secs = t.elapsed().as_secs_f64();
    let stats = mvgnn_bench::or_die(res);
    let stream_grew = stream_peak.saturating_sub(stream_before);
    eprintln!(
        "[corpus] epoch done in {stream_secs:.1}s, loss {:.4}, acc {:.3}, RSS +{:.1} MiB",
        stats[0].loss,
        stats[0].accuracy,
        mib(stream_grew)
    );

    // In-memory baseline: materialise every shard the way a
    // single-process `build_corpus` would hold it.
    eprintln!("[corpus] materialising the corpus in memory for comparison…");
    let inmem_before = vm_rss();
    let all = read_all(&shards);
    let inmem_after = vm_rss();
    let inmem_grew = inmem_after.saturating_sub(inmem_before);
    let n_loaded = all.len();
    drop(all);
    eprintln!("[corpus] {n_loaded} samples resident: +{:.1} MiB", mib(inmem_grew));
    if stream_grew * 2 > inmem_grew {
        eprintln!(
            "FAIL: streaming RSS growth {:.1} MiB is not well under the in-memory {:.1} MiB",
            mib(stream_grew),
            mib(inmem_grew)
        );
        std::process::exit(1);
    }

    // Accuracy-vs-corpus-size scaling curve (fixed held-out test set
    // from seeds the training corpora never touch).
    eprintln!("[corpus] scaling curve over {SCALING_SEEDS:?} seeds…");
    let mut eval_cfg = corpus_cfg(vec![98, 99], vec![OptLevel::O0, OptLevel::O3], 16, 0.0);
    eval_cfg.per_class = Some(400);
    let test = build_corpus(&eval_cfg).test;
    let mut scaling: Vec<(usize, usize, f64)> = Vec::new();
    for &n in &SCALING_SEEDS {
        let t = Instant::now();
        let (samples, acc) = scaling_point(&dir, n, &test);
        eprintln!(
            "[corpus]   {n} seed(s): {samples} samples -> test accuracy {acc:.3} ({:.0}s)",
            t.elapsed().as_secs_f64()
        );
        scaling.push((n, samples, acc));
    }

    let scaling_rows: Vec<String> = scaling
        .iter()
        .map(|(n, samples, acc)| {
            format!("    {{\"seeds\": {n}, \"samples\": {samples}, \"test_accuracy\": {acc:.4}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"corpus\": {{\"seeds\": {}, \"shards\": {FULL_SHARDS}, \"samples\": {total}, \
         \"disk_mib\": {:.1}}},\n  \
         \"generation\": {{\"inst2vec_secs\": {inst2vec_secs:.1}, \"shard_secs\": {gen_secs:.1}, \
         \"samples_per_sec\": {gen_rate:.1}}},\n  \
         \"streaming_epoch\": {{\"secs\": {stream_secs:.1}, \"loss\": {:.4}, \
         \"accuracy\": {:.4}, \"rss_growth_mib\": {:.1}}},\n  \
         \"in_memory_rss_mib\": {:.1},\n  \
         \"rss_ratio\": {:.4},\n  \
         \"scaling\": [\n{}\n  ]\n}}\n",
        cfg.seeds.len(),
        mib(bytes),
        stats[0].loss,
        stats[0].accuracy,
        mib(stream_grew),
        mib(inmem_grew),
        stream_grew as f64 / inmem_grew.max(1) as f64,
        scaling_rows.join(",\n"),
    );
    mvgnn_bench::or_die(std::fs::write("BENCH_corpus.json", json));
    eprintln!("[corpus] wrote BENCH_corpus.json");
    std::fs::remove_dir_all(&dir).ok();
}
