//! Per-family pattern benchmark: the parallelization planner and the
//! GNN pattern head, stressed on the adversarial kernel families.
//!
//! The corpus is the opt-in `Stress` suite — indirect gather/scatter,
//! pointer chasing, triangular/skewed iteration spaces, and carried
//! dependences at distance > 1, plus a regular slice for label balance.
//! A 4-class pattern model is trained on it (noise-free, like the
//! pattern-head diagnostics), then a held-out seed is evaluated three
//! ways per [`mvgnn_dataset::KernelFamily`]:
//!
//! - **planner coverage** — how many loops the planner *proves* a plan
//!   for, and whether any proved plan contradicts the generator's
//!   ground truth (the lint auditor's rule C; always fatal here);
//! - **raw GNN accuracy** — [`mvgnn_core::predict_pattern`] alone;
//! - **checked accuracy** — [`mvgnn_core::predict_pattern_checked`],
//!   where a proved plan overrides the head; override wins/losses are
//!   counted separately.
//!
//! The full run writes `BENCH_patterns.json`; `--smoke` trains a
//! seconds-scale model, gates on planner coverage > 0 for every family
//! and zero rule-C contradictions, and writes nothing (the CI wiring).

use mvgnn_core::model::MvGnn;
use mvgnn_core::patterns::pattern_model_config;
use mvgnn_core::{predict_pattern, predict_pattern_checked, train_patterns, TrainConfig};
use mvgnn_dataset::{
    build_corpus, generate_app, CorpusConfig, KernelFamily, Suite, STRESS,
};
use mvgnn_embed::{build_sample, Inst2VecConfig};
use mvgnn_ir::transform::{optimize, OptLevel};
use mvgnn_peg::{build_peg, loop_subpeg};
use mvgnn_profiler::{build_cus, loop_features, profile_module};

/// Per-family tallies over the held-out evaluation seed.
#[derive(Debug, Default, Clone)]
struct FamilyStats {
    loops: usize,
    plans_proved: usize,
    /// Proved plans whose binary claim contradicts the clean truth —
    /// rule C of the lint auditor, always fatal here.
    plan_contradictions: usize,
    gnn_raw_correct: usize,
    gnn_checked_correct: usize,
    overrides: usize,
    /// Overrides where the proof fixed a head misprediction.
    override_wins: usize,
    /// Overrides where the proof replaced a correct head prediction
    /// with a different pattern (possible only at pattern granularity).
    override_losses: usize,
}

impl FamilyStats {
    fn coverage(&self) -> f64 {
        if self.loops == 0 { 0.0 } else { self.plans_proved as f64 / self.loops as f64 }
    }

    fn acc(&self, correct: usize) -> f64 {
        if self.loops == 0 { 0.0 } else { correct as f64 / self.loops as f64 }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_seeds, eval_seed, epochs): (Vec<u64>, u64, usize) =
        if smoke { (vec![1], 2, 6) } else { (vec![1, 2], 3, 30) };

    // Train the 4-class head on the stress corpus, noise-free (pattern
    // identification is a diagnostic task, not the noisy benchmark).
    let cfg = CorpusConfig {
        seeds: train_seeds,
        opt_levels: if smoke { vec![OptLevel::O0] } else { vec![OptLevel::O0, OptLevel::O2] },
        per_class: None,
        test_fraction: 0.25,
        suite: Some(Suite::Stress),
        inst2vec: Inst2VecConfig {
            dim: if smoke { 12 } else { 32 },
            epochs: 1,
            negatives: 2,
            lr: 0.05,
            seed: 0x57e5,
        },
        sample: Default::default(),
        seed: 0x57e5,
        label_noise: 0.0,
        static_features: false,
    };
    let ds = build_corpus(&cfg);
    assert!(!ds.train.is_empty(), "stress corpus must not be empty");
    let probe = &ds.train[0].sample;
    let mut model = MvGnn::new(pattern_model_config(probe.node_dim, probe.aw_vocab));
    let curve = train_patterns(
        &mut model,
        &ds.train,
        &TrainConfig { epochs, batch_size: 16, ..Default::default() },
    );
    println!(
        "trained 4-class head on {} stress samples ({} epochs, loss {:.3} -> {:.3})",
        ds.train.len(),
        epochs,
        curve.first().copied().unwrap_or(0.0),
        curve.last().copied().unwrap_or(0.0),
    );

    // Evaluate on a held-out generation seed, where the module context
    // needed by the planner is still in hand.
    let mut stats: Vec<(KernelFamily, FamilyStats)> =
        KernelFamily::ALL.iter().map(|&f| (f, FamilyStats::default())).collect();
    for spec in STRESS {
        let app = generate_app(spec, eval_seed);
        let module = optimize(&app.module, OptLevel::O0);
        let res = mvgnn_bench::or_die(profile_module(&module, app.entry, &[]));
        let cus = build_cus(&module);
        let peg = build_peg(&module, &cus, &res.deps);
        for (i, &(f, l, pattern)) in app.loops.iter().enumerate() {
            let Some(runtime) = res.loops.get(&(f, l)) else { continue };
            let feats = loop_features(&module, f, l, &res.deps, runtime);
            let sub = loop_subpeg(&peg, &module, &cus, f, l);
            let sample = build_sample(&sub, &ds.inst2vec, &feats, &cfg.sample, None);
            let checked = predict_pattern_checked(&model, &sample, &module, f, l);
            let raw = predict_pattern(&model, &sample);
            debug_assert_eq!(raw, checked.raw);

            let family = app.loop_kinds[i].family();
            // `stats` enumerates `KernelFamily::ALL`, so the lookup
            // always succeeds; skip (never panic) if that ever changes.
            let Some((_, s)) = stats.iter_mut().find(|(fam, _)| *fam == family) else {
                continue;
            };
            s.loops += 1;
            let truth = usize::from(pattern.is_parallelizable());
            if let Some(pb) = checked.plan.proved_binary() {
                s.plans_proved += 1;
                if pb != truth && !app.loop_kinds[i].trace_limited() {
                    s.plan_contradictions += 1;
                    eprintln!(
                        "RULE-C: {} seed {eval_seed} {:?} f{}:l{}: proved `{}` \
                         contradicts truth {truth} (pattern {pattern:?})",
                        spec.name, app.loop_kinds[i], f.0, l.0, checked.plan.pragma
                    );
                }
            }
            s.gnn_raw_correct += usize::from(checked.raw == pattern);
            s.gnn_checked_correct += usize::from(checked.pattern == pattern);
            if checked.overridden {
                s.overrides += 1;
                s.override_wins +=
                    usize::from(checked.pattern == pattern && checked.raw != pattern);
                s.override_losses +=
                    usize::from(checked.raw == pattern && checked.pattern != pattern);
            }
        }
    }

    let widths = [14usize, 6, 7, 9, 8, 8, 10, 5, 5];
    mvgnn_bench::print_row(
        &["family", "loops", "proved", "coverage", "raw-acc", "chk-acc", "overrides", "wins",
          "loss"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        &widths,
    );
    mvgnn_bench::print_rule(&widths);
    for (fam, s) in &stats {
        mvgnn_bench::print_row(
            &[
                fam.as_str().to_string(),
                s.loops.to_string(),
                s.plans_proved.to_string(),
                format!("{:.2}", s.coverage()),
                format!("{:.2}", s.acc(s.gnn_raw_correct)),
                format!("{:.2}", s.acc(s.gnn_checked_correct)),
                s.overrides.to_string(),
                s.override_wins.to_string(),
                s.override_losses.to_string(),
            ],
            &widths,
        );
    }
    let contradictions: usize = stats.iter().map(|(_, s)| s.plan_contradictions).sum();
    println!("rule-C contradictions: {contradictions}");

    if !smoke {
        let rows: Vec<String> = stats
            .iter()
            .map(|(fam, s)| {
                format!(
                    "    {{\"family\": \"{}\", \"loops\": {}, \"plans_proved\": {}, \
                     \"plan_coverage\": {:.4}, \"plan_contradictions\": {}, \
                     \"gnn_raw_accuracy\": {:.4}, \"gnn_checked_accuracy\": {:.4}, \
                     \"overrides\": {}, \"override_wins\": {}, \"override_losses\": {}}}",
                    fam.as_str(),
                    s.loops,
                    s.plans_proved,
                    s.coverage(),
                    s.plan_contradictions,
                    s.acc(s.gnn_raw_correct),
                    s.acc(s.gnn_checked_correct),
                    s.overrides,
                    s.override_wins,
                    s.override_losses,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"eval_seed\": {eval_seed},\n  \"train_samples\": {},\n  \
             \"epochs\": {epochs},\n  \"rule_c_contradictions\": {contradictions},\n  \
             \"families\": [\n{}\n  ]\n}}\n",
            ds.train.len(),
            rows.join(",\n"),
        );
        mvgnn_bench::or_die(std::fs::write("BENCH_patterns.json", json));
        eprintln!("[patterns] wrote BENCH_patterns.json");
    }

    // Gates (both modes): the planner must decide something in every
    // family — each family's apps contain provable init/copy loops even
    // when the family's namesake kernel is undecidable — and no proved
    // plan may contradict the generator's ground truth.
    let mut failed = false;
    for (fam, s) in &stats {
        if s.loops == 0 {
            eprintln!("fatal: family {fam} evaluated zero loops");
            failed = true;
        }
        if s.plans_proved == 0 {
            eprintln!("fatal: planner proved nothing in family {fam}");
            failed = true;
        }
    }
    if contradictions > 0 {
        eprintln!("fatal: {contradictions} rule-C contradiction(s)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
