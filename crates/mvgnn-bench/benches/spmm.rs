//! Sparse and dense matmul kernels (GCN propagation hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvgnn_tensor::dense;
use mvgnn_tensor::SparseMatrix;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &n in &[64usize, 256, 1024] {
        // ~4 nnz per row.
        let triplets: Vec<(u32, u32, f32)> = (0..n as u32)
            .flat_map(|i| {
                (0..4u32).map(move |k| (i, (i * 13 + k * 7) % n as u32, 0.5))
            })
            .collect();
        let sp = SparseMatrix::from_triplets(n, n, &triplets);
        let x = vec![1.0f32; n * 32];
        let mut out = vec![0.0f32; n * 32];
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| sp.spmm(&x, &mut out, 32));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dense_matmul");
    for &n in &[32usize, 128, 256] {
        let a = vec![0.5f32; n * n];
        let bm = vec![0.25f32; n * n];
        let mut cm = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| dense::matmul(&a, &bm, &mut cm, n, n, n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
