//! Suite generation and augmentation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvgnn_dataset::{generate_app, TABLE2};
use mvgnn_ir::transform::{optimize, OptLevel};

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_app");
    for spec in [TABLE2[4], TABLE2[3], TABLE2[6]] {
        // EP (10), IS (25), MG (74)
        group.bench_with_input(BenchmarkId::new("app", spec.name), &spec, |b, &s| {
            b.iter(|| generate_app(s, 1));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("optimize");
    let app = generate_app(TABLE2[3], 1);
    for level in [OptLevel::O1, OptLevel::O3, OptLevel::O5] {
        group.bench_with_input(
            BenchmarkId::new("level", format!("{level:?}")),
            &level,
            |b, &l| {
                b.iter(|| optimize(&app.module, l));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
