//! DGCNN forward/backward step cost at both model scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvgnn_gnn::{gcn_adjacency, Dgcnn, DgcnnConfig};
use mvgnn_graph::Csr;
use mvgnn_tensor::init;
use mvgnn_tensor::tape::{Params, Tape};

fn cfg_small(in_dim: usize) -> DgcnnConfig {
    DgcnnConfig {
        in_dim,
        gc_dims: vec![16, 16, 1],
        k: 16,
        conv1_out: 8,
        conv2_ksize: 3,
        conv2_out: 16,
        dense_hidden: 32,
        classes: 2,
    }
}

fn cfg_paper(in_dim: usize) -> DgcnnConfig {
    DgcnnConfig {
        in_dim,
        gc_dims: vec![32, 32, 32, 1],
        k: 135,
        conv1_out: 16,
        conv2_ksize: 5,
        conv2_out: 32,
        dense_hidden: 128,
        classes: 2,
    }
}

fn bench_dgcnn(c: &mut Criterion) {
    let n = 40usize;
    let in_dim = 32usize;
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
    let adj = gcn_adjacency(&Csr::from_edges(n, &edges));
    let feats: Vec<f32> = (0..n * in_dim).map(|i| (i % 13) as f32 * 0.1).collect();

    let mut group = c.benchmark_group("dgcnn_step");
    for (name, cfg) in [("small", cfg_small(in_dim)), ("paper_k135", cfg_paper(in_dim))] {
        let mut params = Params::new();
        let mut rng = init::rng(1);
        let model = Dgcnn::new(&mut params, "d", cfg, &mut rng);
        group.bench_with_input(BenchmarkId::new("fwd_bwd", name), &name, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new(&params);
                let x = tape.input(feats.clone(), n, in_dim);
                let logits = model.logits(&mut tape, &adj, x);
                let loss = tape.softmax_ce(logits, &[1], 0.5);
                tape.backward(loss);
                std::hint::black_box(tape.into_grads());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dgcnn);
criterion_main!(benches);
