//! Random/anonymous-walk sampling throughput (structural view hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvgnn_graph::{AwVocab, Csr, WalkConfig, WalkSampler};

fn ring_with_chords(n: usize) -> Csr {
    let mut edges = Vec::new();
    for v in 0..n as u32 {
        let next = (v + 1) % n as u32;
        edges.push((v, next));
        edges.push((next, v));
        let chord = (v + 7) % n as u32;
        edges.push((v, chord));
        edges.push((chord, v));
    }
    Csr::from_edges(n, &edges)
}

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymous_walks");
    for &n in &[32usize, 256, 2048] {
        let csr = ring_with_chords(n);
        let vocab = AwVocab::new(4);
        let sampler =
            WalkSampler::new(WalkConfig { walk_len: 4, walks_per_node: 50, seed: 1 });
        group.bench_with_input(BenchmarkId::new("node_distributions", n), &n, |b, _| {
            b.iter(|| sampler.node_distributions(&csr, &vocab));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("aw_vocab");
    for &len in &[4usize, 5, 6, 7] {
        group.bench_with_input(BenchmarkId::new("enumerate", len), &len, |b, &l| {
            b.iter(|| mvgnn_graph::enumerate_anonymous_walks(l));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
