//! Dependence-profiler throughput: instrumented interpretation and
//! dependence extraction per kernel family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvgnn_dataset::{build_kernel, KernelKind};
use mvgnn_ir::Module;
use mvgnn_profiler::{build_cus, profile_module};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_kernel");
    for kind in [KernelKind::VectorMap, KernelKind::MatMul, KernelKind::Histogram] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Module::new("bench");
        let (f, _) = build_kernel(&mut m, kind, 0, 24, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("kind", format!("{kind:?}")),
            &kind,
            |b, _| {
                b.iter(|| profile_module(&m, f, &[]).expect("profiled"));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("cu_construction");
    let mut rng = StdRng::seed_from_u64(2);
    let mut m = Module::new("bench");
    for i in 0..32 {
        let _ = build_kernel(&mut m, KernelKind::MatVec, i, 16, &mut rng);
    }
    group.bench_function("32_kernels", |b| {
        b.iter(|| build_cus(&m));
    });
    group.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
