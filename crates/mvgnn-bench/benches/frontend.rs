//! Mini-language front-end throughput: lex+parse+lower+verify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn kernel_source(loops: usize) -> String {
    let mut src = String::from("array a[64]: f64;\narray b[64]: f64;\nfn main() {\n");
    for k in 0..loops {
        src.push_str(&format!(
            "    for i{k} in 0..64 {{ b[i{k}] = a[i{k}] * {k}.5 + b[i{k}]; }}\n"
        ));
    }
    src.push_str("}\n");
    src
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for &loops in &[1usize, 16, 64] {
        let src = kernel_source(loops);
        group.bench_with_input(BenchmarkId::new("loops", loops), &src, |b, s| {
            b.iter(|| mvgnn_lang::compile(s).expect("compiles"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
