//! End-to-end per-loop classification latency: IR → profile → PEG →
//! features → MV-GNN prediction (the deployment path).

use criterion::{criterion_group, criterion_main, Criterion};
use mvgnn_core::model::{MvGnn, MvGnnConfig};
use mvgnn_dataset::{build_kernel, KernelKind};
use mvgnn_embed::{build_sample, Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn_ir::Module;
use mvgnn_peg::{build_peg, loop_subpeg};
use mvgnn_profiler::{build_cus, loop_features, profile_module};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut m = Module::new("bench");
    let (f, loops) = build_kernel(&mut m, KernelKind::MatVec, 0, 16, &mut rng);
    let i2v = Inst2Vec::train(
        &[&m],
        &Inst2VecConfig { dim: 16, epochs: 2, negatives: 2, lr: 0.05, seed: 1 },
    );
    let scfg = SampleConfig::default();

    c.bench_function("pipeline_ir_to_sample", |b| {
        b.iter(|| {
            let res = profile_module(&m, f, &[]).expect("run");
            let cus = build_cus(&m);
            let peg = build_peg(&m, &cus, &res.deps);
            let (l, _) = loops[0];
            let sub = loop_subpeg(&peg, &m, &cus, f, l);
            let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
            build_sample(&sub, &i2v, &feats, &scfg, None)
        });
    });

    // Model-only prediction latency.
    let res = profile_module(&m, f, &[]).expect("run");
    let cus = build_cus(&m);
    let peg = build_peg(&m, &cus, &res.deps);
    let (l, _) = loops[0];
    let sub = loop_subpeg(&peg, &m, &cus, f, l);
    let feats = loop_features(&m, f, l, &res.deps, &res.loops[&(f, l)]);
    let sample = build_sample(&sub, &i2v, &feats, &scfg, None);
    let model = MvGnn::new(MvGnnConfig::small(sample.node_dim, sample.aw_vocab));
    c.bench_function("mvgnn_predict", |b| {
        b.iter(|| model.predict(&sample));
    });
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
