//! Labeled corpus assembly: generate suites, apply the six optimisation
//! variants, profile, extract per-loop samples, balance and split.
//!
//! Since the sharded-pipeline refactor the generation itself lives in
//! [`crate::shard`]: [`build_corpus`] is now the single-process
//! composition of the three pipeline stages — vocabulary pass
//! ([`crate::shard::fit_inst2vec`]), shard generation
//! ([`crate::shard::generate_shard`] over one shard), and the in-memory
//! assembly ([`assemble_dataset`]) that sorts, splits, balances and
//! noise-injects. Assembly consumes the *union* of shards through a
//! total order, so any `(num_shards, shard_id)` partition of the same
//! configuration assembles to a bit-identical [`Dataset`].

use crate::kernels::{KernelFamily, PatternKind};
use crate::suites::{GeneratedApp, Suite};
use mvgnn_analyze::{analyze_loop, OracleReport};
use mvgnn_embed::{build_sample_with_static, GraphSample, Inst2Vec, Inst2VecConfig, SampleConfig};
use mvgnn_ir::transform::OptLevel;
use mvgnn_peg::{build_peg, loop_subpeg};
use mvgnn_profiler::{build_cus, loop_features, profile_module};


/// One labeled classification sample with provenance.
#[derive(Debug, Clone)]
pub struct LabeledSample {
    /// Model-ready graph sample.
    pub sample: GraphSample,
    /// Binary label: 1 = parallelisable.
    pub label: usize,
    /// Ground-truth pattern.
    pub pattern: PatternKind,
    /// Suite the loop came from.
    pub suite: Suite,
    /// Stress family of the template that generated the loop — the
    /// reporting key of the `patterns` bench bin (per-family metrics).
    pub family: KernelFamily,
    /// Application name.
    pub app: String,
    /// Identity of the *source* loop shared by all augmented variants —
    /// the unit of the train/test split (no leakage across variants).
    pub base_key: u64,
    /// Optimisation level of this augmented variant. Together with
    /// `base_key` this identifies the sample uniquely, which is what
    /// makes the assembly order a *total* order independent of which
    /// shard produced the sample.
    pub level: OptLevel,
}

/// Corpus construction configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Suite generation seeds; each seed regenerates all apps with fresh
    /// kernel draws (the paper's "transformed dataset" expansion).
    pub seeds: Vec<u64>,
    /// Optimisation variants applied to every module (paper: six).
    pub opt_levels: Vec<OptLevel>,
    /// Per-class cap after balancing (paper: 3100). `None` keeps all of
    /// the minority-class size.
    pub per_class: Option<usize>,
    /// Test fraction of base loops (paper: 0.25).
    pub test_fraction: f64,
    /// Restrict to one suite (None = all).
    pub suite: Option<Suite>,
    /// inst2vec training configuration.
    pub inst2vec: Inst2VecConfig,
    /// Per-sample feature assembly configuration.
    pub sample: SampleConfig,
    /// Master seed for balancing/shuffling decisions.
    pub seed: u64,
    /// Fraction of base loops whose label is flipped — models the
    /// annotation noise the paper reports (e.g. the IS loop-452 false
    /// positive "caused by missing expert annotation"). Applied per base
    /// loop so all augmented variants stay consistent.
    pub label_noise: f64,
    /// Append the static dependence-oracle features
    /// (`mvgnn_analyze::OracleReport::feature_vec`) to every node row.
    /// Off by default so the paper's feature layout is reproduced
    /// exactly; turning it on widens `node_dim` by
    /// `OracleReport::FEAT_DIM` for the static-feature ablation.
    pub static_features: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            seeds: vec![1],
            opt_levels: OptLevel::ALL.to_vec(),
            per_class: None,
            test_fraction: 0.25,
            suite: None,
            inst2vec: Inst2VecConfig::default(),
            sample: SampleConfig::default(),
            seed: 0xda7a,
            label_noise: 0.03,
            static_features: false,
        }
    }
}

/// A balanced, split dataset.
#[derive(Debug)]
pub struct Dataset {
    /// Training samples (balanced 1:1).
    pub train: Vec<LabeledSample>,
    /// Held-out samples, balanced 1:1 (base loops disjoint from training).
    pub test: Vec<LabeledSample>,
    /// Every held-out sample, unbalanced — the per-benchmark evaluation
    /// pool (the paper evaluates on the benchmarks as they are).
    pub test_full: Vec<LabeledSample>,
    /// One unoptimised sample per base loop across both splits — the
    /// Table IV / Fig 8 pool (the paper runs those over all 787 NPB
    /// loops, training loops included).
    pub full: Vec<LabeledSample>,
    /// The trained statement embedding.
    pub inst2vec: Inst2Vec,
}

impl Dataset {
    /// Class balance `(parallelizable, not)` of a sample slice.
    pub fn class_counts(samples: &[LabeledSample]) -> (usize, usize) {
        let pos = samples.iter().filter(|s| s.label == 1).count();
        (pos, samples.len() - pos)
    }
}

/// Identity of one source loop, shared by all augmented variants; the
/// split and noise decisions key on this.
pub fn base_key(app: &str, seed: u64, f: mvgnn_ir::module::FuncId, l: mvgnn_ir::module::LoopId) -> u64 {
    mix64(fxhash(app) ^ mix64(seed) ^ ((f.0 as u64) << 32) ^ l.0 as u64)
}

/// Apply the deterministic annotation-noise rule to a ground-truth label.
pub fn noisy_label(base_key: u64, corpus_seed: u64, noise: f64, label: usize) -> usize {
    // A noise level is a probability; NaN or out-of-range values from
    // callers that bypass the pipeline-level validation are clamped to
    // [0, 1] rather than silently flipping more (or fewer) labels than
    // any probability could.
    let noise = if noise.is_nan() { 0.0 } else { noise.clamp(0.0, 1.0) };
    if noise > 0.0 {
        let roll = mix64(base_key ^ corpus_seed ^ 0x0a15e) as f64 / u64::MAX as f64;
        if roll < noise {
            return 1 - label;
        }
    }
    label
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Extract every loop sample from one (already optimised) app variant.
pub(crate) fn samples_of_variant(
    app: &GeneratedApp,
    module: &mvgnn_ir::Module,
    seed: u64,
    level: OptLevel,
    inst2vec: &Inst2Vec,
    cfg: &CorpusConfig,
) -> Vec<LabeledSample> {
    let Ok(res) = profile_module(module, app.entry, &[]) else {
        return Vec::new();
    };
    let cus = build_cus(module);
    let peg = build_peg(module, &cus, &res.deps);
    let sample_cfg = SampleConfig {
        static_dim: if cfg.static_features { OracleReport::FEAT_DIM } else { 0 },
        ..cfg.sample.clone()
    };
    app.loops
        .iter()
        .enumerate()
        .filter_map(|(i, (f, l, pattern))| {
            let runtime = res.loops.get(&(*f, *l))?;
            let feats = loop_features(module, *f, *l, &res.deps, runtime);
            let sub = loop_subpeg(&peg, module, &cus, *f, *l);
            let label = usize::from(pattern.is_parallelizable());
            let static_vec =
                cfg.static_features.then(|| analyze_loop(module, *f, *l).feature_vec());
            let sample = build_sample_with_static(
                &sub,
                inst2vec,
                &feats,
                static_vec.as_ref().map(|v| &v[..]),
                &sample_cfg,
                Some(label),
            );
            let key = base_key(app.spec.name, seed, *f, *l);
            Some(LabeledSample {
                sample,
                label,
                pattern: *pattern,
                suite: app.spec.suite,
                family: app.loop_kinds[i].family(),
                app: app.spec.name.to_string(),
                base_key: key,
                level,
            })
        })
        .collect()
}

/// Build the full corpus: generate, augment, profile, embed, balance,
/// split. Deterministic for a fixed configuration.
///
/// This is the single-process composition of the sharded pipeline: the
/// vocabulary pass, one shard covering every work unit, and the
/// in-memory assembly. Generating over any other shard count and
/// assembling the union produces a bit-identical dataset (pinned by the
/// shard-determinism tests).
pub fn build_corpus(cfg: &CorpusConfig) -> Dataset {
    let inst2vec = crate::shard::fit_inst2vec(cfg);
    let all = crate::shard::generate_shard(cfg, &inst2vec, 0, 1);
    assemble_dataset(all, inst2vec, cfg)
}

/// Assemble a [`Dataset`] from the union of shard outputs: establish the
/// canonical total order, split by base loop, balance both sides and
/// apply the annotation noise.
///
/// The order of `all` does not matter — the first step sorts by
/// `(base_key, n, label, level)`, which identifies each sample uniquely
/// (`base_key` names the source loop, `level` its augmented variant) —
/// so a union gathered from any shard partition assembles identically.
pub fn assemble_dataset(
    mut all: Vec<LabeledSample>,
    inst2vec: Inst2Vec,
    cfg: &CorpusConfig,
) -> Dataset {
    // Canonical total order before any selection. `n` and `label` are
    // redundant given `(base_key, level)` but kept first for
    // compatibility with the historical `(base_key, n, label)` ordering.
    all.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));

    // Split by base loop (variants stay together).
    let is_test = |s: &LabeledSample| {
        (mix64(s.base_key ^ cfg.seed) as f64 / u64::MAX as f64) < cfg.test_fraction
    };
    let (mut test, mut train): (Vec<_>, Vec<_>) = all.into_iter().partition(|s| is_test(s));
    let mut test_full: Vec<LabeledSample> = test.clone();
    // One representative (first variant) per base loop for Table IV/Fig 8.
    let mut full: Vec<LabeledSample> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        for s in train.iter().chain(&test) {
            if seen.insert(s.base_key) {
                full.push(s.clone());
            }
        }
    }

    // Balance each side to 1:1 (cap at per_class when set).
    let balance = |samples: &mut Vec<LabeledSample>, cap: Option<usize>, salt: u64| {
        let (pos, neg) = Dataset::class_counts(samples);
        let per = pos.min(neg).min(cap.unwrap_or(usize::MAX));
        // Deterministic shuffle by hash, then take `per` of each class.
        samples.sort_by_key(|s| mix64(s.base_key ^ salt ^ s.sample.n as u64));
        let mut kept = Vec::with_capacity(per * 2);
        let (mut p, mut n) = (0usize, 0usize);
        for s in samples.drain(..) {
            if s.label == 1 && p < per {
                p += 1;
                kept.push(s);
            } else if s.label == 0 && n < per {
                n += 1;
                kept.push(s);
            }
        }
        *samples = kept;
    };
    let cap_train = cfg.per_class;
    let cap_test = cfg.per_class.map(|c| {
        (c as f64 * cfg.test_fraction / (1.0 - cfg.test_fraction)).ceil() as usize
    });
    balance(&mut train, cap_train, cfg.seed ^ 0x7ea1);
    balance(&mut test, cap_test, cfg.seed ^ 0x7e57);

    // Annotation noise, applied *after* balancing so the flipped fraction
    // stays at `label_noise` in both classes (flipping before balancing
    // concentrates noise in the minority class). Keyed by base loop so
    // augmented variants and every evaluation pool stay consistent.
    if cfg.label_noise > 0.0 {
        for pool in [&mut train, &mut test, &mut test_full, &mut full] {
            for s in pool.iter_mut() {
                s.label = noisy_label(s.base_key, cfg.seed, cfg.label_noise, s.label);
                s.sample.label = Some(s.label);
            }
        }
    }

    Dataset { train, test, test_full, full, inst2vec }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CorpusConfig {
        CorpusConfig {
            seeds: vec![5, 6],
            opt_levels: vec![OptLevel::O0, OptLevel::O2],
            per_class: Some(40),
            test_fraction: 0.25,
            suite: Some(Suite::PolyBench),
            inst2vec: Inst2VecConfig { dim: 12, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            sample: SampleConfig::default(),
            seed: 77,
            label_noise: 0.0,
            static_features: false,
        }
    }

    #[test]
    fn static_features_widen_node_dim_only_when_enabled() {
        let mut cfg = CorpusConfig {
            seeds: vec![5],
            opt_levels: vec![OptLevel::O0],
            per_class: Some(8),
            ..tiny_cfg()
        };
        let plain = build_corpus(&cfg);
        cfg.static_features = true;
        let augmented = build_corpus(&cfg);
        let plain_dim = plain.train[0].sample.node_dim;
        let aug_dim = augmented.train[0].sample.node_dim;
        assert_eq!(aug_dim, plain_dim + OracleReport::FEAT_DIM);
        for s in plain.train.iter().chain(&plain.test) {
            assert_eq!(s.sample.node_dim, plain_dim);
        }
        for s in augmented.train.iter().chain(&augmented.test) {
            assert_eq!(s.sample.node_dim, aug_dim);
            assert_eq!(s.sample.node_feats.len(), s.sample.n * aug_dim);
            // The verdict one-hot lives at the head of the static block
            // and always has exactly one bit set.
            let verdict: Vec<f32> = (0..s.sample.n)
                .flat_map(|r| {
                    let off = (r + 1) * aug_dim - OracleReport::FEAT_DIM;
                    s.sample.node_feats[off..off + 3].to_vec()
                })
                .collect();
            for row in verdict.chunks(3) {
                assert_eq!(row.iter().filter(|&&x| x == 1.0).count(), 1, "{row:?}");
            }
        }
    }

    #[test]
    fn label_noise_boundaries_are_clamped() {
        use mvgnn_ir::module::{FuncId, LoopId};
        let keys: Vec<u64> = (0..200u64).map(|i| base_key("app", i, FuncId(0), LoopId(i as u32))).collect();
        // 0.0 and anything below: identity.
        for noise in [0.0, -0.1, f64::NEG_INFINITY, f64::NAN] {
            assert!(
                keys.iter().all(|&k| noisy_label(k, 7, noise, 1) == 1),
                "noise {noise} must not flip labels"
            );
        }
        // 1.0 and anything above: certain flip.
        for noise in [1.0, 1.1, f64::INFINITY] {
            assert!(
                keys.iter().all(|&k| noisy_label(k, 7, noise, 1) == 0),
                "noise {noise} must flip every label"
            );
        }
        // Interior values flip roughly the requested fraction.
        let flipped = keys.iter().filter(|&&k| noisy_label(k, 7, 0.3, 1) == 0).count();
        let frac = flipped as f64 / keys.len() as f64;
        assert!((0.15..=0.45).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn corpus_is_balanced_and_split() {
        let ds = build_corpus(&tiny_cfg());
        assert!(!ds.train.is_empty());
        assert!(!ds.test.is_empty());
        let (tp, tn) = Dataset::class_counts(&ds.train);
        assert_eq!(tp, tn, "train must be balanced");
        let (sp, sn) = Dataset::class_counts(&ds.test);
        assert_eq!(sp, sn, "test must be balanced");
        assert!(tp <= 40);
    }

    #[test]
    fn no_base_loop_leaks_across_split() {
        let ds = build_corpus(&tiny_cfg());
        let train_keys: std::collections::HashSet<u64> =
            ds.train.iter().map(|s| s.base_key).collect();
        for s in &ds.test {
            assert!(
                !train_keys.contains(&s.base_key),
                "base loop {} in both splits",
                s.base_key
            );
        }
    }

    #[test]
    fn augmented_variants_share_base_key() {
        // With two opt levels every base loop appears twice pre-balance;
        // after balancing some survive in pairs — check at least one does.
        let ds = build_corpus(&tiny_cfg());
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for s in ds.train.iter().chain(&ds.test) {
            *counts.entry(s.base_key).or_default() += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "expected augmented pairs");
    }

    #[test]
    fn samples_are_model_ready() {
        let ds = build_corpus(&tiny_cfg());
        for s in ds.train.iter().take(10) {
            assert!(s.sample.n > 0);
            assert_eq!(s.sample.node_feats.len(), s.sample.n * s.sample.node_dim);
            assert_eq!(s.sample.struct_dists.len(), s.sample.n * s.sample.aw_vocab);
            assert!(s.sample.node_feats.iter().all(|x| x.is_finite()));
            assert_eq!(s.sample.label, Some(s.label));
        }
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let a = build_corpus(&tiny_cfg());
        let b = build_corpus(&tiny_cfg());
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.test.len(), b.test.len());
        let ka: Vec<u64> = a.train.iter().map(|s| s.base_key).collect();
        let kb: Vec<u64> = b.train.iter().map(|s| s.base_key).collect();
        assert_eq!(ka, kb);
    }
}
