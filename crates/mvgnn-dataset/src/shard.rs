//! Deterministic sharded corpus generation.
//!
//! The corpus is a set of *work units* — one `(generation seed, app
//! spec)` pair per unit, enumerated in a fixed order (seed-major, then
//! Table II order). A [`ShardPlan`] deals unit `k` to shard
//! `k % num_shards`, so:
//!
//! - every kernel draw is keyed by the unit identity (the per-app RNG
//!   seeds on `generation_seed ^ fxhash(app name)`), never by which
//!   shard runs it — N workers produce **disjoint, reproducible**
//!   slices;
//! - the union of all shards is exactly the single-process sample set
//!   for any `num_shards`, and [`crate::corpus::assemble_dataset`]
//!   consumes that union through a total order, so the assembled
//!   [`crate::corpus::Dataset`] is bit-identical across shard counts
//!   (pinned by the `shard_determinism` proptests).
//!
//! The statement embedding is *not* fit per shard: [`fit_inst2vec`] is
//! an explicit, separately-run vocabulary pass over every unoptimised
//! module of the configuration. Shard workers receive the trained
//! [`Inst2Vec`] read-only (in-process, or through its serialised
//! artifact — [`Inst2Vec::encode`]/[`Inst2Vec::decode`]) so every shard
//! embeds against the same vocabulary and the union stays bit-identical
//! to the monolithic build.

use crate::corpus::{samples_of_variant, CorpusConfig, LabeledSample};
use crate::format::{ShardError, ShardMeta, ShardWriter};
use crate::suites::{generate_app, AppSpec, Suite, STRESS, TABLE2};
use mvgnn_embed::Inst2Vec;
use mvgnn_ir::transform::optimize;
use rayon::prelude::*;
use std::path::{Path, PathBuf};

/// Deterministic assignment of corpus work units to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards the units are dealt across.
    pub num_shards: usize,
    units: Vec<(u64, AppSpec)>,
}

impl ShardPlan {
    /// Plan the configuration's work units across `num_shards` workers.
    /// `num_shards == 0` is meaningless and rejected.
    pub fn new(cfg: &CorpusConfig, num_shards: usize) -> ShardPlan {
        assert!(num_shards >= 1, "a shard plan needs at least one shard");
        // `None` means the paper's corpus: every TABLE2 app, never the
        // opt-in stress apps (mirrors `generate_suite`).
        let units: Vec<(u64, AppSpec)> = cfg
            .seeds
            .iter()
            .flat_map(|&s| {
                TABLE2
                    .iter()
                    .chain(STRESS.iter())
                    .filter(|spec| match cfg.suite {
                        None => spec.suite != Suite::Stress,
                        Some(want) => spec.suite == want,
                    })
                    .map(move |&spec| (s, spec))
            })
            .collect();
        ShardPlan { num_shards, units }
    }

    /// Total number of work units across all shards.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The work units owned by one shard (unit `k` belongs to shard
    /// `k % num_shards`). Shards past `num_shards` own nothing.
    pub fn units_of(&self, shard_id: usize) -> impl Iterator<Item = &(u64, AppSpec)> + '_ {
        self.units
            .iter()
            .enumerate()
            .filter(move |(k, _)| k % self.num_shards == shard_id)
            .map(|(_, u)| u)
    }

    /// Loops each shard will generate: `(shard_id, loop count)` rows,
    /// before opt-level augmentation.
    pub fn shard_loads(&self) -> Vec<(usize, usize)> {
        (0..self.num_shards)
            .map(|s| (s, self.units_of(s).map(|(_, spec)| spec.loops).sum()))
            .collect()
    }
}

/// The explicit vocabulary pass: train the statement embedding over
/// every unoptimised module of the configuration.
///
/// This is its own pipeline stage (separately seeded through
/// `cfg.inst2vec.seed`) precisely so shard workers never fit anything:
/// they load the result read-only and all shards embed against one
/// frozen vocabulary. Persist it with [`save_inst2vec`] /
/// [`load_inst2vec`] when generation and embedding run in different
/// processes.
pub fn fit_inst2vec(cfg: &CorpusConfig) -> Inst2Vec {
    let apps: Vec<crate::suites::GeneratedApp> = cfg
        .seeds
        .iter()
        .flat_map(|&s| crate::suites::generate_suite(cfg.suite, s))
        .collect();
    let modules: Vec<&mvgnn_ir::Module> = apps.iter().map(|a| &a.module).collect();
    Inst2Vec::train(&modules, &cfg.inst2vec)
}

/// Write the vocabulary-pass artifact ([`Inst2Vec::encode`]) atomically
/// (`*.tmp` + rename, like every other artifact in the repo).
pub fn save_inst2vec(path: &Path, emb: &Inst2Vec) -> Result<(), ShardError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, emb.encode())?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a vocabulary-pass artifact; corrupt files surface as typed
/// [`ShardError`]s.
pub fn load_inst2vec(path: &Path) -> Result<Inst2Vec, ShardError> {
    let bytes = std::fs::read(path)?;
    Inst2Vec::decode(&bytes).map_err(ShardError::Embedding)
}

/// Generate one shard's samples: every opt-level variant of every work
/// unit the plan deals to `shard_id`, profiled and embedded against the
/// read-only `inst2vec`.
///
/// Output is sorted by the canonical `(base_key, n, label, level)`
/// order, so a shard file's contents are deterministic regardless of
/// the parallel schedule, and the union over all shards is exactly the
/// `num_shards == 1` output (assembly re-sorts, so even concatenation
/// order across shards is irrelevant).
pub fn generate_shard(
    cfg: &CorpusConfig,
    inst2vec: &Inst2Vec,
    shard_id: usize,
    num_shards: usize,
) -> Vec<LabeledSample> {
    let plan = ShardPlan::new(cfg, num_shards);
    let units: Vec<(u64, AppSpec)> = plan.units_of(shard_id).copied().collect();
    let mut samples: Vec<LabeledSample> = units
        .par_iter()
        .flat_map(|&(seed, spec)| {
            let app = generate_app(spec, seed);
            cfg.opt_levels
                .par_iter()
                .flat_map(|&level| {
                    let module = optimize(&app.module, level);
                    samples_of_variant(&app, &module, seed, level, inst2vec, cfg)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    samples.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));
    samples
}

/// Generate shard `shard_id` and stream it into an MVSH file at
/// `dir/shard_<id>_of_<n>.mvsh`, with the dataset's annotation noise
/// already applied (noise keys on `base_key`, so it is shard-invariant).
/// Returns the file path and the record count.
pub fn write_shard(
    dir: &Path,
    cfg: &CorpusConfig,
    inst2vec: &Inst2Vec,
    shard_id: usize,
    num_shards: usize,
) -> Result<(PathBuf, usize), ShardError> {
    let mut samples = generate_shard(cfg, inst2vec, shard_id, num_shards);
    for s in &mut samples {
        s.label = crate::corpus::noisy_label(s.base_key, cfg.seed, cfg.label_noise, s.label);
        s.sample.label = Some(s.label);
    }
    let path = dir.join(shard_file_name(shard_id, num_shards));
    let meta = ShardMeta {
        corpus_seed: cfg.seed,
        shard_id: shard_id as u32,
        num_shards: num_shards as u32,
    };
    let mut w = ShardWriter::create(&path, meta)?;
    for s in &samples {
        w.append(s)?;
    }
    let n = w.finish()?;
    Ok((path, n))
}

/// Canonical file name of one shard of a plan.
pub fn shard_file_name(shard_id: usize, num_shards: usize) -> String {
    format!("shard_{shard_id:05}_of_{num_shards:05}.mvsh")
}

/// [`write_shard`] with crash-restart resume: if `dir` already holds
/// this shard and it verifies — intact header, matching plan identity
/// `(corpus_seed, shard_id, num_shards)`, every record checksum good —
/// generation is skipped and the existing file is reused. Anything
/// else (missing, truncated, corrupt, or from a different plan) is
/// regenerated from scratch; the writer's tmp-then-rename protocol
/// guarantees a half-written casualty never verifies.
///
/// Returns the path, the record count, and whether the shard was
/// reused. Determinism makes the skip sound: a shard is a pure function
/// of `(cfg, inst2vec, shard_id, num_shards)`, so a verified file *is*
/// the regeneration.
pub fn write_shard_resumable(
    dir: &Path,
    cfg: &CorpusConfig,
    inst2vec: &Inst2Vec,
    shard_id: usize,
    num_shards: usize,
) -> Result<(PathBuf, usize, bool), ShardError> {
    let path = dir.join(shard_file_name(shard_id, num_shards));
    if path.exists() {
        if let Ok((meta, n)) = crate::format::verify_shard(&path) {
            let expected = ShardMeta {
                corpus_seed: cfg.seed,
                shard_id: shard_id as u32,
                num_shards: num_shards as u32,
            };
            if meta == expected {
                return Ok((path, n as usize, true));
            }
        }
    }
    let (path, n) = write_shard(dir, cfg, inst2vec, shard_id, num_shards)?;
    Ok((path, n, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ShardReader;
    use crate::suites::Suite;
    use mvgnn_embed::Inst2VecConfig;
    use mvgnn_ir::transform::OptLevel;

    fn tiny_cfg() -> CorpusConfig {
        CorpusConfig {
            seeds: vec![5, 6],
            opt_levels: vec![OptLevel::O0, OptLevel::O2],
            per_class: None,
            test_fraction: 0.25,
            suite: Some(Suite::Bots),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            sample: Default::default(),
            seed: 77,
            label_noise: 0.0,
            static_features: false,
        }
    }

    fn sample_bits(s: &LabeledSample) -> (u64, OptLevel, usize, Vec<u32>, Vec<u32>) {
        (
            s.base_key,
            s.level,
            s.label,
            s.sample.node_feats.iter().map(|x| x.to_bits()).collect(),
            s.sample.struct_dists.iter().map(|x| x.to_bits()).collect(),
        )
    }

    #[test]
    fn plan_deals_every_unit_exactly_once() {
        let cfg = CorpusConfig { suite: None, ..tiny_cfg() };
        for n in [1usize, 2, 3, 5, 9] {
            let plan = ShardPlan::new(&cfg, n);
            assert_eq!(plan.unit_count(), 2 * 14, "2 seeds x 14 apps");
            let mut seen = 0usize;
            for s in 0..n {
                seen += plan.units_of(s).count();
            }
            assert_eq!(seen, plan.unit_count(), "{n} shards must cover all units");
            let loads = plan.shard_loads();
            let total: usize = loads.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, 2 * 840);
        }
    }

    #[test]
    fn shard_union_is_bit_identical_to_single_process() {
        let cfg = tiny_cfg();
        let emb = fit_inst2vec(&cfg);
        let mono = generate_shard(&cfg, &emb, 0, 1);
        assert!(!mono.is_empty());
        for n in [2usize, 3] {
            let mut union: Vec<LabeledSample> = (0..n)
                .flat_map(|s| generate_shard(&cfg, &emb, s, n))
                .collect();
            union.sort_by_key(|s| (s.base_key, s.sample.n, s.label, s.level));
            assert_eq!(union.len(), mono.len(), "{n} shards");
            for (a, b) in union.iter().zip(&mono) {
                assert_eq!(sample_bits(a), sample_bits(b), "{n} shards");
            }
        }
    }

    #[test]
    fn resumable_write_skips_verified_shards_and_regenerates_casualties() {
        let dir = std::env::temp_dir().join("mvgnn_shard_resume_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = tiny_cfg();
        let emb = fit_inst2vec(&cfg);

        // Fresh run generates; identical rerun reuses the same bytes.
        let (path, n, reused) = write_shard_resumable(&dir, &cfg, &emb, 0, 2).unwrap();
        assert!(!reused);
        let first = std::fs::read(&path).unwrap();
        let (path2, n2, reused2) = write_shard_resumable(&dir, &cfg, &emb, 0, 2).unwrap();
        assert!(reused2, "verified shard must be skipped");
        assert_eq!((path2.clone(), n2), (path.clone(), n));
        assert_eq!(std::fs::read(&path2).unwrap(), first);

        // A truncated casualty fails verification and is regenerated.
        std::fs::write(&path, &first[..first.len() - 7]).unwrap();
        let (_, n3, reused3) = write_shard_resumable(&dir, &cfg, &emb, 0, 2).unwrap();
        assert!(!reused3, "corrupt shard must be regenerated");
        assert_eq!(n3, n);
        assert_eq!(std::fs::read(&path).unwrap(), first, "regeneration is deterministic");

        // A shard from a different plan identity is not silently reused.
        let other = CorpusConfig { seed: cfg.seed + 1, ..cfg.clone() };
        let (_, _, reused4) = write_shard_resumable(&dir, &other, &emb, 0, 2).unwrap();
        assert!(!reused4, "foreign corpus seed must force regeneration");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_are_disjoint() {
        let cfg = tiny_cfg();
        let emb = fit_inst2vec(&cfg);
        let a = generate_shard(&cfg, &emb, 0, 2);
        let b = generate_shard(&cfg, &emb, 1, 2);
        let keys_a: std::collections::HashSet<(u64, OptLevel)> =
            a.iter().map(|s| (s.base_key, s.level)).collect();
        assert!(!a.is_empty() && !b.is_empty());
        for s in &b {
            assert!(!keys_a.contains(&(s.base_key, s.level)), "overlap at {}", s.base_key);
        }
    }

    #[test]
    fn written_shard_reads_back_bit_identical() {
        let dir = std::env::temp_dir().join("mvgnn_shard_roundtrip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = tiny_cfg();
        let emb = fit_inst2vec(&cfg);
        let (path, n) = write_shard(&dir, &cfg, &emb, 0, 2).unwrap();
        let direct = generate_shard(&cfg, &emb, 0, 2);
        assert_eq!(n, direct.len());
        let reader = ShardReader::open(&path).unwrap();
        assert_eq!(reader.meta().shard_id, 0);
        assert_eq!(reader.meta().num_shards, 2);
        assert_eq!(reader.meta().corpus_seed, cfg.seed);
        let read: Vec<LabeledSample> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(read.len(), direct.len());
        for (a, b) in read.iter().zip(&direct) {
            assert_eq!(sample_bits(a), sample_bits(b));
            assert_eq!(a.sample.token_ids, b.sample.token_ids);
            assert_eq!(a.app, b.app);
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.suite, b.suite);
            let (rp_a, ci_a, vs_a) = a.sample.adj.csr_parts();
            let (rp_b, ci_b, vs_b) = b.sample.adj.csr_parts();
            assert_eq!(rp_a, rp_b);
            assert_eq!(ci_a, ci_b);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(vs_a), bits(vs_b));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inst2vec_artifact_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("mvgnn_shard_i2v_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = tiny_cfg();
        let emb = fit_inst2vec(&cfg);
        let path = dir.join("vocab.mvi2");
        save_inst2vec(&path, &emb).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = load_inst2vec(&path).unwrap();
        for tok in emb.tokens() {
            assert_eq!(back.embed(tok), emb.embed(tok));
        }
        // Shards generated against the loaded artifact are bit-identical
        // to shards generated against the in-process embedding.
        let a = generate_shard(&cfg, &emb, 1, 2);
        let b = generate_shard(&cfg, &back, 1, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(sample_bits(x), sample_bits(y));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
