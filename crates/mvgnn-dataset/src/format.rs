//! MVSH: the on-disk shard format for labeled corpus samples.
//!
//! A shard file is a fixed 32-byte header followed by length-prefixed,
//! checksummed records, one per [`LabeledSample`]:
//!
//! ```text
//! header:  "MVSH" | version u32 | corpus_seed u64 | shard_id u32
//!          | num_shards u32 | record_count u64
//! record:  payload_len u32 | fnv1a(payload) u64 | payload bytes
//! ```
//!
//! All integers are little-endian. The framing is deliberately
//! mmap-friendly: records can be skipped by length without decoding, so
//! a reader can window a shard rather than materialise it —
//! [`ShardReader`] streams one record at a time through a single reused
//! buffer, keeping RSS bounded by the largest record, not the shard.
//!
//! [`ShardWriter`] follows the repo's atomic-artifact convention: it
//! writes to `<path>.tmp` with a zero record count, patches the count in
//! [`ShardWriter::finish`], and renames into place — a crash mid-write
//! never leaves a plausible-looking shard at the target path.
//!
//! Every corruption mode surfaces as a typed [`ShardError`]; decoding
//! never panics (pinned by `tests/fault_injection.rs`).

use crate::corpus::LabeledSample;
use crate::kernels::{KernelFamily, PatternKind};
use crate::suites::Suite;
use mvgnn_embed::GraphSample;
use mvgnn_ir::module::{FuncId, LoopId};
use mvgnn_ir::transform::OptLevel;
use mvgnn_tensor::{Advice, Mmap, PersistError, SparseMatrix};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic of a shard file.
pub const MAGIC: &[u8; 4] = b"MVSH";
/// Current format version. v2 added the kernel-family tag byte (after
/// the suite tag) and the `Stress` suite; v1 shards are refused rather
/// than silently mis-decoded.
pub const VERSION: u32 = 2;
/// Header length in bytes (magic, version, seed, shard id, shard count,
/// record count).
pub const HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4 + 8;
/// Byte offset of the record-count field inside the header.
const COUNT_OFFSET: u64 = (HEADER_LEN - 8) as u64;

/// Hard cap on a single record's payload (and on any per-field element
/// count derived from it). A declared length past this is corruption,
/// not data — the decoder refuses before allocating.
pub const MAX_RECORD_LEN: u32 = 1 << 28;

/// Typed error for every way shard generation, writing or reading can
/// fail. Corrupt input is a value of this type, never a panic.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the MVSH magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    BadVersion(u32),
    /// The file or a record ended before its declared length.
    Truncated,
    /// A record's payload does not hash to its stored checksum.
    Checksum {
        /// Zero-based index of the corrupt record.
        record: u64,
    },
    /// A record decoded structurally but its contents are inconsistent
    /// (bad enum tag, mismatched lengths, invalid CSR, oversized field).
    Malformed(String),
    /// The header's record count disagrees with the records present.
    CountMismatch {
        /// Count the header declares.
        expected: u64,
        /// Records actually found.
        got: u64,
    },
    /// The embedding artifact consumed alongside the shards is corrupt.
    Embedding(PersistError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o: {e}"),
            ShardError::BadMagic => write!(f, "not an MVSH shard file"),
            ShardError::BadVersion(v) => write!(f, "unsupported MVSH version {v}"),
            ShardError::Truncated => write!(f, "truncated shard file"),
            ShardError::Checksum { record } => {
                write!(f, "checksum mismatch in record {record}")
            }
            ShardError::Malformed(m) => write!(f, "malformed record: {m}"),
            ShardError::CountMismatch { expected, got } => {
                write!(f, "header declares {expected} records, found {got}")
            }
            ShardError::Embedding(e) => write!(f, "embedding artifact: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Shard identity stored in the header: which slice of which corpus
/// this file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Master corpus seed (`CorpusConfig::seed`).
    pub corpus_seed: u64,
    /// This shard's index in the plan.
    pub shard_id: u32,
    /// Total shards in the plan.
    pub num_shards: u32,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Record payload encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn level_tag(level: OptLevel) -> u8 {
    match level {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
        OptLevel::O4 => 4,
        OptLevel::O5 => 5,
    }
}

fn level_of(tag: u8) -> Result<OptLevel, ShardError> {
    Ok(match tag {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        3 => OptLevel::O3,
        4 => OptLevel::O4,
        5 => OptLevel::O5,
        t => return Err(ShardError::Malformed(format!("opt-level tag {t}"))),
    })
}

fn pattern_tag(p: PatternKind) -> u8 {
    match p {
        PatternKind::DoAll => 0,
        PatternKind::Reduction => 1,
        PatternKind::Serial => 2,
        PatternKind::Task => 3,
    }
}

fn pattern_of(tag: u8) -> Result<PatternKind, ShardError> {
    Ok(match tag {
        0 => PatternKind::DoAll,
        1 => PatternKind::Reduction,
        2 => PatternKind::Serial,
        3 => PatternKind::Task,
        t => return Err(ShardError::Malformed(format!("pattern tag {t}"))),
    })
}

fn suite_tag(s: Suite) -> u8 {
    match s {
        Suite::Npb => 0,
        Suite::PolyBench => 1,
        Suite::Bots => 2,
        Suite::Stress => 3,
    }
}

fn suite_of(tag: u8) -> Result<Suite, ShardError> {
    Ok(match tag {
        0 => Suite::Npb,
        1 => Suite::PolyBench,
        2 => Suite::Bots,
        3 => Suite::Stress,
        t => return Err(ShardError::Malformed(format!("suite tag {t}"))),
    })
}

fn family_tag(f: KernelFamily) -> u8 {
    match f {
        KernelFamily::Regular => 0,
        KernelFamily::Indirect => 1,
        KernelFamily::PointerChase => 2,
        KernelFamily::Triangular => 3,
        KernelFamily::LongDistance => 4,
    }
}

fn family_of(tag: u8) -> Result<KernelFamily, ShardError> {
    Ok(match tag {
        0 => KernelFamily::Regular,
        1 => KernelFamily::Indirect,
        2 => KernelFamily::PointerChase,
        3 => KernelFamily::Triangular,
        4 => KernelFamily::LongDistance,
        t => return Err(ShardError::Malformed(format!("family tag {t}"))),
    })
}

/// Serialise one sample into a record payload (framing and checksum are
/// the writer's job).
pub fn encode_record(s: &LabeledSample) -> Vec<u8> {
    let g = &s.sample;
    let mut out = Vec::with_capacity(
        64 + s.app.len()
            + 4 * (g.node_feats.len() + g.struct_dists.len() + g.token_ids.len()),
    );
    put_u64(&mut out, s.base_key);
    out.push(level_tag(s.level));
    out.push(s.label as u8);
    out.push(pattern_tag(s.pattern));
    out.push(suite_tag(s.suite));
    out.push(family_tag(s.family));
    put_u32(&mut out, s.app.len() as u32);
    out.extend_from_slice(s.app.as_bytes());

    put_u32(&mut out, g.n as u32);
    put_u32(&mut out, g.node_dim as u32);
    put_u32(&mut out, g.aw_vocab as u32);
    put_u32(&mut out, g.func.0);
    put_u32(&mut out, g.l.0);
    match g.label {
        Some(l) => {
            out.push(1);
            out.push(l as u8);
        }
        None => {
            out.push(0);
            out.push(0);
        }
    }
    put_f32s(&mut out, &g.node_feats);
    put_f32s(&mut out, &g.struct_dists);
    let tokens: Vec<u32> = g.token_ids.iter().map(|&t| t as u32).collect();
    put_u32s(&mut out, &tokens);

    let (row_ptr, col_idx, values) = g.adj.csr_parts();
    put_u32(&mut out, g.adj.rows() as u32);
    put_u32(&mut out, g.adj.cols() as u32);
    put_u32s(&mut out, row_ptr);
    put_u32s(&mut out, col_idx);
    put_f32s(&mut out, values);
    out
}

/// Bounds-checked payload cursor; running past the end is
/// [`ShardError::Truncated`], never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardError> {
        let end = self.pos.checked_add(n).ok_or(ShardError::Truncated)?;
        if end > self.buf.len() {
            return Err(ShardError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ShardError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ShardError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ShardError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// A declared element count, capped so corrupt lengths fail before
    /// any allocation.
    fn len(&mut self, what: &str) -> Result<usize, ShardError> {
        let n = self.u32()?;
        if n > MAX_RECORD_LEN {
            return Err(ShardError::Malformed(format!("{what} length {n} exceeds cap")));
        }
        Ok(n as usize)
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, ShardError> {
        let n = self.len(what)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn u32s(&mut self, what: &str) -> Result<Vec<u32>, ShardError> {
        let n = self.len(what)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Decode one record payload back into a sample, validating every
/// structural invariant the rest of the pipeline assumes.
pub fn decode_record(payload: &[u8]) -> Result<LabeledSample, ShardError> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let base_key = c.u64()?;
    let level = level_of(c.u8()?)?;
    let label = c.u8()? as usize;
    if label > 1 {
        return Err(ShardError::Malformed(format!("label {label}")));
    }
    let pattern = pattern_of(c.u8()?)?;
    let suite = suite_of(c.u8()?)?;
    let family = family_of(c.u8()?)?;
    let app_len = c.len("app name")?;
    let app = std::str::from_utf8(c.take(app_len)?)
        .map_err(|_| ShardError::Malformed("app name is not UTF-8".into()))?
        .to_string();

    let n = c.len("node count")?;
    let node_dim = c.len("node dim")?;
    let aw_vocab = c.len("walk vocab")?;
    let func = FuncId(c.u32()?);
    let l = LoopId(c.u32()?);
    let has_label = c.u8()?;
    let raw_label = c.u8()? as usize;
    let sample_label = match has_label {
        0 => None,
        1 => Some(raw_label),
        t => return Err(ShardError::Malformed(format!("label tag {t}"))),
    };
    let node_feats = c.f32s("node features")?;
    if node_feats.len() != n * node_dim {
        return Err(ShardError::Malformed(format!(
            "node features {} != n*dim {}",
            node_feats.len(),
            n * node_dim
        )));
    }
    let struct_dists = c.f32s("structural distributions")?;
    if struct_dists.len() != n * aw_vocab {
        return Err(ShardError::Malformed(format!(
            "structural distributions {} != n*vocab {}",
            struct_dists.len(),
            n * aw_vocab
        )));
    }
    let token_ids: Vec<usize> =
        c.u32s("token ids")?.into_iter().map(|t| t as usize).collect();

    let rows = c.len("adjacency rows")?;
    let cols = c.len("adjacency cols")?;
    let row_ptr = c.u32s("row pointers")?;
    let col_idx = c.u32s("column indices")?;
    let values = c.f32s("adjacency values")?;
    let adj = SparseMatrix::from_csr_parts(rows, cols, row_ptr, col_idx, values)
        .ok_or_else(|| ShardError::Malformed("inconsistent CSR adjacency".into()))?;
    if rows != n {
        return Err(ShardError::Malformed(format!("adjacency rows {rows} != n {n}")));
    }
    if c.pos != payload.len() {
        return Err(ShardError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - c.pos
        )));
    }

    Ok(LabeledSample {
        sample: GraphSample {
            n,
            adj,
            node_feats,
            node_dim,
            struct_dists,
            aw_vocab,
            token_ids,
            func,
            l,
            label: sample_label,
        },
        label,
        pattern,
        suite,
        family,
        app,
        base_key,
        level,
    })
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streaming shard writer. Records go to `<path>.tmp`; [`finish`]
/// patches the header's record count and renames into place.
///
/// [`finish`]: ShardWriter::finish
pub struct ShardWriter {
    // `None` only after `finish` has taken the file (the writer is
    // consumed there, so appends can never observe it).
    file: Option<std::io::BufWriter<std::fs::File>>,
    tmp: PathBuf,
    path: PathBuf,
    written: u64,
}

impl ShardWriter {
    /// Open a writer for a new shard at `path`.
    pub fn create(path: &Path, meta: ShardMeta) -> Result<ShardWriter, ShardError> {
        let tmp = path.with_extension("mvsh.tmp");
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&meta.corpus_seed.to_le_bytes())?;
        file.write_all(&meta.shard_id.to_le_bytes())?;
        file.write_all(&meta.num_shards.to_le_bytes())?;
        file.write_all(&0u64.to_le_bytes())?;
        Ok(ShardWriter { file: Some(file), tmp, path: path.to_path_buf(), written: 0 })
    }

    /// Append one sample as a framed, checksummed record.
    pub fn append(&mut self, s: &LabeledSample) -> Result<(), ShardError> {
        let Some(file) = self.file.as_mut() else {
            return Err(ShardError::Io(std::io::Error::other("shard writer already finished")));
        };
        let payload = encode_record(s);
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(ShardError::Malformed(format!(
                "record payload {} exceeds cap",
                payload.len()
            )));
        }
        file.write_all(&(payload.len() as u32).to_le_bytes())?;
        file.write_all(&fnv1a(&payload).to_le_bytes())?;
        file.write_all(&payload)?;
        self.written += 1;
        Ok(())
    }

    /// Patch the record count, sync and rename the shard into place.
    /// Returns the number of records written.
    pub fn finish(mut self) -> Result<usize, ShardError> {
        let Some(buf) = self.file.take() else {
            return Err(ShardError::Io(std::io::Error::other("shard writer already finished")));
        };
        let mut file = buf.into_inner().map_err(|e| ShardError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&self.written.to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(self.written as usize)
    }
}

impl Drop for ShardWriter {
    fn drop(&mut self) {
        // Abandoned writers leave no half-written artifact behind; the
        // rename in `finish` has already consumed the tmp file when the
        // write completed.
        let _ = std::fs::remove_file(&self.tmp);
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Streaming shard reader: an iterator of decoded samples that holds
/// one record in memory at a time (the payload buffer is reused across
/// records, so peak RSS is the largest record, not the shard).
pub struct ShardReader {
    file: std::io::BufReader<std::fs::File>,
    meta: ShardMeta,
    declared: u64,
    read: u64,
    buf: Vec<u8>,
    failed: bool,
}

/// Decode and validate a 32-byte MVSH header; shared by the buffered
/// and the mapped readers.
fn parse_header(header: &[u8]) -> Result<(ShardMeta, u64), ShardError> {
    if header.len() < HEADER_LEN {
        // A short file that still carries the magic is truncated; one
        // that doesn't is simply not a shard.
        if header.len() >= 4 && &header[0..4] != MAGIC {
            return Err(ShardError::BadMagic);
        }
        return Err(ShardError::Truncated);
    }
    if &header[0..4] != MAGIC {
        return Err(ShardError::BadMagic);
    }
    let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if version != VERSION {
        return Err(ShardError::BadVersion(version));
    }
    let u64_at = |o: usize| {
        let mut a = [0u8; 8];
        a.copy_from_slice(&header[o..o + 8]);
        u64::from_le_bytes(a)
    };
    let corpus_seed = u64_at(8);
    let shard_id = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
    let num_shards = u32::from_le_bytes([header[20], header[21], header[22], header[23]]);
    let declared = u64_at(24);
    Ok((ShardMeta { corpus_seed, shard_id, num_shards }, declared))
}

impl ShardReader {
    /// Open a shard and validate its header.
    pub fn open(path: &Path) -> Result<ShardReader, ShardError> {
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut header = [0u8; HEADER_LEN];
        read_fully(&mut file, &mut header)?;
        let (meta, declared) = parse_header(&header)?;
        Ok(ShardReader { file, meta, declared, read: 0, buf: Vec::new(), failed: false })
    }

    /// The shard identity from the header.
    pub fn meta(&self) -> ShardMeta {
        self.meta
    }

    /// Records the header declares.
    pub fn declared_records(&self) -> u64 {
        self.declared
    }

    fn next_record(&mut self) -> Result<Option<LabeledSample>, ShardError> {
        if self.read == self.declared {
            // Clean end: the file must stop exactly here.
            let mut probe = [0u8; 1];
            return match self.file.read(&mut probe)? {
                0 => Ok(None),
                _ => Err(ShardError::CountMismatch {
                    expected: self.declared,
                    got: self.declared + 1,
                }),
            };
        }
        let mut frame = [0u8; 12];
        let got = read_up_to(&mut self.file, &mut frame)?;
        if got == 0 {
            // Clean EOF before the declared count: the count is wrong.
            return Err(ShardError::CountMismatch { expected: self.declared, got: self.read });
        }
        if got < frame.len() {
            return Err(ShardError::Truncated);
        }
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        if len > MAX_RECORD_LEN {
            return Err(ShardError::Malformed(format!("record length {len} exceeds cap")));
        }
        let sum = {
            let mut a = [0u8; 8];
            a.copy_from_slice(&frame[4..12]);
            u64::from_le_bytes(a)
        };
        self.buf.resize(len as usize, 0);
        read_fully(&mut self.file, &mut self.buf)?;
        if fnv1a(&self.buf) != sum {
            return Err(ShardError::Checksum { record: self.read });
        }
        let sample = decode_record(&self.buf)?;
        self.read += 1;
        Ok(Some(sample))
    }
}

impl Iterator for ShardReader {
    type Item = Result<LabeledSample, ShardError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(s)) => Some(Ok(s)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mapped reader
// ---------------------------------------------------------------------

/// Zero-copy shard reader over an [`Mmap`] of the whole file.
///
/// Record payloads are decoded straight out of the mapping — no read
/// syscalls and no intermediate record buffer after `open`, so the cold
/// path from process exec to the first decoded sample is one `mmap`
/// plus the page faults the decode actually touches. Iteration yields
/// exactly the same samples (and the same typed errors for the same
/// corruptions) as [`ShardReader`]; `tests/fault_injection.rs` pins
/// both against the same corpus.
pub struct MappedShardReader {
    map: Mmap,
    meta: ShardMeta,
    declared: u64,
    pos: usize,
    read: u64,
    failed: bool,
}

impl MappedShardReader {
    /// Map a shard and validate its header. Validation is cheapest-first:
    /// the magic/version/count prefix is checked before any record byte
    /// is touched.
    pub fn open(path: &Path) -> Result<MappedShardReader, ShardError> {
        let file = std::fs::File::open(path)?;
        let map = Mmap::map_file(&file)?;
        // Shards are consumed front to back; tell the pager so (best
        // effort — a refused advice changes nothing).
        map.advise(Advice::Sequential);
        let (meta, declared) = parse_header(map.as_slice())?;
        Ok(MappedShardReader { map, meta, declared, pos: HEADER_LEN, read: 0, failed: false })
    }

    /// The shard identity from the header.
    pub fn meta(&self) -> ShardMeta {
        self.meta
    }

    /// Records the header declares.
    pub fn declared_records(&self) -> u64 {
        self.declared
    }

    /// Whether the file is really memory-mapped (false only on targets
    /// where the wrapper fell back to an owned buffer).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Frame the next record inside `data` and verify its checksum.
    /// Returns the payload window and the position after it.
    fn frame_at(
        data: &[u8],
        pos: usize,
        record: u64,
    ) -> Result<(std::ops::Range<usize>, usize), ShardError> {
        if data.len() - pos < 12 {
            return Err(ShardError::Truncated);
        }
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        if len > MAX_RECORD_LEN {
            return Err(ShardError::Malformed(format!("record length {len} exceeds cap")));
        }
        let sum = {
            let mut a = [0u8; 8];
            a.copy_from_slice(&data[pos + 4..pos + 12]);
            u64::from_le_bytes(a)
        };
        let start = pos + 12;
        let end = start.checked_add(len as usize).ok_or(ShardError::Truncated)?;
        if end > data.len() {
            return Err(ShardError::Truncated);
        }
        if fnv1a(&data[start..end]) != sum {
            return Err(ShardError::Checksum { record });
        }
        Ok((start..end, end))
    }

    fn next_record(&mut self) -> Result<Option<LabeledSample>, ShardError> {
        let data = self.map.as_slice();
        if self.read == self.declared {
            // Clean end: the mapping must stop exactly here.
            if self.pos != data.len() {
                return Err(ShardError::CountMismatch {
                    expected: self.declared,
                    got: self.declared + 1,
                });
            }
            return Ok(None);
        }
        if self.pos == data.len() {
            // Clean EOF before the declared count: the count is wrong.
            return Err(ShardError::CountMismatch { expected: self.declared, got: self.read });
        }
        let (payload, next) = Self::frame_at(data, self.pos, self.read)?;
        let sample = decode_record(&data[payload])?;
        self.pos = next;
        self.read += 1;
        Ok(Some(sample))
    }
}

impl Iterator for MappedShardReader {
    type Item = Result<LabeledSample, ShardError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(s)) => Some(Ok(s)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Cheaply verify a shard on disk: header sanity plus a checksum walk
/// over every record frame, without decoding any payload. Returns the
/// shard identity and its record count.
///
/// This is the `--resume` gate of the corpus pipeline: a shard that
/// verifies is skipped by a restarted generation run, anything else
/// (missing, truncated, corrupt) is regenerated.
pub fn verify_shard(path: &Path) -> Result<(ShardMeta, u64), ShardError> {
    let file = std::fs::File::open(path)?;
    let map = Mmap::map_file(&file)?;
    map.advise(Advice::Sequential);
    let data = map.as_slice();
    let (meta, declared) = parse_header(data)?;
    let mut pos = HEADER_LEN;
    let mut found = 0u64;
    while pos < data.len() {
        if found == declared {
            return Err(ShardError::CountMismatch { expected: declared, got: declared + 1 });
        }
        let (_, next) = MappedShardReader::frame_at(data, pos, found)?;
        pos = next;
        found += 1;
    }
    if found != declared {
        return Err(ShardError::CountMismatch { expected: declared, got: found });
    }
    Ok((meta, declared))
}

/// `read_exact` with truncation mapped to the typed error.
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ShardError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ShardError::Truncated
        } else {
            ShardError::Io(e)
        }
    })
}

/// Fill as much of `buf` as the stream has, returning the byte count
/// (0 = clean EOF, shorter than `buf` = truncation).
fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, ShardError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::shard::{fit_inst2vec, generate_shard};
    use mvgnn_embed::Inst2VecConfig;

    fn one_sample() -> LabeledSample {
        let cfg = CorpusConfig {
            seeds: vec![5],
            opt_levels: vec![OptLevel::O0],
            suite: Some(Suite::Bots),
            inst2vec: Inst2VecConfig { dim: 8, epochs: 1, negatives: 2, lr: 0.05, seed: 3 },
            ..CorpusConfig::default()
        };
        let emb = fit_inst2vec(&cfg);
        let mut all = generate_shard(&cfg, &emb, 0, 1);
        all.remove(0)
    }

    #[test]
    fn record_roundtrip_is_bit_identical() {
        let s = one_sample();
        let payload = encode_record(&s);
        let back = decode_record(&payload).unwrap();
        assert_eq!(back.base_key, s.base_key);
        assert_eq!(back.level, s.level);
        assert_eq!(back.label, s.label);
        assert_eq!(back.pattern, s.pattern);
        assert_eq!(back.suite, s.suite);
        assert_eq!(back.family, s.family);
        assert_eq!(back.app, s.app);
        assert_eq!(back.sample.n, s.sample.n);
        assert_eq!(back.sample.node_dim, s.sample.node_dim);
        assert_eq!(back.sample.label, s.sample.label);
        assert_eq!(back.sample.token_ids, s.sample.token_ids);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.sample.node_feats), bits(&s.sample.node_feats));
        assert_eq!(bits(&back.sample.struct_dists), bits(&s.sample.struct_dists));
        assert_eq!(back.sample.adj, s.sample.adj);
        // Re-encoding is byte-identical — the format is canonical.
        assert_eq!(encode_record(&back), payload);
    }

    #[test]
    fn every_payload_truncation_point_is_a_typed_error() {
        let s = one_sample();
        let payload = encode_record(&s);
        for cut in 0..payload.len() {
            match decode_record(&payload[..cut]) {
                Err(ShardError::Truncated) | Err(ShardError::Malformed(_)) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bad_enum_tags_are_malformed() {
        let s = one_sample();
        let mut payload = encode_record(&s);
        // Byte 8 is the opt-level tag.
        payload[8] = 99;
        assert!(matches!(decode_record(&payload), Err(ShardError::Malformed(_))));
    }

    #[test]
    fn writer_emits_no_tmp_residue_and_reader_checks_identity() {
        let dir = std::env::temp_dir().join("mvgnn_format_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.mvsh");
        let s = one_sample();
        let meta = ShardMeta { corpus_seed: 9, shard_id: 3, num_shards: 8 };
        let mut w = ShardWriter::create(&path, meta).unwrap();
        w.append(&s).unwrap();
        w.append(&s).unwrap();
        assert_eq!(w.finish().unwrap(), 2);
        assert!(!path.with_extension("mvsh.tmp").exists());
        let r = ShardReader::open(&path).unwrap();
        assert_eq!(r.meta(), meta);
        assert_eq!(r.declared_records(), 2);
        let all: Vec<_> = r.collect::<Result<_, _>>().unwrap();
        assert_eq!(all.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abandoned_writer_cleans_up_tmp() {
        let dir = std::env::temp_dir().join("mvgnn_format_abandon_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.mvsh");
        let meta = ShardMeta { corpus_seed: 1, shard_id: 0, num_shards: 1 };
        {
            let mut w = ShardWriter::create(&path, meta).unwrap();
            w.append(&one_sample()).unwrap();
            // Dropped without finish().
        }
        assert!(!path.exists());
        assert!(!path.with_extension("mvsh.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
