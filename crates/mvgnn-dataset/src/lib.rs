//! # mvgnn-dataset — synthetic benchmark suites with constructive labels
//!
//! The paper trains on loops from NPB, PolyBench and BOTS plus
//! compiler-transformed variants. Those C/Fortran sources are substituted
//! here (see DESIGN.md) by template generators that synthesize the same
//! *kernel families* in `mvgnn-ir`, with ground-truth parallelism labels
//! known by construction and validated against the dependence profiler.
//!
//! - [`kernels`]: ~18 loop templates (maps, reductions, stencils,
//!   recurrences, linear algebra, indirect access, task recursion)
//! - [`suites`]: per-application composition reproducing the Table II
//!   loop counts (BT 184 … nqueens 4, total 840)
//! - [`corpus`]: profiled, labeled, augmented dataset assembly with a
//!   leakage-free train/test split (75:25, balanced 1:1)
//! - [`shard`]: deterministic sharded generation — N workers produce
//!   disjoint slices whose union is bit-identical to the one-process build
//! - [`mod@format`]: the MVSH on-disk shard format (checksummed
//!   length-prefixed records, streaming reader with bounded RSS)

pub mod corpus;
pub mod format;
pub mod kernels;
pub mod shard;
pub mod suites;

pub use corpus::{
    assemble_dataset, base_key, build_corpus, noisy_label, CorpusConfig, Dataset, LabeledSample,
};
pub use format::{verify_shard, MappedShardReader, ShardError, ShardMeta, ShardReader, ShardWriter};
pub use shard::{
    fit_inst2vec, generate_shard, load_inst2vec, save_inst2vec, shard_file_name, write_shard,
    write_shard_resumable, ShardPlan,
};
pub use kernels::{build_kernel, KernelFamily, KernelKind, PatternKind};
pub use suites::{generate_app, generate_suite, AppSpec, GeneratedApp, Suite, STRESS, TABLE2};
