//! # mvgnn-dataset — synthetic benchmark suites with constructive labels
//!
//! The paper trains on loops from NPB, PolyBench and BOTS plus
//! compiler-transformed variants. Those C/Fortran sources are substituted
//! here (see DESIGN.md) by template generators that synthesize the same
//! *kernel families* in `mvgnn-ir`, with ground-truth parallelism labels
//! known by construction and validated against the dependence profiler.
//!
//! - [`kernels`]: ~18 loop templates (maps, reductions, stencils,
//!   recurrences, linear algebra, indirect access, task recursion)
//! - [`suites`]: per-application composition reproducing the Table II
//!   loop counts (BT 184 … nqueens 4, total 840)
//! - [`corpus`]: profiled, labeled, augmented dataset assembly with a
//!   leakage-free train/test split (75:25, balanced 1:1)

pub mod corpus;
pub mod kernels;
pub mod suites;

pub use corpus::{base_key, build_corpus, noisy_label, CorpusConfig, Dataset, LabeledSample};
pub use kernels::{build_kernel, KernelKind, PatternKind};
pub use suites::{generate_app, generate_suite, AppSpec, GeneratedApp, Suite, TABLE2};
